//! The partitioned DataFrame.

use std::sync::Arc;

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::{DataType, Field, Schema};
use crate::error::{Error, Result};
use crate::exec::Executor;
use crate::expr::Expr;
use crate::groupby::{group_by, Agg};
use crate::join::{hash_join, JoinType};
use crate::value::Value;

/// A horizontally partitioned, immutable table.
///
/// `DataFrame` is the embedded stand-in for a Spark DataFrame: a shared
/// [`Schema`] plus a vector of [`Batch`] partitions. Row-wise operators
/// (filter, projection, expression columns, join probes) execute on all
/// partitions in parallel via the crate [`Executor`]; results keep partition
/// order, so output is deterministic for any worker count.
///
/// # Examples
///
/// ```
/// # use ivnt_frame::prelude::*;
/// # fn main() -> ivnt_frame::Result<()> {
/// let schema = Schema::from_pairs([("t", DataType::Float), ("m_id", DataType::Int)])?
///     .into_shared();
/// let df = DataFrame::from_rows(
///     schema,
///     vec![
///         vec![Value::Float(2.0), Value::Int(3)],
///         vec![Value::Float(2.5), Value::Int(3)],
///         vec![Value::Float(2.6), Value::Int(7)],
///     ],
/// )?;
/// let relevant = df.filter(&col("m_id").eq(lit(3i64)))?;
/// assert_eq!(relevant.num_rows(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DataFrame {
    schema: Arc<Schema>,
    partitions: Vec<Batch>,
    executor: Executor,
}

impl DataFrame {
    /// Creates a DataFrame from existing partitions.
    ///
    /// # Errors
    ///
    /// Returns [`Error::SchemaMismatch`] if any partition's schema differs
    /// from `schema`.
    pub fn from_partitions(schema: Arc<Schema>, partitions: Vec<Batch>) -> Result<Self> {
        for p in &partitions {
            if p.schema().as_ref() != schema.as_ref() {
                return Err(Error::SchemaMismatch(format!(
                    "partition schema {} differs from frame schema {}",
                    p.schema(),
                    schema
                )));
            }
        }
        Ok(DataFrame {
            schema,
            partitions,
            executor: Executor::default(),
        })
    }

    /// Creates a single-partition DataFrame from row tuples.
    ///
    /// # Errors
    ///
    /// Propagates [`Batch::from_rows`] errors.
    pub fn from_rows<I, R>(schema: Arc<Schema>, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = R>,
        R: IntoIterator<Item = Value>,
    {
        let batch = Batch::from_rows(schema.clone(), rows)?;
        DataFrame::from_partitions(schema, vec![batch])
    }

    /// Creates an empty DataFrame with the given schema.
    pub fn empty(schema: Arc<Schema>) -> Self {
        DataFrame {
            schema,
            partitions: Vec::new(),
            executor: Executor::default(),
        }
    }

    /// Overrides the executor (worker count) used by this frame's operators.
    ///
    /// Derived frames inherit the setting.
    pub fn with_executor(mut self, executor: Executor) -> Self {
        self.executor = executor;
        self
    }

    /// The executor used by this frame's parallel operators.
    pub fn executor(&self) -> Executor {
        self.executor
    }

    /// The frame's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Batch] {
        &self.partitions
    }

    /// Consumes the frame, returning its partitions.
    pub fn into_partitions(self) -> Vec<Batch> {
        self.partitions
    }

    /// Number of partitions.
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// Total number of rows across partitions.
    pub fn num_rows(&self) -> usize {
        self.partitions.iter().map(Batch::num_rows).sum()
    }

    /// `true` if the frame holds no rows.
    pub fn is_empty(&self) -> bool {
        self.num_rows() == 0
    }

    fn derive(&self, schema: Arc<Schema>, partitions: Vec<Batch>) -> DataFrame {
        DataFrame {
            schema,
            partitions,
            executor: self.executor,
        }
    }

    fn map_partitions<F>(&self, f: F) -> Result<Vec<Batch>>
    where
        F: Fn(&Batch) -> Result<Batch> + Send + Sync,
    {
        self.executor
            .map_ref(&self.partitions, |b| f(b))
            .into_iter()
            .collect()
    }

    /// Keeps rows for which `predicate` evaluates to `true` (σ).
    ///
    /// Runs partition-parallel; corresponds to the preselection step
    /// (Algorithm 1 line 3) and constraint filtering (line 11).
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation errors.
    pub fn filter(&self, predicate: &Expr) -> Result<DataFrame> {
        let parts = self.map_partitions(|b| {
            let mask = predicate.eval_mask(b)?;
            b.filter(&mask)
        })?;
        Ok(self.derive(self.schema.clone(), parts))
    }

    /// Keeps only `names`, in the given order (π).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] for unknown names.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let schema = Arc::new(self.schema.project(names)?);
        let parts = self.map_partitions(|b| b.project(names))?;
        Ok(self.derive(schema, parts))
    }

    /// Appends a computed column (row-wise map `F`).
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateColumn`] if `name` exists, plus expression
    /// evaluation errors. Fails on an empty (zero-partition) frame whose
    /// output type cannot be inferred; use
    /// [`DataFrame::with_column_typed`] there.
    pub fn with_column(&self, name: &str, expr: &Expr) -> Result<DataFrame> {
        if self.schema.contains(name) {
            return Err(Error::DuplicateColumn(name.to_string()));
        }
        if self.partitions.is_empty() {
            return Err(Error::InvalidArgument(
                "with_column on a zero-partition frame has no inferable type; use with_column_typed"
                    .into(),
            ));
        }
        // Evaluate in parallel, then unify the output type (partitions can
        // disagree when some are all-null).
        let cols: Vec<Column> = self
            .executor
            .map_ref(&self.partitions, |b| expr.eval(b))
            .into_iter()
            .collect::<Result<_>>()?;
        let dtype = cols
            .iter()
            .find(|c| c.null_count() < c.len())
            .map(Column::data_type)
            .unwrap_or_else(|| {
                cols.first()
                    .map(Column::data_type)
                    .unwrap_or(DataType::Bool)
            });
        let mut parts = Vec::with_capacity(self.partitions.len());
        for (b, c) in self.partitions.iter().zip(cols) {
            let c = if c.data_type() == dtype {
                c
            } else {
                Column::from_values(dtype, c.iter())?
            };
            parts.push(b.with_column(name, c)?);
        }
        let schema = parts
            .first()
            .map(|b| b.schema().clone())
            .unwrap_or_else(|| self.schema.clone());
        Ok(self.derive(schema, parts))
    }

    /// Appends a computed column with an explicit output type.
    ///
    /// Unlike [`DataFrame::with_column`] this works on empty frames and
    /// forces every partition to the same declared type.
    ///
    /// # Errors
    ///
    /// Same conditions as [`DataFrame::with_column`], plus
    /// [`Error::TypeMismatch`] if evaluated values do not fit `dtype`.
    pub fn with_column_typed(&self, name: &str, dtype: DataType, expr: &Expr) -> Result<DataFrame> {
        if self.schema.contains(name) {
            return Err(Error::DuplicateColumn(name.to_string()));
        }
        let schema = Arc::new(self.schema.with_field(Field::new(name, dtype))?);
        let parts = self.map_partitions(|b| {
            let c = expr.eval(b)?;
            let c = if c.data_type() == dtype {
                c
            } else {
                Column::from_values(dtype, c.iter())?
            };
            b.with_column(name, c)
        })?;
        Ok(self.derive(schema, parts))
    }

    /// Drops a column.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] for unknown names.
    pub fn drop_column(&self, name: &str) -> Result<DataFrame> {
        self.schema.index_of(name)?;
        let keep: Vec<&str> = self
            .schema
            .fields()
            .iter()
            .map(Field::name)
            .filter(|n| *n != name)
            .collect();
        self.select(&keep)
    }

    /// Renames a column, keeping its position and data.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] / [`Error::DuplicateColumn`].
    pub fn rename_column(&self, from: &str, to: &str) -> Result<DataFrame> {
        let idx = self.schema.index_of(from)?;
        if self.schema.contains(to) {
            return Err(Error::DuplicateColumn(to.to_string()));
        }
        let mut fields = self.schema.fields().to_vec();
        fields[idx] = Field::new(to, fields[idx].data_type());
        let schema = Schema::new(fields)?.into_shared();
        let parts = self
            .partitions
            .iter()
            .map(|b| Batch::new(schema.clone(), b.columns().to_vec()))
            .collect::<Result<Vec<_>>>()?;
        Ok(self.derive(schema, parts))
    }

    /// Joins with `other` on equally named key pairs (⋈).
    ///
    /// Builds a hash table on `other` and probes this frame's partitions in
    /// parallel — the shape of the paper's `K_pre ⋈ U_comb` interpretation
    /// join. Output contains all of this frame's columns plus `other`'s
    /// non-key columns.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] on empty/unequal key lists,
    /// [`Error::DuplicateColumn`] on output name collisions and
    /// [`Error::ColumnNotFound`] for unknown keys.
    pub fn join(
        &self,
        other: &DataFrame,
        self_keys: &[&str],
        other_keys: &[&str],
        join_type: JoinType,
    ) -> Result<DataFrame> {
        hash_join(self, other, self_keys, other_keys, join_type, self.executor)
    }

    /// Grouped aggregation; output is sorted by group key.
    ///
    /// # Examples
    ///
    /// ```
    /// # use ivnt_frame::prelude::*;
    /// # fn main() -> ivnt_frame::Result<()> {
    /// let schema = Schema::from_pairs([("s_id", DataType::Str), ("v", DataType::Float)])?
    ///     .into_shared();
    /// let df = DataFrame::from_rows(
    ///     schema,
    ///     vec![
    ///         vec![Value::from("wpos"), Value::Float(45.0)],
    ///         vec![Value::from("wpos"), Value::Float(60.0)],
    ///         vec![Value::from("wvel"), Value::Float(1.0)],
    ///     ],
    /// )?;
    /// // Instances per signal type — the per-signal statistics of Table 5.
    /// let counts = df.group_by(&["s_id"], &[Agg::new(AggOp::Count, "v", "n")])?;
    /// assert_eq!(counts.collect_rows()?[0][1], Value::Int(2));
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] on an empty key list plus
    /// aggregation evaluation errors.
    pub fn group_by(&self, keys: &[&str], aggs: &[Agg]) -> Result<DataFrame> {
        group_by(self, keys, aggs, self.executor)
    }

    /// Globally sorts rows by `keys` (each ascending when `ascending` holds).
    ///
    /// The result is a single partition; follow with
    /// [`DataFrame::repartition`] to restore parallelism. The sort is stable.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if `keys` and `ascending` lengths
    /// differ or are empty, and [`Error::ColumnNotFound`] for unknown keys.
    pub fn sort_by(&self, keys: &[&str], ascending: &[bool]) -> Result<DataFrame> {
        if keys.is_empty() || keys.len() != ascending.len() {
            return Err(Error::InvalidArgument(
                "sort_by requires equally many keys and directions".into(),
            ));
        }
        let merged = self.to_single_batch()?;
        let key_idx: Vec<usize> = keys
            .iter()
            .map(|k| self.schema.index_of(k))
            .collect::<Result<_>>()?;
        let mut order: Vec<usize> = (0..merged.num_rows()).collect();
        order.sort_by(|&a, &b| {
            for (&ci, &asc) in key_idx.iter().zip(ascending) {
                let va = merged.column(ci).get(a);
                let vb = merged.column(ci).get(b);
                let ord = va.total_cmp(&vb);
                if !ord.is_eq() {
                    return if asc { ord } else { ord.reverse() };
                }
            }
            std::cmp::Ordering::Equal
        });
        let sorted = merged.take(&order);
        Ok(self.derive(self.schema.clone(), vec![sorted]))
    }

    /// Vertically concatenates with `other` (∪, bag semantics).
    ///
    /// # Errors
    ///
    /// Returns [`Error::SchemaMismatch`] if schemas differ.
    pub fn union(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.schema.as_ref() != other.schema.as_ref() {
            return Err(Error::SchemaMismatch(format!(
                "cannot union {} with {}",
                self.schema, other.schema
            )));
        }
        let mut parts = self.partitions.clone();
        // Re-anchor the other side's batches on this frame's schema Arc so
        // partition schema pointers stay uniform.
        for b in &other.partitions {
            parts.push(Batch::new(self.schema.clone(), b.columns().to_vec())?);
        }
        Ok(self.derive(self.schema.clone(), parts))
    }

    /// Removes duplicate rows, keeping first occurrences in row order.
    ///
    /// # Errors
    ///
    /// Propagates partition merge errors.
    pub fn distinct(&self) -> Result<DataFrame> {
        let merged = self.to_single_batch()?;
        let mut seen = std::collections::HashSet::new();
        let mut keep = Vec::with_capacity(merged.num_rows());
        for i in 0..merged.num_rows() {
            keep.push(seen.insert(merged.row(i)));
        }
        let b = merged.filter(&keep)?;
        Ok(self.derive(self.schema.clone(), vec![b]))
    }

    /// First `n` rows (in global row order) as a single-partition frame.
    pub fn limit(&self, n: usize) -> DataFrame {
        let mut remaining = n;
        let mut parts = Vec::new();
        for b in &self.partitions {
            if remaining == 0 {
                break;
            }
            let take = remaining.min(b.num_rows());
            parts.push(b.slice(0, take));
            remaining -= take;
        }
        self.derive(self.schema.clone(), parts)
    }

    /// Redistributes rows into `n` evenly sized partitions, preserving
    /// global row order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArgument`] if `n == 0`.
    pub fn repartition(&self, n: usize) -> Result<DataFrame> {
        if n == 0 {
            return Err(Error::InvalidArgument("repartition to 0 partitions".into()));
        }
        let merged = self.to_single_batch()?;
        let rows = merged.num_rows();
        if rows == 0 {
            return Ok(self.derive(self.schema.clone(), vec![merged]));
        }
        let chunk = rows.div_ceil(n);
        let mut parts = Vec::new();
        let mut start = 0;
        while start < rows {
            let len = chunk.min(rows - start);
            parts.push(merged.slice(start, len));
            start += len;
        }
        Ok(self.derive(self.schema.clone(), parts))
    }

    /// Merges all partitions into one [`Batch`].
    ///
    /// # Errors
    ///
    /// Propagates concatenation errors.
    pub fn to_single_batch(&self) -> Result<Batch> {
        if self.partitions.is_empty() {
            return Ok(Batch::empty(self.schema.clone()));
        }
        if self.partitions.len() == 1 {
            return Ok(self.partitions[0].clone());
        }
        Batch::concat(&self.partitions)
    }

    /// Materializes every row, in global row order.
    ///
    /// # Errors
    ///
    /// Propagates partition merge errors.
    pub fn collect_rows(&self) -> Result<Vec<Vec<Value>>> {
        let merged = self.to_single_batch()?;
        Ok((0..merged.num_rows()).map(|i| merged.row(i)).collect())
    }

    /// Column values by name, in global row order.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] for unknown names.
    pub fn column_values(&self, name: &str) -> Result<Vec<Value>> {
        self.schema.index_of(name)?;
        let mut out = Vec::with_capacity(self.num_rows());
        for b in &self.partitions {
            out.extend(b.column_by_name(name)?.iter());
        }
        Ok(out)
    }

    /// Adds a lag column: for each row, the value of `column` `offset` rows
    /// earlier in global row order (null for the first `offset` rows).
    ///
    /// The frame is assumed already ordered (e.g. by time); the lag crosses
    /// partition boundaries. This is the "lag operation" the paper uses to
    /// build gaps and the forward-filled state representation.
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] / [`Error::DuplicateColumn`] and
    /// [`Error::InvalidArgument`] for `offset == 0`.
    pub fn with_lag(&self, column: &str, offset: usize, alias: &str) -> Result<DataFrame> {
        if offset == 0 {
            return Err(Error::InvalidArgument("lag offset must be > 0".into()));
        }
        if self.schema.contains(alias) {
            return Err(Error::DuplicateColumn(alias.to_string()));
        }
        let dtype = self.schema.field(column)?.data_type();
        let values = self.column_values(column)?;
        let lagged = (0..values.len()).map(|i| {
            if i < offset {
                Value::Null
            } else {
                values[i - offset].clone()
            }
        });
        self.attach_global_column(alias, dtype, lagged.collect())
    }

    /// Adds a difference column: `column[i] - column[i-1]` in global row
    /// order (null for the first row). Useful for temporal gaps.
    ///
    /// # Errors
    ///
    /// Same as [`DataFrame::with_lag`]; requires a numeric column.
    pub fn with_diff(&self, column: &str, alias: &str) -> Result<DataFrame> {
        if self.schema.contains(alias) {
            return Err(Error::DuplicateColumn(alias.to_string()));
        }
        let values = self.column_values(column)?;
        let diffs: Vec<Value> = (0..values.len())
            .map(|i| {
                if i == 0 {
                    return Value::Null;
                }
                match (values[i].as_float(), values[i - 1].as_float()) {
                    (Some(a), Some(b)) => Value::Float(a - b),
                    _ => Value::Null,
                }
            })
            .collect();
        self.attach_global_column(alias, DataType::Float, diffs)
    }

    /// Replaces nulls in `column` with the last non-null value above
    /// (global row order). The paper's state representation fills each
    /// signal column "with the value of its last occurrence".
    ///
    /// # Errors
    ///
    /// Returns [`Error::ColumnNotFound`] for unknown names.
    pub fn forward_fill(&self, column: &str) -> Result<DataFrame> {
        let dtype = self.schema.field(column)?.data_type();
        let values = self.column_values(column)?;
        let mut filled = Vec::with_capacity(values.len());
        let mut last = Value::Null;
        for v in values {
            if v.is_null() {
                filled.push(last.clone());
            } else {
                last = v.clone();
                filled.push(v);
            }
        }
        let col = Column::from_values(dtype, filled)?;
        // Split back along existing partition boundaries.
        let mut parts = Vec::with_capacity(self.partitions.len());
        let mut start = 0;
        for b in &self.partitions {
            let len = b.num_rows();
            parts.push(b.replace_column(column, col.slice(start, len))?);
            start += len;
        }
        Ok(self.derive(self.schema.clone(), parts))
    }

    /// Attaches a globally computed column, splitting it along existing
    /// partition boundaries.
    fn attach_global_column(
        &self,
        alias: &str,
        dtype: DataType,
        values: Vec<Value>,
    ) -> Result<DataFrame> {
        debug_assert_eq!(values.len(), self.num_rows());
        let col = Column::from_values(dtype, values)?;
        let mut parts = Vec::with_capacity(self.partitions.len().max(1));
        if self.partitions.is_empty() {
            let schema = Arc::new(self.schema.with_field(Field::new(alias, dtype))?);
            return Ok(self.derive(schema, vec![]));
        }
        let mut start = 0;
        for b in &self.partitions {
            let len = b.num_rows();
            parts.push(b.with_column(alias, col.slice(start, len))?);
            start += len;
        }
        let schema = parts[0].schema().clone();
        Ok(self.derive(schema, parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{col, lit};

    fn df() -> DataFrame {
        DataFrame::from_rows(
            Schema::from_pairs([("t", DataType::Float), ("v", DataType::Int)])
                .unwrap()
                .into_shared(),
            (0..10).map(|i| vec![Value::Float(i as f64 * 0.5), Value::Int(i)]),
        )
        .unwrap()
    }

    #[test]
    fn filter_select_with_column() {
        let d = df();
        let f = d.filter(&col("v").ge(lit(5i64))).unwrap();
        assert_eq!(f.num_rows(), 5);
        let s = f.select(&["v"]).unwrap();
        assert_eq!(s.schema().len(), 1);
        let w = s.with_column("v2", &col("v").mul(lit(2i64))).unwrap();
        assert_eq!(w.column_values("v2").unwrap()[0], Value::Int(10));
        assert!(w.with_column("v2", &lit(1i64)).is_err());
    }

    #[test]
    fn repartition_preserves_order() {
        let d = df().repartition(3).unwrap();
        assert_eq!(d.num_partitions(), 3);
        let vals = d.column_values("v").unwrap();
        assert_eq!(vals, (0..10).map(Value::Int).collect::<Vec<_>>());
        assert!(df().repartition(0).is_err());
    }

    #[test]
    fn sort_desc_and_stability() {
        let d = df().sort_by(&["v"], &[false]).unwrap();
        assert_eq!(d.column_values("v").unwrap()[0], Value::Int(9));
        assert!(df().sort_by(&[], &[]).is_err());
    }

    #[test]
    fn union_and_distinct() {
        let d = df();
        let u = d.union(&d).unwrap();
        assert_eq!(u.num_rows(), 20);
        let dd = u.distinct().unwrap();
        assert_eq!(dd.num_rows(), 10);
    }

    #[test]
    fn union_schema_checked() {
        let other = df().rename_column("v", "w").unwrap();
        assert!(df().union(&other).is_err());
    }

    #[test]
    fn limit_crosses_partitions() {
        let d = df().repartition(4).unwrap();
        let l = d.limit(7);
        assert_eq!(l.num_rows(), 7);
        assert_eq!(
            l.column_values("v").unwrap(),
            (0..7).map(Value::Int).collect::<Vec<_>>()
        );
    }

    #[test]
    fn lag_and_diff_cross_partitions() {
        let d = df().repartition(3).unwrap();
        let l = d.with_lag("v", 1, "prev").unwrap();
        let prev = l.column_values("prev").unwrap();
        assert!(prev[0].is_null());
        assert_eq!(prev[5], Value::Int(4));
        let g = d.with_diff("t", "gap").unwrap();
        let gaps = g.column_values("gap").unwrap();
        assert!(gaps[0].is_null());
        assert_eq!(gaps[3], Value::Float(0.5));
        assert!(d.with_lag("v", 0, "x").is_err());
    }

    #[test]
    fn forward_fill_fills_gaps() {
        let schema = Schema::from_pairs([("v", DataType::Int)])
            .unwrap()
            .into_shared();
        let d = DataFrame::from_rows(
            schema,
            vec![
                vec![Value::Null],
                vec![Value::Int(1)],
                vec![Value::Null],
                vec![Value::Null],
                vec![Value::Int(2)],
            ],
        )
        .unwrap()
        .repartition(2)
        .unwrap();
        let f = d.forward_fill("v").unwrap();
        assert_eq!(
            f.column_values("v").unwrap(),
            vec![
                Value::Null,
                Value::Int(1),
                Value::Int(1),
                Value::Int(1),
                Value::Int(2)
            ]
        );
    }

    #[test]
    fn rename_and_drop() {
        let d = df().rename_column("v", "val").unwrap();
        assert!(d.schema().contains("val"));
        let d = d.drop_column("t").unwrap();
        assert_eq!(d.schema().len(), 1);
        assert!(d.drop_column("zz").is_err());
    }

    #[test]
    fn with_column_typed_on_empty_frame() {
        let schema = Schema::from_pairs([("a", DataType::Int)])
            .unwrap()
            .into_shared();
        let d = DataFrame::empty(schema);
        let d = d
            .with_column_typed("b", DataType::Float, &lit(1.5))
            .unwrap();
        assert!(d.schema().contains("b"));
        assert_eq!(d.num_rows(), 0);
    }

    #[test]
    fn filter_deterministic_across_workers() {
        let d = df().repartition(4).unwrap();
        let a = d
            .clone()
            .with_executor(Executor::new(1))
            .filter(&col("v").gt(lit(2i64)))
            .unwrap()
            .collect_rows()
            .unwrap();
        let b = d
            .with_executor(Executor::new(8))
            .filter(&col("v").gt(lit(2i64)))
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(a, b);
    }
}

impl DataFrame {
    /// Summary statistics per numeric column: one row per column with
    /// `(column, count, nulls, mean, std, min, max)` — a quick structural
    /// look at extracted signal tables.
    ///
    /// Non-numeric columns are skipped; an all-null numeric column reports
    /// null moments.
    ///
    /// # Errors
    ///
    /// Propagates partition merge failures.
    pub fn describe(&self) -> Result<DataFrame> {
        let schema = Schema::from_pairs([
            ("column", DataType::Str),
            ("count", DataType::Int),
            ("nulls", DataType::Int),
            ("mean", DataType::Float),
            ("std", DataType::Float),
            ("min", DataType::Float),
            ("max", DataType::Float),
        ])?
        .into_shared();
        let mut rows: Vec<Vec<Value>> = Vec::new();
        for (ci, field) in self.schema.fields().iter().enumerate() {
            if !matches!(field.data_type(), DataType::Int | DataType::Float) {
                continue;
            }
            let mut values: Vec<f64> = Vec::new();
            let mut nulls = 0usize;
            for batch in &self.partitions {
                for row in 0..batch.num_rows() {
                    match batch.column(ci).get(row).as_float() {
                        Some(v) => values.push(v),
                        None => nulls += 1,
                    }
                }
            }
            let n = values.len();
            let (mean, std, min, max) = if n == 0 {
                (Value::Null, Value::Null, Value::Null, Value::Null)
            } else {
                let mean = values.iter().sum::<f64>() / n as f64;
                let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n as f64;
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                (
                    Value::Float(mean),
                    Value::Float(var.sqrt()),
                    Value::Float(min),
                    Value::Float(max),
                )
            };
            rows.push(vec![
                Value::from(field.name()),
                Value::Int(n as i64),
                Value::Int(nulls as i64),
                mean,
                std,
                min,
                max,
            ]);
        }
        DataFrame::from_rows(schema, rows)
    }
}

#[cfg(test)]
mod describe_tests {
    use super::*;

    #[test]
    fn describe_summarizes_numeric_columns() {
        let schema = Schema::from_pairs([
            ("v", DataType::Float),
            ("label", DataType::Str),
            ("n", DataType::Int),
        ])
        .unwrap()
        .into_shared();
        let df = DataFrame::from_rows(
            schema,
            vec![
                vec![Value::Float(1.0), Value::from("a"), Value::Int(10)],
                vec![Value::Float(3.0), Value::from("b"), Value::Null],
                vec![Value::Null, Value::from("c"), Value::Int(20)],
            ],
        )
        .unwrap()
        .repartition(2)
        .unwrap();
        let d = df.describe().unwrap();
        let rows = d.collect_rows().unwrap();
        assert_eq!(rows.len(), 2); // v and n; label skipped
        assert_eq!(rows[0][0], Value::from("v"));
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[0][2], Value::Int(1));
        assert_eq!(rows[0][3], Value::Float(2.0));
        assert_eq!(rows[0][5], Value::Float(1.0));
        assert_eq!(rows[0][6], Value::Float(3.0));
        assert_eq!(rows[1][0], Value::from("n"));
        assert_eq!(rows[1][3], Value::Float(15.0));
    }

    #[test]
    fn describe_all_null_column() {
        let schema = Schema::from_pairs([("v", DataType::Float)])
            .unwrap()
            .into_shared();
        let df = DataFrame::from_rows(schema, vec![vec![Value::Null], vec![Value::Null]]).unwrap();
        let rows = df.describe().unwrap().collect_rows().unwrap();
        assert_eq!(rows[0][1], Value::Int(0));
        assert_eq!(rows[0][2], Value::Int(2));
        assert!(rows[0][3].is_null());
    }

    #[test]
    fn describe_no_numeric_columns() {
        let schema = Schema::from_pairs([("s", DataType::Str)])
            .unwrap()
            .into_shared();
        let df = DataFrame::empty(schema);
        assert_eq!(df.describe().unwrap().num_rows(), 0);
    }
}
