//! Grouped aggregation.

use std::collections::HashMap;

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::{DataType, Field, Schema};
use crate::error::{Error, Result};
use crate::exec::Executor;
use crate::frame::DataFrame;
use crate::value::Value;

/// Aggregation function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Number of non-null values (or rows, when applied to a key column).
    Count,
    /// Numeric sum.
    Sum,
    /// Minimum by total order.
    Min,
    /// Maximum by total order.
    Max,
    /// Arithmetic mean.
    Mean,
    /// First value in row order.
    First,
    /// Last value in row order.
    Last,
    /// Number of distinct non-null values.
    CountDistinct,
}

/// One aggregation to compute: `op(column) AS alias`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Agg {
    /// Function to apply.
    pub op: AggOp,
    /// Input column.
    pub column: String,
    /// Output column name.
    pub alias: String,
}

impl Agg {
    /// Creates an aggregation spec.
    pub fn new(op: AggOp, column: impl Into<String>, alias: impl Into<String>) -> Self {
        Agg {
            op,
            column: column.into(),
            alias: alias.into(),
        }
    }
}

/// Partial (mergeable) accumulator state per group and aggregation.
#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    Sum(f64, bool),
    Min(Option<Value>),
    Max(Option<Value>),
    Mean { sum: f64, n: u64 },
    First(Option<Value>),
    Last(Option<Value>),
    Distinct(std::collections::HashSet<Value>),
}

impl Acc {
    fn new(op: AggOp) -> Acc {
        match op {
            AggOp::Count => Acc::Count(0),
            AggOp::Sum => Acc::Sum(0.0, false),
            AggOp::Min => Acc::Min(None),
            AggOp::Max => Acc::Max(None),
            AggOp::Mean => Acc::Mean { sum: 0.0, n: 0 },
            AggOp::First => Acc::First(None),
            AggOp::Last => Acc::Last(None),
            AggOp::CountDistinct => Acc::Distinct(Default::default()),
        }
    }

    fn update(&mut self, v: Value) -> Result<()> {
        match self {
            Acc::Count(n) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            Acc::Sum(s, seen) => {
                if let Some(f) = v.as_float() {
                    *s += f;
                    *seen = true;
                } else if !v.is_null() {
                    return Err(Error::Eval(format!("sum expects numbers, got {v:?}")));
                }
            }
            Acc::Min(cur) => {
                if !v.is_null() && cur.as_ref().map(|c| v.total_cmp(c).is_lt()).unwrap_or(true) {
                    *cur = Some(v);
                }
            }
            Acc::Max(cur) => {
                if !v.is_null() && cur.as_ref().map(|c| v.total_cmp(c).is_gt()).unwrap_or(true) {
                    *cur = Some(v);
                }
            }
            Acc::Mean { sum, n } => {
                if let Some(f) = v.as_float() {
                    *sum += f;
                    *n += 1;
                } else if !v.is_null() {
                    return Err(Error::Eval(format!("mean expects numbers, got {v:?}")));
                }
            }
            Acc::First(cur) => {
                if cur.is_none() && !v.is_null() {
                    *cur = Some(v);
                }
            }
            Acc::Last(cur) => {
                if !v.is_null() {
                    *cur = Some(v);
                }
            }
            Acc::Distinct(set) => {
                if !v.is_null() {
                    set.insert(v);
                }
            }
        }
        Ok(())
    }

    /// Merges `other` (a later partition's partial state) into `self`.
    fn merge(&mut self, other: Acc) {
        match (self, other) {
            (Acc::Count(a), Acc::Count(b)) => *a += b,
            (Acc::Sum(a, sa), Acc::Sum(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (Acc::Min(a), Acc::Min(Some(b))) => {
                if a.as_ref().map(|c| b.total_cmp(c).is_lt()).unwrap_or(true) {
                    *a = Some(b);
                }
            }
            (Acc::Max(a), Acc::Max(Some(b))) => {
                if a.as_ref().map(|c| b.total_cmp(c).is_gt()).unwrap_or(true) {
                    *a = Some(b);
                }
            }
            (Acc::Mean { sum: a, n: na }, Acc::Mean { sum: b, n: nb }) => {
                *a += b;
                *na += nb;
            }
            (Acc::First(a), Acc::First(b)) => {
                if a.is_none() {
                    *a = b;
                }
            }
            (Acc::Last(a), Acc::Last(b)) => {
                if b.is_some() {
                    *a = b;
                }
            }
            (Acc::Distinct(a), Acc::Distinct(b)) => a.extend(b),
            (Acc::Min(_), Acc::Min(None)) | (Acc::Max(_), Acc::Max(None)) => {}
            _ => unreachable!("merging accumulators of different aggregation ops"),
        }
    }

    fn finish(self) -> Value {
        match self {
            Acc::Count(n) => Value::Int(n as i64),
            Acc::Sum(s, seen) => {
                if seen {
                    Value::Float(s)
                } else {
                    Value::Null
                }
            }
            Acc::Min(v) | Acc::Max(v) | Acc::First(v) | Acc::Last(v) => v.unwrap_or(Value::Null),
            Acc::Mean { sum, n } => {
                if n == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / n as f64)
                }
            }
            Acc::Distinct(set) => Value::Int(set.len() as i64),
        }
    }

    fn output_type(op: AggOp, input: DataType) -> DataType {
        match op {
            AggOp::Count | AggOp::CountDistinct => DataType::Int,
            AggOp::Sum | AggOp::Mean => DataType::Float,
            AggOp::Min | AggOp::Max | AggOp::First | AggOp::Last => input,
        }
    }
}

type GroupMap = HashMap<Vec<Value>, Vec<Acc>>;

fn aggregate_partition(
    batch: &Batch,
    key_idx: &[usize],
    agg_idx: &[usize],
    aggs: &[Agg],
) -> Result<GroupMap> {
    let mut groups: GroupMap = HashMap::new();
    for row in 0..batch.num_rows() {
        let key: Vec<Value> = key_idx.iter().map(|&i| batch.column(i).get(row)).collect();
        let accs = groups
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| Acc::new(a.op)).collect());
        for (ai, &ci) in agg_idx.iter().enumerate() {
            accs[ai].update(batch.column(ci).get(row))?;
        }
    }
    Ok(groups)
}

/// Two-phase grouped aggregation: per-partition partials in parallel, then a
/// single merge. Output rows are sorted by group key, making results
/// independent of partitioning and worker count.
pub(crate) fn group_by(
    frame: &DataFrame,
    keys: &[&str],
    aggs: &[Agg],
    exec: Executor,
) -> Result<DataFrame> {
    if keys.is_empty() {
        return Err(Error::InvalidArgument("group_by requires keys".into()));
    }
    let schema = frame.schema();
    let key_idx: Vec<usize> = keys
        .iter()
        .map(|k| schema.index_of(k))
        .collect::<Result<_>>()?;
    let agg_idx: Vec<usize> = aggs
        .iter()
        .map(|a| schema.index_of(&a.column))
        .collect::<Result<_>>()?;

    let mut fields: Vec<Field> = key_idx
        .iter()
        .map(|&i| schema.fields()[i].clone())
        .collect();
    for (a, &ci) in aggs.iter().zip(&agg_idx) {
        fields.push(Field::new(
            &a.alias,
            Acc::output_type(a.op, schema.fields()[ci].data_type()),
        ));
    }
    let out_schema = Schema::new(fields)?.into_shared();

    let partials: Vec<Result<GroupMap>> = exec.map_ref(frame.partitions(), |b| {
        aggregate_partition(b, &key_idx, &agg_idx, aggs)
    });
    let mut merged: GroupMap = HashMap::new();
    for partial in partials {
        for (key, accs) in partial? {
            match merged.entry(key) {
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    for (dst, src) in e.get_mut().iter_mut().zip(accs) {
                        dst.merge(src);
                    }
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(accs);
                }
            }
        }
    }

    let mut rows: Vec<(Vec<Value>, Vec<Acc>)> = merged.into_iter().collect();
    rows.sort_by(|a, b| {
        a.0.iter()
            .zip(&b.0)
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| !o.is_eq())
            .unwrap_or(std::cmp::Ordering::Equal)
    });

    let mut columns: Vec<Column> = out_schema
        .fields()
        .iter()
        .map(|f| Column::with_capacity(f.data_type(), rows.len()))
        .collect();
    for (key, accs) in rows {
        for (ci, v) in key.into_iter().enumerate() {
            columns[ci].push(v)?;
        }
        for (ai, acc) in accs.into_iter().enumerate() {
            columns[key_idx.len() + ai].push(acc.finish())?;
        }
    }
    let batch = Batch::new(out_schema.clone(), columns)?;
    Ok(DataFrame::from_partitions(out_schema, vec![batch])?.with_executor(exec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;

    fn frame() -> DataFrame {
        DataFrame::from_rows(
            Schema::from_pairs([("sid", DataType::Str), ("v", DataType::Float)])
                .unwrap()
                .into_shared(),
            vec![
                vec![Value::from("a"), Value::Float(1.0)],
                vec![Value::from("b"), Value::Float(10.0)],
                vec![Value::from("a"), Value::Float(3.0)],
                vec![Value::from("a"), Value::Null],
                vec![Value::from("b"), Value::Float(10.0)],
            ],
        )
        .unwrap()
        .repartition(2)
        .unwrap()
    }

    #[test]
    fn count_sum_mean() {
        let g = frame()
            .group_by(
                &["sid"],
                &[
                    Agg::new(AggOp::Count, "v", "n"),
                    Agg::new(AggOp::Sum, "v", "s"),
                    Agg::new(AggOp::Mean, "v", "m"),
                ],
            )
            .unwrap();
        let rows = g.collect_rows().unwrap();
        assert_eq!(rows.len(), 2);
        // sorted by key: "a" first
        assert_eq!(rows[0][0], Value::from("a"));
        assert_eq!(rows[0][1], Value::Int(2));
        assert_eq!(rows[0][2], Value::Float(4.0));
        assert_eq!(rows[0][3], Value::Float(2.0));
        assert_eq!(rows[1][1], Value::Int(2));
        assert_eq!(rows[1][2], Value::Float(20.0));
    }

    #[test]
    fn min_max_first_last_distinct() {
        let g = frame()
            .group_by(
                &["sid"],
                &[
                    Agg::new(AggOp::Min, "v", "lo"),
                    Agg::new(AggOp::Max, "v", "hi"),
                    Agg::new(AggOp::First, "v", "f"),
                    Agg::new(AggOp::Last, "v", "l"),
                    Agg::new(AggOp::CountDistinct, "v", "d"),
                ],
            )
            .unwrap();
        let rows = g.collect_rows().unwrap();
        assert_eq!(rows[0][1], Value::Float(1.0));
        assert_eq!(rows[0][2], Value::Float(3.0));
        assert_eq!(rows[0][3], Value::Float(1.0));
        assert_eq!(rows[0][4], Value::Float(3.0));
        assert_eq!(rows[0][5], Value::Int(2));
        assert_eq!(rows[1][5], Value::Int(1));
    }

    #[test]
    fn empty_keys_rejected() {
        let err = frame().group_by(&[], &[]).unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn sum_of_all_null_group_is_null() {
        let df = DataFrame::from_rows(
            Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)])
                .unwrap()
                .into_shared(),
            vec![vec![Value::Int(1), Value::Null]],
        )
        .unwrap();
        let g = df
            .group_by(&["k"], &[Agg::new(AggOp::Sum, "v", "s")])
            .unwrap();
        assert!(g.collect_rows().unwrap()[0][1].is_null());
    }

    #[test]
    fn deterministic_across_partitioning() {
        let base = frame();
        let a = base
            .group_by(&["sid"], &[Agg::new(AggOp::Sum, "v", "s")])
            .unwrap()
            .collect_rows()
            .unwrap();
        let b = base
            .repartition(5)
            .unwrap()
            .group_by(&["sid"], &[Agg::new(AggOp::Sum, "v", "s")])
            .unwrap()
            .collect_rows()
            .unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn sum_rejects_strings() {
        let err = frame()
            .group_by(&["sid"], &[Agg::new(AggOp::Sum, "sid", "s")])
            .unwrap_err();
        assert!(matches!(err, Error::Eval(_)));
    }
}
