//! Hash joins between DataFrames.

use std::collections::HashMap;
use std::sync::Arc;

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::{Field, Schema};
use crate::error::{Error, Result};
use crate::exec::Executor;
use crate::frame::DataFrame;
use crate::value::Value;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching rows.
    Inner,
    /// Keep all left rows; unmatched right columns become null.
    Left,
}

/// Hash-join implementation: builds a hash table over the (usually smaller)
/// right side, then probes left partitions in parallel.
///
/// This mirrors a Spark broadcast join, which is exactly the paper's use:
/// the raw trace `K_pre` (huge, partitioned) is joined with the rule table
/// `U_comb` (tiny, broadcast) on `(m_id, b_id)`.
pub(crate) fn hash_join(
    left: &DataFrame,
    right: &DataFrame,
    left_keys: &[&str],
    right_keys: &[&str],
    join_type: JoinType,
    exec: Executor,
) -> Result<DataFrame> {
    if left_keys.is_empty() || left_keys.len() != right_keys.len() {
        return Err(Error::InvalidArgument(
            "join requires equally many non-empty left and right keys".into(),
        ));
    }
    let left_schema = left.schema();
    let right_schema = right.schema();
    let left_key_idx: Vec<usize> = left_keys
        .iter()
        .map(|k| left_schema.index_of(k))
        .collect::<Result<_>>()?;
    let right_key_idx: Vec<usize> = right_keys
        .iter()
        .map(|k| right_schema.index_of(k))
        .collect::<Result<_>>()?;

    // Output carries all left columns plus the right side's non-key columns.
    let right_out_idx: Vec<usize> = (0..right_schema.len())
        .filter(|i| !right_key_idx.contains(i))
        .collect();
    let mut fields: Vec<Field> = left_schema.fields().to_vec();
    for &i in &right_out_idx {
        let f = &right_schema.fields()[i];
        if left_schema.contains(f.name()) {
            return Err(Error::DuplicateColumn(f.name().to_string()));
        }
        fields.push(f.clone());
    }
    let out_schema = Schema::new(fields)?.into_shared();

    // Build: right key -> list of (partition, row).
    let mut table: HashMap<Vec<Value>, Vec<(usize, usize)>> = HashMap::new();
    for (pi, batch) in right.partitions().iter().enumerate() {
        for row in 0..batch.num_rows() {
            let key: Vec<Value> = right_key_idx
                .iter()
                .map(|&ci| batch.column(ci).get(row))
                .collect();
            if key.iter().any(Value::is_null) {
                continue; // null keys never match, as in SQL
            }
            table.entry(key).or_default().push((pi, row));
        }
    }
    let table = Arc::new(table);
    let right_parts: Arc<Vec<Batch>> = Arc::new(right.partitions().to_vec());

    let probed: Vec<Result<Batch>> = exec.map_ref(left.partitions(), |lbatch| {
        probe_partition(
            lbatch,
            &left_key_idx,
            &table,
            &right_parts,
            &right_out_idx,
            join_type,
            &out_schema,
        )
    });
    let partitions = probed.into_iter().collect::<Result<Vec<_>>>()?;
    DataFrame::from_partitions(out_schema, partitions)
}

fn probe_partition(
    lbatch: &Batch,
    left_key_idx: &[usize],
    table: &HashMap<Vec<Value>, Vec<(usize, usize)>>,
    right_parts: &[Batch],
    right_out_idx: &[usize],
    join_type: JoinType,
    out_schema: &Arc<Schema>,
) -> Result<Batch> {
    // Gather match coordinates first, then materialize with typed takes
    // (no per-cell boxing on the usually wide left side).
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<(usize, usize)>> = Vec::new();
    let mut key = Vec::with_capacity(left_key_idx.len());
    for row in 0..lbatch.num_rows() {
        key.clear();
        key.extend(left_key_idx.iter().map(|&ci| lbatch.column(ci).get(row)));
        let matches = if key.iter().any(Value::is_null) {
            None
        } else {
            table.get(&key)
        };
        match matches {
            Some(hits) => {
                for &hit in hits {
                    left_rows.push(row);
                    right_rows.push(Some(hit));
                }
            }
            None => {
                if join_type == JoinType::Left {
                    left_rows.push(row);
                    right_rows.push(None);
                }
            }
        }
    }
    let left_out = lbatch.take(&left_rows);
    let n_left = lbatch.num_columns();
    let mut columns: Vec<Column> = left_out.columns().to_vec();
    for (out_off, &rci) in right_out_idx.iter().enumerate() {
        let dtype = out_schema.fields()[n_left + out_off].data_type();
        let mut col = Column::with_capacity(dtype, right_rows.len());
        for hit in &right_rows {
            match hit {
                Some((pi, ri)) => col.push(right_parts[*pi].column(rci).get(*ri))?,
                None => col.push(Value::Null)?,
            }
        }
        columns.push(col);
    }
    Batch::new(out_schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::frame::DataFrame;

    fn left() -> DataFrame {
        DataFrame::from_rows(
            Schema::from_pairs([("m_id", DataType::Int), ("payload", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![
                vec![Value::Int(3), Value::from("aa")],
                vec![Value::Int(7), Value::from("bb")],
                vec![Value::Int(3), Value::from("cc")],
                vec![Value::Null, Value::from("dd")],
            ],
        )
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::from_rows(
            Schema::from_pairs([("id", DataType::Int), ("rule", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![
                vec![Value::Int(3), Value::from("wpos")],
                vec![Value::Int(3), Value::from("wvel")],
                vec![Value::Int(9), Value::from("xx")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_one_to_many() {
        let j = left()
            .join(&right(), &["m_id"], &["id"], JoinType::Inner)
            .unwrap();
        // rows with m_id=3 each match two rules
        assert_eq!(j.num_rows(), 4);
        let rows = j.collect_rows().unwrap();
        assert!(rows
            .iter()
            .all(|r| r[0] == Value::Int(3)));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let j = left()
            .join(&right(), &["m_id"], &["id"], JoinType::Left)
            .unwrap();
        assert_eq!(j.num_rows(), 6); // 2 + 2 matches for the two m_id=3 rows, plus 7 and null rows
        let rows = j.collect_rows().unwrap();
        let unmatched: Vec<_> = rows.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn null_keys_never_match() {
        let j = left()
            .join(&right(), &["m_id"], &["id"], JoinType::Inner)
            .unwrap();
        assert!(j
            .collect_rows()
            .unwrap()
            .iter()
            .all(|r| !r[0].is_null()));
    }

    #[test]
    fn duplicate_output_name_rejected() {
        let r = DataFrame::from_rows(
            Schema::from_pairs([("id", DataType::Int), ("payload", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![vec![Value::Int(3), Value::from("zz")]],
        )
        .unwrap();
        let err = left()
            .join(&r, &["m_id"], &["id"], JoinType::Inner)
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateColumn(_)));
    }

    #[test]
    fn key_arity_validated() {
        let err = left()
            .join(&right(), &[], &[], JoinType::Inner)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        let err = left()
            .join(&right(), &["m_id"], &["id", "rule"], JoinType::Inner)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn join_deterministic_across_worker_counts() {
        let l = left().repartition(3).unwrap();
        let a = {
            crate::exec::set_default_workers(1);
            l.join(&right(), &["m_id"], &["id"], JoinType::Inner)
                .unwrap()
                .collect_rows()
                .unwrap()
        };
        let b = {
            crate::exec::set_default_workers(8);
            l.join(&right(), &["m_id"], &["id"], JoinType::Inner)
                .unwrap()
                .collect_rows()
                .unwrap()
        };
        assert_eq!(a, b);
    }
}
