//! Hash joins between DataFrames.

use std::collections::HashMap;
use std::sync::Arc;

use crate::batch::Batch;
use crate::column::Column;
use crate::datatype::{DataType, Field, Schema};
use crate::error::{Error, Result};
use crate::exec::Executor;
use crate::frame::DataFrame;
use crate::value::Value;

/// Join flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinType {
    /// Keep only matching rows.
    Inner,
    /// Keep all left rows; unmatched right columns become null.
    Left,
}

/// Coordinates of a build-side row: (partition, row).
type RowRef = (u32, u32);

/// The build-side hash table, specialized by key type.
///
/// The paper's hot join is `K_pre ⋈ U_comb` on `(b_id, m_id)` — a `(Str,
/// Int)` key — and trace tables are keyed by `m_id` alone elsewhere, so
/// those two shapes get fast paths that hash primitives directly instead of
/// allocating a boxed `Vec<Value>` key per row on both build and probe
/// sides. Strings are interned once on the (small, broadcast) build side;
/// probes then hash a `(u32, i64)` pair.
enum BuildTable {
    /// Single `Int` key.
    Int(HashMap<i64, Vec<RowRef>>),
    /// `(Str, Int)` composite key with build-side string interning.
    StrInt {
        ids: HashMap<Arc<str>, u32>,
        table: HashMap<(u32, i64), Vec<RowRef>>,
    },
    /// Any other key shape: boxed values (reference path).
    General(HashMap<Vec<Value>, Vec<RowRef>>),
}

fn key_types(schema: &Schema, idx: &[usize]) -> Vec<DataType> {
    idx.iter()
        .map(|&i| schema.fields()[i].data_type())
        .collect()
}

fn build_table(right: &DataFrame, right_key_idx: &[usize], kinds: &[DataType]) -> BuildTable {
    match kinds {
        [DataType::Int] => {
            let mut table: HashMap<i64, Vec<RowRef>> = HashMap::new();
            for (pi, batch) in right.partitions().iter().enumerate() {
                let keys = batch
                    .column(right_key_idx[0])
                    .as_int_slice()
                    .expect("schema-checked int key column");
                for (row, key) in keys.iter().enumerate() {
                    if let Some(k) = key {
                        table.entry(*k).or_default().push((pi as u32, row as u32));
                    }
                }
            }
            BuildTable::Int(table)
        }
        [DataType::Str, DataType::Int] => {
            let mut ids: HashMap<Arc<str>, u32> = HashMap::new();
            let mut table: HashMap<(u32, i64), Vec<RowRef>> = HashMap::new();
            for (pi, batch) in right.partitions().iter().enumerate() {
                let strs = batch
                    .column(right_key_idx[0])
                    .as_str_slice()
                    .expect("schema-checked str key column");
                let ints = batch
                    .column(right_key_idx[1])
                    .as_int_slice()
                    .expect("schema-checked int key column");
                for (row, (s, i)) in strs.iter().zip(ints).enumerate() {
                    let (Some(s), Some(i)) = (s, i) else {
                        continue; // null keys never match, as in SQL
                    };
                    let next_id = ids.len() as u32;
                    let sid = *ids.entry(s.clone()).or_insert(next_id);
                    table
                        .entry((sid, *i))
                        .or_default()
                        .push((pi as u32, row as u32));
                }
            }
            BuildTable::StrInt { ids, table }
        }
        _ => {
            let mut table: HashMap<Vec<Value>, Vec<RowRef>> = HashMap::new();
            for (pi, batch) in right.partitions().iter().enumerate() {
                for row in 0..batch.num_rows() {
                    let key: Vec<Value> = right_key_idx
                        .iter()
                        .map(|&ci| batch.column(ci).get(row))
                        .collect();
                    if key.iter().any(Value::is_null) {
                        continue; // null keys never match, as in SQL
                    }
                    table.entry(key).or_default().push((pi as u32, row as u32));
                }
            }
            BuildTable::General(table)
        }
    }
}

/// Hash-join implementation: builds a hash table over the (usually smaller)
/// right side, then probes left partitions in parallel.
///
/// This mirrors a Spark broadcast join, which is exactly the paper's use:
/// the raw trace `K_pre` (huge, partitioned) is joined with the rule table
/// `U_comb` (tiny, broadcast) on `(m_id, b_id)`.
pub(crate) fn hash_join(
    left: &DataFrame,
    right: &DataFrame,
    left_keys: &[&str],
    right_keys: &[&str],
    join_type: JoinType,
    exec: Executor,
) -> Result<DataFrame> {
    if left_keys.is_empty() || left_keys.len() != right_keys.len() {
        return Err(Error::InvalidArgument(
            "join requires equally many non-empty left and right keys".into(),
        ));
    }
    let left_schema = left.schema();
    let right_schema = right.schema();
    let left_key_idx: Vec<usize> = left_keys
        .iter()
        .map(|k| left_schema.index_of(k))
        .collect::<Result<_>>()?;
    let right_key_idx: Vec<usize> = right_keys
        .iter()
        .map(|k| right_schema.index_of(k))
        .collect::<Result<_>>()?;

    // Output carries all left columns plus the right side's non-key columns.
    let right_out_idx: Vec<usize> = (0..right_schema.len())
        .filter(|i| !right_key_idx.contains(i))
        .collect();
    let mut fields: Vec<Field> = left_schema.fields().to_vec();
    for &i in &right_out_idx {
        let f = &right_schema.fields()[i];
        if left_schema.contains(f.name()) {
            return Err(Error::DuplicateColumn(f.name().to_string()));
        }
        fields.push(f.clone());
    }
    let out_schema = Schema::new(fields)?.into_shared();

    // The typed fast paths require the same key shape on both sides;
    // mismatched shapes fall back to boxed values (and never match, as
    // before).
    let left_kinds = key_types(left_schema, &left_key_idx);
    let right_kinds = key_types(right_schema, &right_key_idx);
    let kinds = if left_kinds == right_kinds {
        left_kinds
    } else {
        Vec::new()
    };
    let table = Arc::new(build_table(right, &right_key_idx, &kinds));
    let right_parts: Arc<Vec<Batch>> = Arc::new(right.partitions().to_vec());

    let probed: Vec<Result<Batch>> = exec.map_ref(left.partitions(), |lbatch| {
        probe_partition(
            lbatch,
            &left_key_idx,
            &table,
            &right_parts,
            &right_out_idx,
            join_type,
            &out_schema,
        )
    });
    let partitions = probed.into_iter().collect::<Result<Vec<_>>>()?;
    Ok(DataFrame::from_partitions(out_schema, partitions)?.with_executor(exec))
}

/// Collects the match coordinates for one left partition: `left_rows[k]` is
/// the probe row of output row `k` and `right_rows[k]` its build-side hit
/// (None for an unmatched `Left`-join row).
fn probe_matches(
    lbatch: &Batch,
    left_key_idx: &[usize],
    table: &BuildTable,
    join_type: JoinType,
) -> (Vec<usize>, Vec<Option<RowRef>>) {
    let mut left_rows: Vec<usize> = Vec::new();
    let mut right_rows: Vec<Option<RowRef>> = Vec::new();
    let mut emit = |row: usize, hits: Option<&Vec<RowRef>>| match hits {
        Some(hits) => {
            for &hit in hits {
                left_rows.push(row);
                right_rows.push(Some(hit));
            }
        }
        None => {
            if join_type == JoinType::Left {
                left_rows.push(row);
                right_rows.push(None);
            }
        }
    };
    match table {
        BuildTable::Int(table) => {
            let keys = lbatch
                .column(left_key_idx[0])
                .as_int_slice()
                .expect("schema-checked int key column");
            for (row, key) in keys.iter().enumerate() {
                emit(row, key.and_then(|k| table.get(&k)));
            }
        }
        BuildTable::StrInt { ids, table } => {
            let strs = lbatch
                .column(left_key_idx[0])
                .as_str_slice()
                .expect("schema-checked str key column");
            let ints = lbatch
                .column(left_key_idx[1])
                .as_int_slice()
                .expect("schema-checked int key column");
            for (row, (s, i)) in strs.iter().zip(ints).enumerate() {
                let hits = match (s, i) {
                    (Some(s), Some(i)) => ids
                        .get(s.as_ref() as &str)
                        .and_then(|sid| table.get(&(*sid, *i))),
                    _ => None,
                };
                emit(row, hits);
            }
        }
        BuildTable::General(table) => {
            let mut key = Vec::with_capacity(left_key_idx.len());
            for row in 0..lbatch.num_rows() {
                key.clear();
                key.extend(left_key_idx.iter().map(|&ci| lbatch.column(ci).get(row)));
                let hits = if key.iter().any(Value::is_null) {
                    None
                } else {
                    table.get(&key)
                };
                emit(row, hits);
            }
        }
    }
    (left_rows, right_rows)
}

/// Typed gather of one right-side column along the hit list — the
/// columnar replacement for materializing each cell through
/// `Column::push(Value)`.
fn gather_right_column(
    right_parts: &[Batch],
    column_idx: usize,
    dtype: DataType,
    hits: &[Option<RowRef>],
) -> Column {
    macro_rules! gather {
        ($variant:ident, $slice:ident) => {{
            let slices: Vec<_> = right_parts
                .iter()
                .map(|b| {
                    b.column(column_idx)
                        .$slice()
                        .expect("schema-checked column type")
                })
                .collect();
            Column::$variant(
                hits.iter()
                    .map(|hit| hit.and_then(|(pi, ri)| slices[pi as usize][ri as usize].clone()))
                    .collect(),
            )
        }};
    }
    match dtype {
        DataType::Bool => gather!(Bool, as_bool_slice),
        DataType::Int => gather!(Int, as_int_slice),
        DataType::Float => gather!(Float, as_float_slice),
        DataType::Str => gather!(Str, as_str_slice),
        DataType::Bytes => gather!(Bytes, as_bytes_slice),
    }
}

fn probe_partition(
    lbatch: &Batch,
    left_key_idx: &[usize],
    table: &BuildTable,
    right_parts: &[Batch],
    right_out_idx: &[usize],
    join_type: JoinType,
    out_schema: &Arc<Schema>,
) -> Result<Batch> {
    // Gather match coordinates first, then materialize with typed takes on
    // the left and typed gathers on the right (no per-cell boxing on either
    // side).
    let (left_rows, right_rows) = probe_matches(lbatch, left_key_idx, table, join_type);
    let left_out = lbatch.take(&left_rows);
    let n_left = lbatch.num_columns();
    let mut columns: Vec<Column> = left_out.columns().to_vec();
    for (out_off, &rci) in right_out_idx.iter().enumerate() {
        let dtype = out_schema.fields()[n_left + out_off].data_type();
        columns.push(gather_right_column(right_parts, rci, dtype, &right_rows));
    }
    Batch::new(out_schema.clone(), columns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::frame::DataFrame;

    fn left() -> DataFrame {
        DataFrame::from_rows(
            Schema::from_pairs([("m_id", DataType::Int), ("payload", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![
                vec![Value::Int(3), Value::from("aa")],
                vec![Value::Int(7), Value::from("bb")],
                vec![Value::Int(3), Value::from("cc")],
                vec![Value::Null, Value::from("dd")],
            ],
        )
        .unwrap()
    }

    fn right() -> DataFrame {
        DataFrame::from_rows(
            Schema::from_pairs([("id", DataType::Int), ("rule", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![
                vec![Value::Int(3), Value::from("wpos")],
                vec![Value::Int(3), Value::from("wvel")],
                vec![Value::Int(9), Value::from("xx")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn inner_join_one_to_many() {
        let j = left()
            .join(&right(), &["m_id"], &["id"], JoinType::Inner)
            .unwrap();
        // rows with m_id=3 each match two rules
        assert_eq!(j.num_rows(), 4);
        let rows = j.collect_rows().unwrap();
        assert!(rows.iter().all(|r| r[0] == Value::Int(3)));
    }

    #[test]
    fn left_join_keeps_unmatched_with_nulls() {
        let j = left()
            .join(&right(), &["m_id"], &["id"], JoinType::Left)
            .unwrap();
        assert_eq!(j.num_rows(), 6); // 2 + 2 matches for the two m_id=3 rows, plus 7 and null rows
        let rows = j.collect_rows().unwrap();
        let unmatched: Vec<_> = rows.iter().filter(|r| r[2].is_null()).collect();
        assert_eq!(unmatched.len(), 2);
    }

    #[test]
    fn null_keys_never_match() {
        let j = left()
            .join(&right(), &["m_id"], &["id"], JoinType::Inner)
            .unwrap();
        assert!(j.collect_rows().unwrap().iter().all(|r| !r[0].is_null()));
    }

    #[test]
    fn str_int_composite_key_fast_path() {
        let l = DataFrame::from_rows(
            Schema::from_pairs([
                ("b_id", DataType::Str),
                ("m_id", DataType::Int),
                ("payload", DataType::Str),
            ])
            .unwrap()
            .into_shared(),
            vec![
                vec![Value::from("FC"), Value::Int(3), Value::from("aa")],
                vec![Value::from("DC"), Value::Int(3), Value::from("bb")],
                vec![Value::from("FC"), Value::Int(9), Value::from("cc")],
                vec![Value::Null, Value::Int(3), Value::from("dd")],
                vec![Value::from("ZZ"), Value::Int(3), Value::from("ee")],
            ],
        )
        .unwrap();
        let r = DataFrame::from_rows(
            Schema::from_pairs([
                ("rule_bus", DataType::Str),
                ("rule_mid", DataType::Int),
                ("rule", DataType::Str),
            ])
            .unwrap()
            .into_shared(),
            vec![
                vec![Value::from("FC"), Value::Int(3), Value::from("wpos")],
                vec![Value::from("FC"), Value::Int(3), Value::from("wvel")],
                vec![Value::from("DC"), Value::Int(3), Value::from("dpos")],
            ],
        )
        .unwrap();
        let j = l
            .join(
                &r,
                &["b_id", "m_id"],
                &["rule_bus", "rule_mid"],
                JoinType::Inner,
            )
            .unwrap();
        let rows = j.collect_rows().unwrap();
        // FC/3 matches two rules in build order, DC/3 one; 9, null and
        // unknown-bus rows match nothing.
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][3], Value::from("wpos"));
        assert_eq!(rows[1][3], Value::from("wvel"));
        assert_eq!(rows[2][3], Value::from("dpos"));
    }

    #[test]
    fn mismatched_key_types_join_empty() {
        // Int-vs-Str keys can never be equal; the join is valid but empty.
        let r = DataFrame::from_rows(
            Schema::from_pairs([("id", DataType::Str), ("rule", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![vec![Value::from("3"), Value::from("wpos")]],
        )
        .unwrap();
        let j = left()
            .join(&r, &["m_id"], &["id"], JoinType::Inner)
            .unwrap();
        assert_eq!(j.num_rows(), 0);
    }

    #[test]
    fn duplicate_output_name_rejected() {
        let r = DataFrame::from_rows(
            Schema::from_pairs([("id", DataType::Int), ("payload", DataType::Str)])
                .unwrap()
                .into_shared(),
            vec![vec![Value::Int(3), Value::from("zz")]],
        )
        .unwrap();
        let err = left()
            .join(&r, &["m_id"], &["id"], JoinType::Inner)
            .unwrap_err();
        assert!(matches!(err, Error::DuplicateColumn(_)));
    }

    #[test]
    fn key_arity_validated() {
        let err = left()
            .join(&right(), &[], &[], JoinType::Inner)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
        let err = left()
            .join(&right(), &["m_id"], &["id", "rule"], JoinType::Inner)
            .unwrap_err();
        assert!(matches!(err, Error::InvalidArgument(_)));
    }

    #[test]
    fn join_deterministic_across_worker_counts() {
        let l = left().repartition(3).unwrap();
        let run = |workers: usize| {
            l.clone()
                .with_executor(Executor::new(workers))
                .join(&right(), &["m_id"], &["id"], JoinType::Inner)
                .unwrap()
                .collect_rows()
                .unwrap()
        };
        assert_eq!(run(1), run(8));
    }

    #[test]
    fn join_result_keeps_executor() {
        let l = left().with_executor(Executor::new(5));
        let j = l
            .join(&right(), &["m_id"], &["id"], JoinType::Inner)
            .unwrap();
        assert_eq!(j.executor(), Executor::new(5));
    }
}
