//! # ivnt-frame — embedded columnar DataFrame engine
//!
//! A small, partition-parallel relational engine standing in for Apache
//! Spark in the DAC'18 reproduction *"Automated Interpretation and Reduction
//! of In-Vehicle Network Traces at a Large Scale"*. The paper's Algorithm 1
//! is written in relational algebra (selection σ, join ⋈, row-wise map `F`,
//! union ∪) over horizontally partitioned tables; this crate provides
//! exactly those operators:
//!
//! * [`DataFrame`] — immutable, horizontally partitioned
//!   table of typed [`Column`]s,
//! * [`Expr`] — row-wise expressions and user-defined functions,
//! * hash [`join`](frame::DataFrame::join), grouped
//!   [`aggregation`](frame::DataFrame::group_by), sorting, window helpers
//!   ([`lag`](frame::DataFrame::with_lag),
//!   [`diff`](frame::DataFrame::with_diff),
//!   [`forward_fill`](frame::DataFrame::forward_fill)),
//! * an [`Executor`] that runs row-wise operators on all
//!   partitions in parallel with deterministic output order.
//!
//! # Examples
//!
//! ```
//! use ivnt_frame::prelude::*;
//!
//! # fn main() -> ivnt_frame::Result<()> {
//! let schema = Schema::from_pairs([
//!     ("t", DataType::Float),
//!     ("m_id", DataType::Int),
//!     ("b_id", DataType::Str),
//! ])?
//! .into_shared();
//! let trace = DataFrame::from_rows(
//!     schema,
//!     vec![
//!         vec![Value::Float(2.0), Value::Int(3), Value::from("FC")],
//!         vec![Value::Float(2.5), Value::Int(3), Value::from("FC")],
//!         vec![Value::Float(2.6), Value::Int(11), Value::from("K-LIN")],
//!     ],
//! )?
//! .repartition(2)?;
//!
//! // Preselection: keep only messages relevant to the wiper domain.
//! let pre = trace.filter(&col("m_id").eq(lit(3i64)).and(col("b_id").eq(lit("FC"))))?;
//! assert_eq!(pre.num_rows(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod column;
pub mod csv;
pub mod datatype;
pub mod error;
pub mod exec;
pub mod expr;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod value;

pub use batch::Batch;
pub use column::Column;
pub use datatype::{DataType, Field, Schema};
pub use error::{Error, Result};
pub use exec::Executor;
pub use expr::{col, lit, udf, BinOp, Expr, UnaryOp};
pub use frame::DataFrame;
pub use groupby::{Agg, AggOp};
pub use join::JoinType;
pub use value::Value;

/// Convenient glob import of the engine's common types.
pub mod prelude {
    pub use crate::batch::Batch;
    pub use crate::column::Column;
    pub use crate::datatype::{DataType, Field, Schema};
    pub use crate::exec::Executor;
    pub use crate::expr::{col, lit, udf, Expr};
    pub use crate::frame::DataFrame;
    pub use crate::groupby::{Agg, AggOp};
    pub use crate::join::JoinType;
    pub use crate::value::Value;
}
