//! Dynamically typed cell values.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::datatype::DataType;

/// A single dynamically typed cell of a [`Batch`](crate::batch::Batch).
///
/// `Value` is the lingua franca of row-wise operations: expression
/// evaluation, user-defined functions and join/group keys all operate on it.
/// Columnar storage keeps data in typed vectors ([`Column`](crate::column::Column));
/// `Value` is only materialized at row boundaries.
///
/// String and byte payloads are reference counted so cloning a `Value` is
/// cheap regardless of payload size.
#[derive(Debug, Clone, Default)]
pub enum Value {
    /// Missing value (SQL NULL).
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string (shared).
    Str(Arc<str>),
    /// Raw byte payload (shared), e.g. a CAN frame payload.
    Bytes(Arc<[u8]>),
}

impl Value {
    /// Returns the [`DataType`] of this value, or `None` for [`Value::Null`].
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Bytes(_) => Some(DataType::Bytes),
        }
    }

    /// `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extracts a bool, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Extracts an integer, if this is one.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Extracts a float; integers are widened to `f64`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// Extracts a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Extracts the byte payload, if this is one.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Total ordering across all values.
    ///
    /// Nulls sort first, then booleans, integers/floats (compared
    /// numerically against each other), strings and byte payloads. Floats
    /// use [`f64::total_cmp`], so `NaN` has a stable position. This is the
    /// ordering used by [`DataFrame::sort_by`](crate::frame::DataFrame::sort_by),
    /// which keeps parallel runs deterministic.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Bytes(_) => 4,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Null, Null) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64).to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Bytes(a), Bytes(b)) => a == b,
            _ => false,
        }
    }
}

// Float equality above is bitwise (NaN == NaN, -0.0 != 0.0), which makes the
// relation reflexive and therefore a valid `Eq` for use as join/group keys.
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                // Int and Float hash through the same f64-bits path so that
                // Int(2) == Float(2.0) implies equal hashes.
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Bytes(b) => {
                for byte in b.iter() {
                    write!(f, "{byte:02x}")?;
                }
                Ok(())
            }
        }
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(Arc::from(v))
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}
impl From<Arc<str>> for Value {
    fn from(v: Arc<str>) -> Self {
        Value::Str(v)
    }
}
impl From<&[u8]> for Value {
    fn from(v: &[u8]) -> Self {
        Value::Bytes(Arc::from(v))
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Arc::from(v.as_slice()))
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Value::from(3i64).as_int(), Some(3));
        assert_eq!(Value::from(1.5).as_float(), Some(1.5));
        assert_eq!(Value::from("abc").as_str(), Some("abc"));
        assert_eq!(Value::from(vec![1u8, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::from(None::<i64>).is_null());
    }

    #[test]
    fn int_widens_to_float() {
        assert_eq!(Value::Int(4).as_float(), Some(4.0));
        assert_eq!(Value::Int(4), Value::Float(4.0));
    }

    #[test]
    fn nan_is_stable_for_keys() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(f64::NAN);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn int_float_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        Value::Int(7).hash(&mut h1);
        Value::Float(7.0).hash(&mut h2);
        assert_eq!(Value::Int(7), Value::Float(7.0));
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn total_ordering_ranks_types() {
        let mut vals = [
            Value::from("z"),
            Value::Null,
            Value::from(1i64),
            Value::from(false),
            Value::from(0.5),
        ];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Bool(false));
        assert_eq!(vals[2], Value::Float(0.5));
        assert_eq!(vals[3], Value::Int(1));
        assert_eq!(vals[4], Value::from("z"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::from(vec![0xABu8, 0x01]).to_string(), "ab01");
    }
}
