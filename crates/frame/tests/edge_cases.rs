//! Edge cases: empty frames, empty groups, empty join sides — paths that
//! real pipelines hit whenever a preselection matches nothing.

use ivnt_frame::prelude::*;

fn schema() -> std::sync::Arc<Schema> {
    Schema::from_pairs([("k", DataType::Int), ("v", DataType::Float)])
        .unwrap()
        .into_shared()
}

fn empty() -> DataFrame {
    DataFrame::empty(schema())
}

fn one_row() -> DataFrame {
    DataFrame::from_rows(schema(), vec![vec![Value::Int(1), Value::Float(2.0)]]).unwrap()
}

#[test]
fn filter_select_sort_on_empty() {
    let e = empty();
    assert_eq!(e.filter(&col("k").gt(lit(0i64))).unwrap().num_rows(), 0);
    assert_eq!(e.select(&["v"]).unwrap().schema().len(), 1);
    assert_eq!(e.sort_by(&["k"], &[true]).unwrap().num_rows(), 0);
    assert_eq!(e.distinct().unwrap().num_rows(), 0);
    assert_eq!(e.limit(5).num_rows(), 0);
    assert!(e.collect_rows().unwrap().is_empty());
}

#[test]
fn join_with_empty_right_side() {
    let left = one_row();
    let right = DataFrame::empty(
        Schema::from_pairs([("k2", DataType::Int), ("w", DataType::Str)])
            .unwrap()
            .into_shared(),
    );
    let inner = left.join(&right, &["k"], &["k2"], JoinType::Inner).unwrap();
    assert_eq!(inner.num_rows(), 0);
    assert_eq!(inner.schema().len(), 3);
    let outer = left.join(&right, &["k"], &["k2"], JoinType::Left).unwrap();
    assert_eq!(outer.num_rows(), 1);
    assert!(outer.collect_rows().unwrap()[0][2].is_null());
}

#[test]
fn join_with_empty_left_side() {
    // Right carries distinct column names so the output schema is valid.
    let right = one_row()
        .rename_column("k", "k2")
        .unwrap()
        .rename_column("v", "w")
        .unwrap();
    let joined = empty()
        .join(&right, &["k"], &["k2"], JoinType::Inner)
        .unwrap();
    assert_eq!(joined.num_rows(), 0);
}

#[test]
fn group_by_on_empty() {
    let g = empty()
        .group_by(&["k"], &[Agg::new(AggOp::Sum, "v", "s")])
        .unwrap();
    assert_eq!(g.num_rows(), 0);
    assert_eq!(g.schema().len(), 2);
}

#[test]
fn union_empty_with_nonempty() {
    let u = empty().union(&one_row()).unwrap();
    assert_eq!(u.num_rows(), 1);
    let u = one_row().union(&empty()).unwrap();
    assert_eq!(u.num_rows(), 1);
}

#[test]
fn window_ops_on_empty() {
    let e = empty();
    let lagged = e.with_lag("v", 1, "prev").unwrap();
    assert_eq!(lagged.num_rows(), 0);
    assert!(lagged.schema().contains("prev"));
    let filled = e.forward_fill("v").unwrap();
    assert_eq!(filled.num_rows(), 0);
}

#[test]
fn repartition_empty() {
    let r = empty().repartition(4).unwrap();
    assert_eq!(r.num_rows(), 0);
    // A single empty partition keeps operators working.
    assert!(r.num_partitions() <= 1);
}

#[test]
fn describe_on_empty() {
    let d = empty().describe().unwrap();
    // Both numeric columns described, zero counts.
    assert_eq!(d.num_rows(), 2);
    assert_eq!(d.collect_rows().unwrap()[0][1], Value::Int(0));
}

#[test]
fn csv_roundtrip_empty() {
    let mut buf = Vec::new();
    ivnt_frame::csv::write_csv(&empty(), &mut buf).unwrap();
    let parsed = ivnt_frame::csv::read_csv(buf.as_slice(), schema()).unwrap();
    assert_eq!(parsed.num_rows(), 0);
}

#[test]
fn single_row_sort_and_lag() {
    let df = one_row();
    let s = df.sort_by(&["v"], &[false]).unwrap();
    assert_eq!(s.num_rows(), 1);
    let l = df.with_lag("v", 1, "prev").unwrap();
    assert!(l.collect_rows().unwrap()[0][2].is_null());
    let d = df.with_diff("v", "gap").unwrap();
    assert!(d.collect_rows().unwrap()[0][2].is_null());
}
