//! Stress tests for the morsel-driven executor: many tiny morsels, wildly
//! uneven item costs, worker-count sweeps, concurrent dispatchers and panic
//! propagation — always asserting the partition-order determinism the
//! pipeline's reproducibility guarantee rests on.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};

use ivnt_frame::exec::Executor;

#[test]
fn many_tiny_morsels_preserve_order() {
    // 10_000 items across 8 workers means ~156-item morsels; with near-zero
    // per-item cost this maximizes cursor contention.
    let items: Vec<u32> = (0..10_000).collect();
    let expected: Vec<u64> = items.iter().map(|&i| u64::from(i) + 1).collect();
    for workers in [1usize, 2, 3, 8, 64] {
        let out = Executor::new(workers).map_ref(&items, |&i| u64::from(i) + 1);
        assert_eq!(out, expected, "order broken at {workers} workers");
    }
}

#[test]
fn uneven_item_costs_balance_and_stay_ordered() {
    // Item cost varies by ~3 orders of magnitude; morsel stealing must
    // still produce output in input order.
    let items: Vec<usize> = (0..400).collect();
    let work = |&i: &usize| -> usize {
        let spins = if i % 97 == 0 { 20_000 } else { 10 };
        let mut acc = i;
        for k in 0..spins {
            acc = acc.wrapping_mul(31).wrapping_add(k);
        }
        acc
    };
    let reference: Vec<usize> = items.iter().map(work).collect();
    for workers in [2usize, 5, 16] {
        let out = Executor::new(workers).map_ref(&items, work);
        assert_eq!(out, reference, "mismatch at {workers} workers");
    }
}

#[test]
fn results_bit_identical_across_worker_sweep() {
    let items: Vec<f64> = (0..2_531).map(|i| f64::from(i) * 0.1).collect();
    let f = |&x: &f64| (x.sin() * 1e6).round();
    let reference = Executor::new(1).map_ref(&items, f);
    for workers in [2usize, 3, 4, 7, 8, 13] {
        assert_eq!(
            Executor::new(workers).map_ref(&items, f),
            reference,
            "nondeterminism at {workers} workers"
        );
    }
}

#[test]
fn owned_map_runs_every_item_exactly_once() {
    let calls = AtomicUsize::new(0);
    let items: Vec<usize> = (0..5_000).collect();
    let out = Executor::new(8).map(items, |i| {
        calls.fetch_add(1, Ordering::Relaxed);
        i
    });
    assert_eq!(calls.load(Ordering::Relaxed), 5_000);
    assert_eq!(out, (0..5_000).collect::<Vec<_>>());
}

#[test]
fn concurrent_dispatchers_share_the_pool() {
    // Several OS threads dispatch simultaneously; the shared pool must keep
    // every job's outputs separate and ordered.
    let handles: Vec<_> = (0..6)
        .map(|t| {
            std::thread::spawn(move || {
                let items: Vec<usize> = (0..3_000).collect();
                let out = Executor::new(4).map_ref(&items, |&i| i * 7 + t);
                assert_eq!(
                    out,
                    items.iter().map(|&i| i * 7 + t).collect::<Vec<_>>(),
                    "dispatcher {t} corrupted"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("dispatcher thread panicked");
    }
}

#[test]
fn repeated_jobs_reuse_the_pool() {
    // 300 successive small jobs: thread spawning per job would make this
    // crawl; the persistent pool keeps it trivial and, more importantly,
    // must not leak adverts or wedge its queue.
    let exec = Executor::new(4);
    for round in 0..300usize {
        let items: Vec<usize> = (0..17).collect();
        let out = exec.map_ref(&items, |&i| i + round);
        assert_eq!(out[16], 16 + round);
    }
}

#[test]
fn panic_in_any_morsel_reaches_caller_and_pool_recovers() {
    let exec = Executor::new(8);
    for &bad in &[0usize, 1_234, 4_999] {
        let items: Vec<usize> = (0..5_000).collect();
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            exec.map_ref(&items, |&i| {
                assert!(i != bad, "planted panic at {i}");
                i
            })
        }));
        assert!(result.is_err(), "panic at {bad} was swallowed");
        // The pool must come back clean after each unwind.
        let ok = exec.map_ref(&[1usize, 2, 3], |&i| i * 10);
        assert_eq!(ok, vec![10, 20, 30]);
    }
}

#[test]
fn single_item_and_empty_inputs() {
    let exec = Executor::new(16);
    assert_eq!(exec.map_ref(&[42usize], |&i| i), vec![42]);
    assert!(exec.map_ref(&[] as &[usize], |&i| i).is_empty());
}

#[test]
fn nested_maps_across_worker_counts() {
    // Nested dispatch (joins inside partition maps do this) must neither
    // deadlock nor reorder, at any worker combination.
    for outer_workers in [1usize, 2, 4] {
        for inner_workers in [1usize, 4] {
            let outer: Vec<usize> = (0..10).collect();
            let out = Executor::new(outer_workers).map_ref(&outer, |&i| {
                let inner: Vec<usize> = (0..50).collect();
                Executor::new(inner_workers)
                    .map_ref(&inner, |&j| i * 1_000 + j)
                    .last()
                    .copied()
                    .unwrap()
            });
            let expected: Vec<usize> = (0..10).map(|i| i * 1_000 + 49).collect();
            assert_eq!(
                out, expected,
                "mismatch at {outer_workers}x{inner_workers} workers"
            );
        }
    }
}
