//! Property-based tests for the frame engine's relational invariants.

use ivnt_frame::prelude::*;
use proptest::prelude::*;

fn arb_rows() -> impl Strategy<Value = Vec<(i64, f64, bool)>> {
    prop::collection::vec((-1000i64..1000, -1e6f64..1e6, any::<bool>()), 0..200)
}

fn frame_of(rows: &[(i64, f64, bool)], parts: usize) -> DataFrame {
    let schema = Schema::from_pairs([
        ("k", DataType::Int),
        ("x", DataType::Float),
        ("b", DataType::Bool),
    ])
    .unwrap()
    .into_shared();
    DataFrame::from_rows(
        schema,
        rows.iter()
            .map(|&(k, x, b)| vec![Value::Int(k), Value::Float(x), Value::Bool(b)]),
    )
    .unwrap()
    .repartition(parts.max(1))
    .unwrap()
}

proptest! {
    /// Filtering then counting equals counting matching rows directly.
    #[test]
    fn filter_matches_reference(rows in arb_rows(), parts in 1usize..8) {
        let df = frame_of(&rows, parts);
        let out = df.filter(&col("k").ge(lit(0i64))).unwrap();
        let expected = rows.iter().filter(|(k, _, _)| *k >= 0).count();
        prop_assert_eq!(out.num_rows(), expected);
    }

    /// Repartitioning never changes content or global order.
    #[test]
    fn repartition_is_content_preserving(rows in arb_rows(), a in 1usize..7, b in 1usize..7) {
        let df = frame_of(&rows, a);
        let re = df.repartition(b).unwrap();
        prop_assert_eq!(df.collect_rows().unwrap(), re.collect_rows().unwrap());
    }

    /// Results are bit-identical for 1 worker and many workers.
    #[test]
    fn parallelism_is_deterministic(rows in arb_rows(), parts in 1usize..8) {
        let df = frame_of(&rows, parts);
        let expr = col("x").mul(lit(2.0)).add(col("k"));
        let serial = df.clone().with_executor(Executor::new(1))
            .with_column("y", &expr).unwrap().collect_rows().unwrap();
        let parallel = df.with_executor(Executor::new(6))
            .with_column("y", &expr).unwrap().collect_rows().unwrap();
        prop_assert_eq!(serial, parallel);
    }

    /// Sorting yields a non-decreasing key column and preserves multiset.
    #[test]
    fn sort_orders_and_preserves(rows in arb_rows(), parts in 1usize..8) {
        let df = frame_of(&rows, parts);
        let sorted = df.sort_by(&["k"], &[true]).unwrap();
        let keys: Vec<i64> = sorted
            .column_values("k").unwrap()
            .iter().map(|v| v.as_int().unwrap()).collect();
        prop_assert!(keys.windows(2).all(|w| w[0] <= w[1]));
        let mut orig: Vec<i64> = rows.iter().map(|r| r.0).collect();
        orig.sort_unstable();
        prop_assert_eq!(keys, orig);
    }

    /// group_by count over a key equals a hand-rolled hash count.
    #[test]
    fn group_count_matches_reference(rows in arb_rows(), parts in 1usize..8) {
        let df = frame_of(&rows, parts);
        if rows.is_empty() { return Ok(()); }
        let g = df.group_by(&["k"], &[Agg::new(AggOp::Count, "k", "n")]).unwrap();
        let mut expected = std::collections::HashMap::new();
        for (k, _, _) in &rows {
            *expected.entry(*k).or_insert(0i64) += 1;
        }
        let got: std::collections::HashMap<i64, i64> = g
            .collect_rows().unwrap()
            .into_iter()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Join with a key subset behaves like nested-loop reference on small input.
    #[test]
    fn join_matches_nested_loop(rows in prop::collection::vec((-5i64..5, -5i64..5), 0..40)) {
        let schema_l = Schema::from_pairs([("k", DataType::Int), ("a", DataType::Int)])
            .unwrap().into_shared();
        let schema_r = Schema::from_pairs([("k2", DataType::Int), ("b", DataType::Int)])
            .unwrap().into_shared();
        let left = DataFrame::from_rows(
            schema_l,
            rows.iter().map(|&(k, a)| vec![Value::Int(k), Value::Int(a)]),
        ).unwrap().repartition(3).unwrap();
        let right = DataFrame::from_rows(
            schema_r,
            rows.iter().map(|&(k, a)| vec![Value::Int(k + 1), Value::Int(a)]),
        ).unwrap();
        let joined = left.join(&right, &["k"], &["k2"], JoinType::Inner).unwrap();
        let mut expected = 0usize;
        for &(lk, _) in &rows {
            expected += rows.iter().filter(|&&(rk, _)| rk + 1 == lk).count();
        }
        prop_assert_eq!(joined.num_rows(), expected);
    }

    /// union then distinct of a frame with itself is distinct of the frame.
    #[test]
    fn union_distinct_idempotent(rows in arb_rows()) {
        let df = frame_of(&rows, 2);
        let u = df.union(&df).unwrap().distinct().unwrap();
        let d = df.distinct().unwrap();
        prop_assert_eq!(u.collect_rows().unwrap(), d.collect_rows().unwrap());
    }

    /// forward_fill leaves no interior nulls after the first non-null.
    #[test]
    fn forward_fill_no_interior_nulls(vals in prop::collection::vec(prop::option::of(-100i64..100), 0..100)) {
        let schema = Schema::from_pairs([("v", DataType::Int)]).unwrap().into_shared();
        let df = DataFrame::from_rows(
            schema,
            vals.iter().map(|v| vec![Value::from(*v)]),
        ).unwrap().repartition(3).unwrap();
        let filled = df.forward_fill("v").unwrap();
        let out = filled.column_values("v").unwrap();
        let first_set = vals.iter().position(|v| v.is_some());
        for (i, v) in out.iter().enumerate() {
            match first_set {
                Some(p) if i >= p => prop_assert!(!v.is_null()),
                _ => prop_assert!(v.is_null()),
            }
        }
    }
}
