//! Pass 2: value-level scoring of the candidate segments — byte-order
//! (endianness) resolution, Motorola chain reassembly, and
//! constant/counter/sensor classification.
//!
//! Segmentation (pass 1) splits multi-byte Motorola fields at byte
//! boundaries: within every byte the significance of a Motorola field
//! *increases* with the Intel bit index, so the carry chain is contiguous
//! inside a byte but jumps to the byte *below* at the boundary, where the
//! flip-coincidence test severs the run. Pass 2 repairs this: for every
//! structurally eligible pair of adjacent segments it tracks whether the
//! upper byte's value changes coincide with a wrap of the lower byte's
//! value (carry agreement) and whether the concatenated big-endian reading
//! moves more smoothly than the little-endian one; passing links are
//! greedily chained back into one Motorola field.

use std::collections::HashMap;

use ivnt_core::rules::InferParams;
use ivnt_protocol::bits::ByteOrder;

use crate::profile::{fold, mask, BitProfile, Profiler, Segment};
use crate::SignalClass;

/// Minimum hi-segment change events before a link verdict is trusted.
const MIN_LINK_CHANGES: u64 = 4;

/// Value-delta statistics of one candidate field.
#[derive(Debug, Default, Clone, Copy)]
struct ValStats {
    changes: u64,
    plus1: u64,
    minus1: u64,
    wraps_up: u64,
    wraps_down: u64,
}

impl ValStats {
    fn observe(&mut self, old: u64, new: u64, max: u64) {
        if old == new {
            return;
        }
        self.changes += 1;
        if new == old + 1 {
            self.plus1 += 1;
        } else if old == max && new == 0 {
            self.wraps_up += 1;
        } else if old == new + 1 {
            self.minus1 += 1;
        } else if old == 0 && new == max {
            self.wraps_down += 1;
        }
    }

    fn classify(&self, counter_fraction: f64) -> SignalClass {
        if self.changes == 0 {
            return SignalClass::Constant;
        }
        let up = self.plus1 + self.wraps_up;
        let down = self.minus1 + self.wraps_down;
        if up.max(down) as f64 >= counter_fraction * self.changes as f64 {
            SignalClass::Counter
        } else {
            SignalClass::Sensor
        }
    }
}

/// Byte-order evidence for one eligible pair of adjacent segments, `hi`
/// in the lower byte (big-endian hypothesis) and `lo` in the byte above.
#[derive(Debug, Clone, Copy)]
struct LinkStats {
    hi_len: u16,
    lo_len: u16,
    hi_changes: u64,
    hi_change_lo_wrap: u64,
    be: ValStats,
    be_abs_delta: f64,
    le_abs_delta: f64,
}

impl LinkStats {
    fn new(hi_len: u16, lo_len: u16) -> LinkStats {
        LinkStats {
            hi_len,
            lo_len,
            hi_changes: 0,
            hi_change_lo_wrap: 0,
            be: ValStats::default(),
            be_abs_delta: 0.0,
            le_abs_delta: 0.0,
        }
    }

    fn observe(&mut self, hi_old: u64, hi_new: u64, lo_old: u64, lo_new: u64) {
        let be_old = (hi_old << self.lo_len) | lo_old;
        let be_new = (hi_new << self.lo_len) | lo_new;
        let le_old = (lo_old << self.hi_len) | hi_old;
        let le_new = (lo_new << self.hi_len) | hi_new;
        self.be
            .observe(be_old, be_new, mask(self.hi_len + self.lo_len));
        self.be_abs_delta += be_old.abs_diff(be_new) as f64;
        self.le_abs_delta += le_old.abs_diff(le_new) as f64;
        if hi_old != hi_new {
            self.hi_changes += 1;
            // A carry into the hi part means the lo part wrapped: its
            // value jumped by more than half its range.
            if 2 * lo_old.abs_diff(lo_new) > mask(self.lo_len) {
                self.hi_change_lo_wrap += 1;
            }
        }
    }

    fn passes(&self, params: &InferParams) -> bool {
        self.hi_changes >= MIN_LINK_CHANGES
            && self.hi_change_lo_wrap as f64 >= params.carry_fraction * self.hi_changes as f64
            && self.be_abs_delta < self.le_abs_delta
    }
}

/// Can adjacent segments `a` (lower byte) and `b` (byte above) be the
/// hi/lo halves of one Motorola field? The hi part of a Motorola field
/// always reaches bit 0 of its byte (the sawtooth walk only jumps bytes
/// at bit 0) and the lo part always ends at its byte's top bit.
fn link_eligible(a: &Segment, b: &Segment) -> bool {
    a.start.is_multiple_of(8)
        && a.len <= 8
        && b.start / 8 == a.start / 8 + 1
        && b.end().is_multiple_of(8)
        && b.len <= 8
}

/// One recovered field of a key, in the store's payload-absolute bit
/// numbering (`start_bit` is the LSB for Intel, the MSB for Motorola —
/// the DBC convention the interpret kernel expects).
#[derive(Debug, Clone)]
pub(crate) struct FieldOut {
    pub start_bit: u16,
    pub bit_len: u16,
    pub byte_order: ByteOrder,
    pub class: SignalClass,
    pub confidence: f64,
    pub mean_bit_entropy: f64,
}

/// Everything pass 2 learned about one `(b_id, m_id)` key.
#[derive(Debug)]
pub(crate) struct KeyResult {
    pub bus: String,
    pub message_id: u32,
    pub samples: u64,
    /// Per-bit flip counts — the observability record evaluation uses.
    pub flips: [u64; 64],
    pub fields: Vec<FieldOut>,
}

#[derive(Debug)]
struct KeyScore {
    profile: BitProfile,
    segs: Vec<Segment>,
    stats: Vec<ValStats>,
    /// `links[i]` sits between `segs[i]` and `segs[i + 1]`; `None` when
    /// the pair is structurally ineligible.
    links: Vec<Option<LinkStats>>,
    last: Option<u64>,
}

/// Pass-2 driver, seeded from the pass-1 [`Profiler`].
#[derive(Debug)]
pub(crate) struct Scorer {
    params: InferParams,
    keys: HashMap<String, HashMap<u32, KeyScore>>,
}

impl Scorer {
    /// Segments every sufficiently sampled profile and prepares the value
    /// trackers. Keys below `min_samples` are dropped entirely (also from
    /// the observability record — too little data to hold recovery
    /// against).
    pub fn new(profiler: Profiler, params: InferParams) -> Scorer {
        let mut keys: HashMap<String, HashMap<u32, KeyScore>> = HashMap::new();
        for (bus, by_mid) in profiler.keys {
            let mut scored = HashMap::new();
            for (mid, profile) in by_mid {
                if profile.samples < params.min_samples {
                    continue;
                }
                let segs = profile.segment(&params);
                let stats = vec![ValStats::default(); segs.len()];
                let links = segs
                    .windows(2)
                    .map(|w| {
                        link_eligible(&w[0], &w[1]).then(|| LinkStats::new(w[0].len, w[1].len))
                    })
                    .collect();
                scored.insert(
                    mid,
                    KeyScore {
                        profile,
                        segs,
                        stats,
                        links,
                        last: None,
                    },
                );
            }
            if !scored.is_empty() {
                keys.insert(bus, scored);
            }
        }
        Scorer { params, keys }
    }

    /// Accumulates one record of the second pass. Records of keys the
    /// profiler never saw (or that were dropped) are ignored.
    pub fn observe(&mut self, bus: &str, message_id: u32, payload: &[u8]) {
        let Some(ks) = self
            .keys
            .get_mut(bus)
            .and_then(|by_mid| by_mid.get_mut(&message_id))
        else {
            return;
        };
        let (cur, _) = fold(payload);
        if let Some(prev) = ks.last {
            for (i, seg) in ks.segs.iter().enumerate() {
                let m = mask(seg.len);
                ks.stats[i].observe((prev >> seg.start) & m, (cur >> seg.start) & m, m);
            }
            for i in 0..ks.links.len() {
                if let Some(link) = ks.links[i].as_mut() {
                    let (a, b) = (ks.segs[i], ks.segs[i + 1]);
                    let (ma, mb) = (mask(a.len), mask(b.len));
                    link.observe(
                        (prev >> a.start) & ma,
                        (cur >> a.start) & ma,
                        (prev >> b.start) & mb,
                        (cur >> b.start) & mb,
                    );
                }
            }
        }
        ks.last = Some(cur);
    }

    /// Resolves chains and classes into per-key field lists, keys sorted
    /// by `(bus, message id)` for deterministic output.
    pub fn finish(self) -> Vec<KeyResult> {
        let params = self.params;
        let mut flat: Vec<(String, u32, KeyScore)> = self
            .keys
            .into_iter()
            .flat_map(|(bus, by_mid)| {
                by_mid
                    .into_iter()
                    .map(move |(mid, ks)| (bus.clone(), mid, ks))
            })
            .collect();
        flat.sort_by(|x, y| (x.0.as_str(), x.1).cmp(&(y.0.as_str(), y.1)));
        flat.into_iter()
            .map(|(bus, message_id, ks)| {
                let fields = resolve_fields(&ks, &params);
                KeyResult {
                    bus,
                    message_id,
                    samples: ks.profile.samples,
                    flips: ks.profile.flip_counts(),
                    fields,
                }
            })
            .collect()
    }
}

/// Greedy chain walk: a maximal run of consecutive passing links becomes
/// one Motorola field; everything else stays an Intel field.
fn resolve_fields(ks: &KeyScore, params: &InferParams) -> Vec<FieldOut> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < ks.segs.len() {
        let mut j = i;
        while j < ks.links.len() && ks.links[j].is_some_and(|l| l.passes(params)) {
            j += 1;
        }
        if j > i {
            let chain = &ks.segs[i..=j];
            let bits: Vec<u16> = chain.iter().flat_map(|s| s.start..s.end()).collect();
            let (confidence, mean_bit_entropy) = quality(&ks.profile, &bits, params.min_samples);
            fields.push(FieldOut {
                // DBC Motorola start bit addresses the MSB: the top bit
                // of the chain's first (lowest-byte) segment.
                start_bit: chain[0].start + chain[0].len - 1,
                bit_len: chain.iter().map(|s| s.len).sum(),
                byte_order: ByteOrder::Motorola,
                // The last link covers the lowest-significance pair —
                // where a counter's increments are visible.
                class: ks.links[j - 1]
                    .expect("passing link exists")
                    .be
                    .classify(params.counter_fraction),
                confidence,
                mean_bit_entropy,
            });
        } else {
            let s = ks.segs[i];
            let bits: Vec<u16> = (s.start..s.end()).collect();
            let (confidence, mean_bit_entropy) = quality(&ks.profile, &bits, params.min_samples);
            fields.push(FieldOut {
                start_bit: s.start,
                bit_len: s.len,
                byte_order: ByteOrder::Intel,
                class: ks.stats[i].classify(params.counter_fraction),
                confidence,
                mean_bit_entropy,
            });
        }
        i = j + 1;
    }
    fields
}

/// Confidence = sample sufficiency × fraction of field bits that flipped
/// at least twice; also the mean conditional entropy over the field bits.
fn quality(profile: &BitProfile, bits: &[u16], min_samples: u64) -> (f64, f64) {
    let lively = bits
        .iter()
        .filter(|&&b| profile.flips(b as usize) >= 2)
        .count();
    let frac = lively as f64 / bits.len() as f64;
    let sample_conf = (profile.samples as f64 / min_samples as f64).min(1.0);
    let entropy = bits
        .iter()
        .map(|&b| profile.cond_entropy(b as usize))
        .sum::<f64>()
        / bits.len() as f64;
    (sample_conf * frac, entropy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(payloads: &[Vec<u8>], params: &InferParams) -> Vec<KeyResult> {
        let mut profiler = Profiler::new();
        for p in payloads {
            profiler.observe("FC", 0x10, p);
        }
        let mut scorer = Scorer::new(profiler, params.clone());
        for p in payloads {
            scorer.observe("FC", 0x10, p);
        }
        scorer.finish()
    }

    #[test]
    fn motorola_counter_reassembled() {
        // 16-bit big-endian counter mod 1024 at Motorola start bit 7:
        // byte 0 is the high byte, byte 1 the low byte. Only value bits
        // 0..10 ever flip, so the recovered field is the 10 active bits.
        let payloads: Vec<Vec<u8>> = (0u32..5000)
            .map(|i| {
                let v = i % 1024;
                vec![(v >> 8) as u8, v as u8]
            })
            .collect();
        let keys = run(&payloads, &InferParams::default());
        assert_eq!(keys.len(), 1);
        let fields = &keys[0].fields;
        assert_eq!(fields.len(), 1, "fields: {fields:?}");
        assert_eq!(fields[0].byte_order, ByteOrder::Motorola);
        assert_eq!(fields[0].start_bit, 1);
        assert_eq!(fields[0].bit_len, 10);
        assert_eq!(fields[0].class, SignalClass::Counter);
        assert!(fields[0].confidence > 0.9, "{}", fields[0].confidence);
    }

    #[test]
    fn intel_counter_stays_one_field() {
        let payloads: Vec<Vec<u8>> = (0u32..5000)
            .map(|i| {
                let v = i % 1024;
                vec![v as u8, (v >> 8) as u8]
            })
            .collect();
        let keys = run(&payloads, &InferParams::default());
        let fields = &keys[0].fields;
        assert_eq!(fields.len(), 1, "fields: {fields:?}");
        assert_eq!(fields[0].byte_order, ByteOrder::Intel);
        assert_eq!(fields[0].start_bit, 0);
        assert_eq!(fields[0].bit_len, 10);
        assert_eq!(fields[0].class, SignalClass::Counter);
    }

    #[test]
    fn independent_byte_counters_not_merged() {
        // Byte 0 counts every row, byte 1 every third row — structurally
        // an eligible link, but the carry-agreement test must reject it.
        let payloads: Vec<Vec<u8>> = (0u32..3000)
            .map(|i| vec![(i % 256) as u8, ((i / 3) % 256) as u8])
            .collect();
        let keys = run(&payloads, &InferParams::default());
        let fields = &keys[0].fields;
        assert_eq!(fields.len(), 2, "fields: {fields:?}");
        assert!(fields.iter().all(|f| f.byte_order == ByteOrder::Intel));
        assert_eq!(fields[0].start_bit, 0);
        assert_eq!(fields[1].start_bit, 8);
    }

    #[test]
    fn random_walk_is_sensor() {
        // Deterministic pseudo-random walk over an 8-bit range.
        let mut v: i32 = 128;
        let mut state: u32 = 0x1234_5678;
        let payloads: Vec<Vec<u8>> = (0..4000)
            .map(|_| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                let step = ((state >> 16) % 15) as i32 - 7;
                v = (v + step).clamp(0, 255);
                vec![v as u8]
            })
            .collect();
        let keys = run(&payloads, &InferParams::default());
        let fields = &keys[0].fields;
        assert!(
            fields.iter().all(|f| f.class == SignalClass::Sensor),
            "fields: {fields:?}"
        );
    }

    #[test]
    fn undersampled_key_dropped() {
        let payloads: Vec<Vec<u8>> = (0u32..8).map(|i| vec![i as u8]).collect();
        let keys = run(&payloads, &InferParams::default());
        assert!(keys.is_empty());
    }
}
