//! # ivnt-infer — DBC-less signal-boundary inference
//!
//! Interpretation (paper Sec. 3.2) assumes the relation `U_comb` of
//! packing rules is known. For third-party traffic or undocumented ECUs
//! no such table exists; this crate recovers one from the raw payloads
//! alone, in the spirit of READ/ByCAN/CAN-D:
//!
//! 1. **Profiling pass** — per `(b_id, m_id)` key, per-bit flip rates,
//!    conditional entropies and neighbour flip-coincidence over
//!    consecutive rows ([`profile`]).
//! 2. **Segmentation** — boundaries open where the flip-coincidence of
//!    adjacent bits collapses (carry chains keep it high inside a field)
//!    or where the flip rate rises (a new field's LSB).
//! 3. **Scoring pass** — per-segment value deltas resolve byte order
//!    (carry agreement + delta smoothness reassemble Motorola fields
//!    split at byte boundaries) and classify each field as
//!    constant / counter / sensor.
//!
//! The result is an [`InferredTables`]: synthesized [`RuleSet`] tables
//! the existing vectorized interpret kernel consumes unchanged, wrapped
//! in a [`RuleCatalog`] tagged [`RuleSource::Inferred`] — or merged
//! under an authored catalog with authored rules taking precedence.
//!
//! Inference is out-of-core: [`infer_store`] drives the store's
//! zone-map-pruned [`StoreReader::scan_indexed`] twice and never holds
//! more than one row group in memory.
//!
//! # Examples
//!
//! ```
//! use ivnt_core::rules::InferParams;
//! use ivnt_infer::infer_trace;
//! use ivnt_simulator::prelude::*;
//! use ivnt_simulator::functions;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut network = NetworkModel::new(ivnt_protocol::Catalog::new());
//! network.add_function(functions::wiper()?)?;
//! network.auto_senders();
//! let trace = network.simulate(20.0, 7, &FaultPlan::new())?;
//!
//! // No interpretation tables: recover the layout from the bytes.
//! let tables = infer_trace(&trace, &InferParams::default());
//! assert!(!tables.signals.is_empty());
//! let catalog = tables.to_catalog()?; // RuleSource::Inferred
//! # let _ = catalog;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod boundary;
pub mod profile;

use std::collections::{BTreeMap, HashSet};
use std::io::{Read, Seek};

use ivnt_core::rules::{InferParams, RuleCatalog, RuleSet};
use ivnt_protocol::bits::ByteOrder;
use ivnt_protocol::signal::{RawKind, SignalSpec};
use ivnt_simulator::scenario::TruthSignal;
use ivnt_simulator::trace::Trace;
use ivnt_store::{Predicate, StoreReader};

use crate::boundary::{KeyResult, Scorer};
use crate::profile::Profiler;

#[cfg(doc)]
use ivnt_core::rules::RuleSource;

/// Behavioural class of a recovered field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalClass {
    /// Never changed over the observed rows.
    Constant,
    /// Monotone ±1 stepper (message counters, sequence numbers).
    Counter,
    /// Physical quantity — anything that moves but not by lockstep ±1.
    Sensor,
}

impl SignalClass {
    /// Short lowercase label (`constant` / `counter` / `sensor`).
    pub fn label(&self) -> &'static str {
        match self {
            SignalClass::Constant => "constant",
            SignalClass::Counter => "counter",
            SignalClass::Sensor => "sensor",
        }
    }
}

/// The payload bits a `(start_bit, bit_len, byte_order)` packing covers,
/// MSB first for Motorola (the DBC sawtooth walk).
fn walk_bits(start_bit: u16, bit_len: u16, byte_order: ByteOrder) -> Vec<u16> {
    match byte_order {
        ByteOrder::Intel => (start_bit..start_bit + bit_len).collect(),
        ByteOrder::Motorola => {
            let mut out = Vec::with_capacity(bit_len as usize);
            let mut pos = start_bit;
            for _ in 0..bit_len {
                out.push(pos);
                pos = if pos.is_multiple_of(8) {
                    pos + 15
                } else {
                    pos - 1
                };
            }
            out
        }
    }
}

/// One recovered signal boundary.
#[derive(Debug, Clone)]
pub struct InferredSignal {
    /// Channel the key was observed on.
    pub bus: String,
    /// Message id within the channel.
    pub message_id: u32,
    /// Synthesized name, stable across buses so gateway mirrors of the
    /// same message carry the same name (the dedup step compares signals
    /// by name across channels).
    pub name: String,
    /// Packing start bit — LSB for Intel, MSB for Motorola (DBC
    /// convention, directly consumable by the interpret kernel).
    pub start_bit: u16,
    /// Field width in bits.
    pub bit_len: u16,
    /// Recovered byte order.
    pub byte_order: ByteOrder,
    /// Behavioural class.
    pub class: SignalClass,
    /// `[0, 1]` recovery confidence: sample sufficiency × fraction of
    /// field bits observed flipping at least twice.
    pub confidence: f64,
    /// Rows the key was observed in.
    pub samples: u64,
    /// Mean per-bit conditional entropy `H(b_t | b_{t-1})` of the field.
    pub mean_bit_entropy: f64,
}

impl InferredSignal {
    /// The payload bits the field covers, most significant first for
    /// Motorola.
    pub fn payload_bits(&self) -> Vec<u16> {
        walk_bits(self.start_bit, self.bit_len, self.byte_order)
    }

    /// The field's least significant payload bit.
    pub fn lsb_bit(&self) -> u16 {
        match self.byte_order {
            ByteOrder::Intel => self.start_bit,
            ByteOrder::Motorola => *self.payload_bits().last().expect("bit_len > 0"),
        }
    }

    /// Synthesizes the packing spec (unsigned raw, unit factor — physical
    /// scaling is unknowable from bytes alone).
    ///
    /// # Errors
    ///
    /// Propagates spec validation failures (cannot happen for recovered
    /// boundaries, which are in-range by construction).
    pub fn spec(&self) -> ivnt_protocol::Result<SignalSpec> {
        SignalSpec::builder(&self.name, self.start_bit, self.bit_len)
            .byte_order(self.byte_order)
            .raw_kind(RawKind::Unsigned)
            .build()
    }
}

/// Precision/recall of recovered boundaries against simulator ground
/// truth — the `infer_probe` bench metric gated by `IVNT_INFER_MIN_F1`.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundaryEval {
    /// Ground-truth signal occurrences (per channel).
    pub truth_total: usize,
    /// Truth occurrences observable in the data: their key was profiled
    /// and at least one of their bits flipped.
    pub truth_observable: usize,
    /// Recovered fields.
    pub recovered: usize,
    /// Recovered fields matching an observable truth occurrence 1:1.
    pub matched: usize,
    /// `matched / recovered` (1.0 when nothing was recovered).
    pub precision: f64,
    /// `matched / truth_observable` (1.0 when nothing was observable).
    pub recall: f64,
}

impl BoundaryEval {
    /// Harmonic mean of precision and recall.
    pub fn f1(&self) -> f64 {
        if self.precision + self.recall == 0.0 {
            0.0
        } else {
            2.0 * self.precision * self.recall / (self.precision + self.recall)
        }
    }
}

/// The full inference result: recovered signals plus the per-key
/// observability record evaluation needs.
#[derive(Debug, Clone)]
pub struct InferredTables {
    /// Recovered signals, sorted by `(bus, message id, start bit)`.
    pub signals: Vec<InferredSignal>,
    /// Parameters inference ran with (carried into the catalog tag).
    pub params: InferParams,
    /// bus → message id → per-bit flip counts of every profiled key
    /// (present even when no field was recovered for the key).
    flips: BTreeMap<(String, u32), [u64; 64]>,
}

impl InferredTables {
    fn from_results(results: Vec<KeyResult>, params: InferParams) -> InferredTables {
        let mut signals = Vec::new();
        let mut flips = BTreeMap::new();
        for kr in results {
            for f in &kr.fields {
                let lsb = match f.byte_order {
                    ByteOrder::Intel => f.start_bit,
                    ByteOrder::Motorola => *walk_bits(f.start_bit, f.bit_len, f.byte_order)
                        .last()
                        .expect("bit_len > 0"),
                };
                signals.push(InferredSignal {
                    bus: kr.bus.clone(),
                    message_id: kr.message_id,
                    name: format!("inf_{:03x}_{}", kr.message_id, lsb),
                    start_bit: f.start_bit,
                    bit_len: f.bit_len,
                    byte_order: f.byte_order,
                    class: f.class,
                    confidence: f.confidence,
                    samples: kr.samples,
                    mean_bit_entropy: f.mean_bit_entropy,
                });
            }
            flips.insert((kr.bus, kr.message_id), kr.flips);
        }
        InferredTables {
            signals,
            params,
            flips,
        }
    }

    /// Number of `(b_id, m_id)` keys that were profiled with enough
    /// samples to be scored.
    pub fn profiled_keys(&self) -> usize {
        self.flips.len()
    }

    /// Synthesizes plain interpretation tables: one fixed-packing rule
    /// per recovered signal, consumable by the vectorized interpret
    /// kernel (compiled `DecodePlan`s) with no new decode path.
    ///
    /// # Errors
    ///
    /// Propagates spec validation failures.
    pub fn to_rules(&self) -> ivnt_core::Result<RuleSet> {
        let mut rules = RuleSet::new();
        for sig in &self.signals {
            let spec = sig.spec()?;
            rules.push_spec(&sig.bus, sig.message_id, &spec, true, true, None);
        }
        Ok(rules)
    }

    /// Wraps the synthesized tables in a catalog tagged
    /// `RuleSource::Inferred { params }`.
    ///
    /// # Errors
    ///
    /// Propagates spec validation failures.
    pub fn to_catalog(&self) -> ivnt_core::Result<RuleCatalog> {
        Ok(RuleCatalog::from_inferred(
            self.to_rules()?,
            self.params.clone(),
        ))
    }

    /// Merges the synthesized tables *under* an authored catalog:
    /// authored rules win on bit overlap, inferred rules fill the gaps,
    /// and the result is tagged `RuleSource::Merged`. When inference
    /// recovered exactly the authored layout every inferred rule is
    /// shadowed and the merged catalog decodes bit-identically to the
    /// authored one.
    ///
    /// # Errors
    ///
    /// Propagates spec validation failures and
    /// [`ivnt_core::Error::RuleConflict`] on signal-name collisions
    /// (synthesized names are `inf_`-prefixed, so collisions only arise
    /// when the authored side uses that prefix).
    pub fn merged_with(&self, authored: &RuleCatalog) -> ivnt_core::Result<RuleCatalog> {
        RuleCatalog::merge(authored, &self.to_catalog()?)
    }

    /// Scores recovered boundaries against simulator ground truth.
    ///
    /// A truth occurrence is *observable* when its key was profiled and
    /// at least one of its bits flipped; it *matches* a recovered field
    /// (greedy 1:1) when the recovered field is non-constant, anchored at
    /// the truth field's least significant flipping bit, covers only
    /// truth bits, and — if it spans more than one byte — agrees on byte
    /// order. Matching is anchored at the LSB because frozen high bits
    /// (a counter that never reaches its range top) are invisible in the
    /// data and trimming them is not an error.
    pub fn evaluate(&self, truth: &[TruthSignal]) -> BoundaryEval {
        let mut used = vec![false; self.signals.len()];
        let mut truth_observable = 0usize;
        let mut matched = 0usize;
        for t in truth {
            let Some(flips) = self.flips.get(&(t.bus.clone(), t.message_id)) else {
                continue;
            };
            let tbits = walk_bits(t.start_bit, t.bit_len, t.byte_order);
            // Significance-ascending: Intel bits already ascend; the
            // Motorola walk descends, so reverse it.
            let anchor = match t.byte_order {
                ByteOrder::Intel => tbits.iter().copied().find(|&b| flipped(flips, b)),
                ByteOrder::Motorola => tbits.iter().rev().copied().find(|&b| flipped(flips, b)),
            };
            let Some(anchor) = anchor else {
                continue;
            };
            truth_observable += 1;
            let tset: HashSet<u16> = tbits.iter().copied().collect();
            for (i, s) in self.signals.iter().enumerate() {
                if used[i]
                    || s.bus != t.bus
                    || s.message_id != t.message_id
                    || s.class == SignalClass::Constant
                    || s.lsb_bit() != anchor
                {
                    continue;
                }
                let sbits = s.payload_bits();
                if !sbits.iter().all(|b| tset.contains(b)) {
                    continue;
                }
                let spans_bytes = sbits.iter().map(|b| b / 8).collect::<HashSet<_>>().len() > 1;
                if spans_bytes && s.byte_order != t.byte_order {
                    continue;
                }
                used[i] = true;
                matched += 1;
                break;
            }
        }
        let recovered = self.signals.len();
        BoundaryEval {
            truth_total: truth.len(),
            truth_observable,
            recovered,
            matched,
            precision: ratio(matched, recovered),
            recall: ratio(matched, truth_observable),
        }
    }
}

fn flipped(flips: &[u64; 64], bit: u16) -> bool {
    (bit as usize) < 64 && flips[bit as usize] > 0
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        1.0
    } else {
        num as f64 / den as f64
    }
}

/// Infers boundaries from an in-memory trace (two passes over the
/// records).
pub fn infer_trace(trace: &Trace, params: &InferParams) -> InferredTables {
    let mut profiler = Profiler::new();
    for r in trace {
        profiler.observe(&r.bus, r.message_id, &r.payload);
    }
    let mut scorer = Scorer::new(profiler, params.clone());
    for r in trace {
        scorer.observe(&r.bus, r.message_id, &r.payload);
    }
    InferredTables::from_results(scorer.finish(), params.clone())
}

/// Infers boundaries for a single key from raw payload rows — the
/// fuzzing/property-test entry point.
pub fn infer_payloads(
    bus: &str,
    message_id: u32,
    payloads: &[Vec<u8>],
    params: &InferParams,
) -> InferredTables {
    let mut profiler = Profiler::new();
    for p in payloads {
        profiler.observe(bus, message_id, p);
    }
    let mut scorer = Scorer::new(profiler, params.clone());
    for p in payloads {
        scorer.observe(bus, message_id, p);
    }
    InferredTables::from_results(scorer.finish(), params.clone())
}

/// Infers boundaries out-of-core from a store file: two zone-map-pruned
/// [`StoreReader::scan_indexed`] passes, never holding more than one row
/// group in memory.
///
/// # Errors
///
/// Propagates store scan failures (I/O, corruption).
pub fn infer_store<R: Read + Seek>(
    reader: &mut StoreReader<R>,
    params: &InferParams,
) -> ivnt_core::Result<InferredTables> {
    let compiled = [Predicate::all().compile(reader.footer())];
    let mut profiler = Profiler::new();
    reader.scan_indexed::<ivnt_core::Error, _>(&compiled, |rows| {
        for r in &rows {
            profiler.observe(&r.record.bus, r.record.message_id, &r.record.payload);
        }
        Ok(())
    })?;
    let mut scorer = Scorer::new(profiler, params.clone());
    reader.scan_indexed::<ivnt_core::Error, _>(&compiled, |rows| {
        for r in &rows {
            scorer.observe(&r.record.bus, r.record.message_id, &r.record.payload);
        }
        Ok(())
    })?;
    Ok(InferredTables::from_results(
        scorer.finish(),
        params.clone(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter_payloads(n: u32, modulo: u32) -> Vec<Vec<u8>> {
        (0..n)
            .map(|i| {
                let v = i % modulo;
                vec![v as u8, (v >> 8) as u8]
            })
            .collect()
    }

    #[test]
    fn payload_bits_walks() {
        let sig = InferredSignal {
            bus: "FC".into(),
            message_id: 1,
            name: "x".into(),
            start_bit: 7,
            bit_len: 12,
            byte_order: ByteOrder::Motorola,
            class: SignalClass::Counter,
            confidence: 1.0,
            samples: 100,
            mean_bit_entropy: 0.5,
        };
        assert_eq!(
            sig.payload_bits(),
            vec![7, 6, 5, 4, 3, 2, 1, 0, 15, 14, 13, 12]
        );
        assert_eq!(sig.lsb_bit(), 12);
        let intel = InferredSignal {
            start_bit: 4,
            bit_len: 6,
            byte_order: ByteOrder::Intel,
            ..sig
        };
        assert_eq!(intel.payload_bits(), vec![4, 5, 6, 7, 8, 9]);
        assert_eq!(intel.lsb_bit(), 4);
    }

    #[test]
    fn evaluate_exact_recovery() {
        let payloads = counter_payloads(4000, 1024);
        let tables = infer_payloads("FC", 0x10, &payloads, &InferParams::default());
        assert_eq!(tables.profiled_keys(), 1);
        let truth = vec![TruthSignal {
            bus: "FC".into(),
            message_id: 0x10,
            signal: "ctr".into(),
            start_bit: 0,
            bit_len: 10,
            byte_order: ByteOrder::Intel,
        }];
        let eval = tables.evaluate(&truth);
        assert_eq!(eval.truth_observable, 1);
        assert_eq!(eval.matched, 1);
        assert_eq!(eval.f1(), 1.0);
    }

    #[test]
    fn evaluate_tolerates_frozen_msbs() {
        // The truth field is 16 bits wide but the counter only exercises
        // the low 10: the recovered 10-bit field still matches.
        let payloads = counter_payloads(4000, 1024);
        let tables = infer_payloads("FC", 0x10, &payloads, &InferParams::default());
        let truth = vec![TruthSignal {
            bus: "FC".into(),
            message_id: 0x10,
            signal: "ctr".into(),
            start_bit: 0,
            bit_len: 16,
            byte_order: ByteOrder::Intel,
        }];
        let eval = tables.evaluate(&truth);
        assert_eq!(eval.matched, 1);
        assert_eq!(eval.f1(), 1.0);
    }

    #[test]
    fn unobserved_truth_not_counted() {
        let payloads = counter_payloads(4000, 1024);
        let tables = infer_payloads("FC", 0x10, &payloads, &InferParams::default());
        let truth = vec![
            TruthSignal {
                bus: "FC".into(),
                message_id: 0x10,
                signal: "ctr".into(),
                start_bit: 0,
                bit_len: 10,
                byte_order: ByteOrder::Intel,
            },
            // Constant region: never flips, so not observable.
            TruthSignal {
                bus: "FC".into(),
                message_id: 0x10,
                signal: "dead".into(),
                start_bit: 12,
                bit_len: 4,
                byte_order: ByteOrder::Intel,
            },
            // Key never seen at all.
            TruthSignal {
                bus: "DC".into(),
                message_id: 0x99,
                signal: "ghost".into(),
                start_bit: 0,
                bit_len: 8,
                byte_order: ByteOrder::Intel,
            },
        ];
        let eval = tables.evaluate(&truth);
        assert_eq!(eval.truth_total, 3);
        assert_eq!(eval.truth_observable, 1);
        assert_eq!(eval.recall, 1.0);
    }

    #[test]
    fn synthesized_rules_decode_the_counter() {
        let payloads = counter_payloads(4000, 1024);
        let tables = infer_payloads("FC", 0x10, &payloads, &InferParams::default());
        let rules = tables.to_rules().unwrap();
        assert_eq!(rules.len(), tables.signals.len());
        let catalog = tables.to_catalog().unwrap();
        assert!(matches!(
            catalog.source(),
            ivnt_core::rules::RuleSource::Inferred { .. }
        ));
    }
}
