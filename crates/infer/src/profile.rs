//! Pass 1: per-bit flip-rate and conditional-entropy profiling, and the
//! flip-coincidence segmentation turning bit profiles into candidate
//! fields.
//!
//! The profile of a `(b_id, m_id)` key is a 64-bit window over the first
//! eight payload bytes: per bit, the 2×2 transition counts between
//! consecutive rows (from which flip rate and the conditional entropy
//! `H(b_t | b_{t-1})` derive) plus the count of rows where the bit flipped
//! *together with its lower neighbour*. Within a numeric field, a bit
//! flips almost exclusively through carry/borrow from the bit below, so
//! the coincidence fraction stays high; across a field boundary the two
//! bits flip at unrelated times and the fraction collapses. Segmentation
//! therefore opens a new field where coincidence collapses or where the
//! flip rate rises sharply (a field's rates fall monotonically from LSB
//! to MSB — a rise marks the next field's LSB).

use std::collections::HashMap;

use ivnt_core::rules::InferParams;

/// Coincidence below this always splits (independent neighbours).
pub(crate) const COINCIDENCE_SPLIT: f64 = 0.12;
/// Coincidence below this splits when the flip rate also rises.
pub(crate) const COINCIDENCE_WEAK: f64 = 0.2;
/// Minimum flip events at a candidate boundary before splitting at all —
/// with fewer observations the statistics are jitter, and not splitting
/// keeps a slow field whole.
pub(crate) const MIN_SPLIT_UNION: u64 = 10;

/// Folds the first eight payload bytes little-endian into a `u64` window.
#[inline]
pub(crate) fn fold(payload: &[u8]) -> (u64, usize) {
    let n = payload.len().min(8);
    let mut buf = [0u8; 8];
    buf[..n].copy_from_slice(&payload[..n]);
    (u64::from_le_bytes(buf), n)
}

#[inline]
pub(crate) fn mask(bit_len: u16) -> u64 {
    if bit_len >= 64 {
        u64::MAX
    } else {
        (1u64 << bit_len) - 1
    }
}

/// One candidate field: a run of Intel-indexed payload bits (bit `p` is
/// byte `p / 8`, bit `p % 8`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Segment {
    /// First (lowest-index) bit of the run.
    pub start: u16,
    /// Run length in bits.
    pub len: u16,
}

impl Segment {
    /// One-past-the-last bit.
    pub fn end(&self) -> u16 {
        self.start + self.len
    }
}

/// Per-`(b_id, m_id)` bit statistics accumulated over pass 1.
#[derive(Debug, Clone)]
pub struct BitProfile {
    /// Rows observed for this key.
    pub samples: u64,
    /// Longest payload seen, capped at the 8-byte profiling window.
    pub max_bytes: usize,
    /// Per-bit transition counts `[00, 01, 10, 11]` between consecutive
    /// rows.
    pub transitions: [[u64; 4]; 64],
    /// Per-bit count of rows where bit `i` and bit `i-1` flipped together.
    pub coincident: [u64; 64],
    last: Option<u64>,
}

impl Default for BitProfile {
    fn default() -> BitProfile {
        BitProfile {
            samples: 0,
            max_bytes: 0,
            transitions: [[0; 4]; 64],
            coincident: [0; 64],
            last: None,
        }
    }
}

impl BitProfile {
    /// Accumulates one row.
    pub fn observe(&mut self, payload: &[u8]) {
        let (cur, n) = fold(payload);
        self.max_bytes = self.max_bytes.max(n);
        if let Some(prev) = self.last {
            let diff = prev ^ cur;
            for i in 0..self.max_bytes * 8 {
                let p = (prev >> i) & 1;
                let c = (cur >> i) & 1;
                self.transitions[i][((p << 1) | c) as usize] += 1;
                if i > 0 && (diff >> i) & 1 == 1 && (diff >> (i - 1)) & 1 == 1 {
                    self.coincident[i] += 1;
                }
            }
        }
        self.samples += 1;
        self.last = Some(cur);
    }

    /// Number of value changes of bit `i` across consecutive rows.
    pub fn flips(&self, i: usize) -> u64 {
        self.transitions[i][0b01] + self.transitions[i][0b10]
    }

    /// Flip rate `r[i] = flips / (samples - 1)`.
    pub fn flip_rate(&self, i: usize) -> f64 {
        if self.samples < 2 {
            0.0
        } else {
            self.flips(i) as f64 / (self.samples - 1) as f64
        }
    }

    /// Conditional entropy `H(b_t | b_{t-1})` of bit `i` in bits: 0 for
    /// constant or perfectly predictable bits, 1 for a fair coin.
    pub fn cond_entropy(&self, i: usize) -> f64 {
        let t = &self.transitions[i];
        let total = (t[0] + t[1] + t[2] + t[3]) as f64;
        if total == 0.0 {
            return 0.0;
        }
        let mut h = 0.0;
        for prev in 0..2usize {
            let n = (t[2 * prev] + t[2 * prev + 1]) as f64;
            if n == 0.0 {
                continue;
            }
            for cur in 0..2usize {
                let c = t[2 * prev + cur] as f64;
                if c > 0.0 {
                    let p = c / n;
                    h -= (n / total) * p * p.log2();
                }
            }
        }
        h
    }

    /// Per-bit flip counts (the observability record
    /// [`crate::InferredTables::evaluate`] scores truth signals against).
    pub fn flip_counts(&self) -> [u64; 64] {
        let mut out = [0u64; 64];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self.flips(i);
        }
        out
    }

    /// Splits the active bits (flips ≥ 1) into candidate fields.
    pub fn segment(&self, params: &InferParams) -> Vec<Segment> {
        let bits = self.max_bytes * 8;
        let mut segs = Vec::new();
        let mut run_start: Option<usize> = None;
        for i in 0..bits {
            if self.flips(i) == 0 {
                if let Some(s) = run_start.take() {
                    segs.push(Segment {
                        start: s as u16,
                        len: (i - s) as u16,
                    });
                }
                continue;
            }
            match run_start {
                None => run_start = Some(i),
                Some(s) => {
                    if self.split_before(i, params) {
                        segs.push(Segment {
                            start: s as u16,
                            len: (i - s) as u16,
                        });
                        run_start = Some(i);
                    }
                }
            }
        }
        if let Some(s) = run_start {
            segs.push(Segment {
                start: s as u16,
                len: (bits - s) as u16,
            });
        }
        segs
    }

    /// Does a new field start at bit `i` (both `i` and `i-1` active)?
    fn split_before(&self, i: usize, params: &InferParams) -> bool {
        let fi = self.flips(i);
        let fp = self.flips(i - 1);
        let joint = self.coincident[i].min(fi.min(fp));
        let union = fi + fp - joint;
        if union < MIN_SPLIT_UNION {
            return false;
        }
        let coincidence = joint as f64 / union as f64;
        if coincidence < COINCIDENCE_SPLIT {
            return true;
        }
        let rise = self.flip_rate(i) > self.flip_rate(i - 1) * params.rise_ratio + 1e-9;
        rise && coincidence < COINCIDENCE_WEAK
    }
}

/// Pass-1 driver: accumulates a [`BitProfile`] per `(b_id, m_id)` key.
#[derive(Debug, Default)]
pub struct Profiler {
    /// bus → message id → profile.
    pub(crate) keys: HashMap<String, HashMap<u32, BitProfile>>,
}

impl Profiler {
    /// Creates an empty profiler.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// Accumulates one record.
    pub fn observe(&mut self, bus: &str, message_id: u32, payload: &[u8]) {
        if !self.keys.contains_key(bus) {
            self.keys.insert(bus.to_string(), HashMap::new());
        }
        self.keys
            .get_mut(bus)
            .expect("inserted above")
            .entry(message_id)
            .or_default()
            .observe(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile_of(payloads: &[&[u8]]) -> BitProfile {
        let mut p = BitProfile::default();
        for pay in payloads {
            p.observe(pay);
        }
        p
    }

    #[test]
    fn flip_rate_and_entropy_of_counter_bit() {
        // Low bit of an incrementing counter flips every row.
        let payloads: Vec<Vec<u8>> = (0u8..32).map(|i| vec![i]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|v| v.as_slice()).collect();
        let p = profile_of(&refs);
        assert_eq!(p.samples, 32);
        assert_eq!(p.max_bytes, 1);
        assert!((p.flip_rate(0) - 1.0).abs() < 1e-12);
        assert!((p.flip_rate(1) - 0.5).abs() < 0.05);
        assert_eq!(p.flip_rate(5), 0.0);
        assert_eq!(p.cond_entropy(0), 0.0); // deterministic alternation
        assert_eq!(p.cond_entropy(7), 0.0); // constant
    }

    #[test]
    fn counter_segments_as_one_field() {
        let payloads: Vec<Vec<u8>> = (0u16..512).map(|i| vec![(i % 16) as u8]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|v| v.as_slice()).collect();
        let p = profile_of(&refs);
        let segs = p.segment(&InferParams::default());
        assert_eq!(segs, vec![Segment { start: 0, len: 4 }]);
    }

    #[test]
    fn independent_counters_split() {
        // Byte 0: counter mod 16 in low nibble; high nibble: a counter
        // advancing every 3 rows (phase-shifted, independent).
        let payloads: Vec<Vec<u8>> = (0u32..600)
            .map(|i| vec![((i % 16) | (((i / 3) % 16) << 4)) as u8])
            .collect();
        let refs: Vec<&[u8]> = payloads.iter().map(|v| v.as_slice()).collect();
        let p = profile_of(&refs);
        let segs = p.segment(&InferParams::default());
        assert_eq!(
            segs,
            vec![Segment { start: 0, len: 4 }, Segment { start: 4, len: 4 }]
        );
    }

    #[test]
    fn constant_bits_form_no_segment() {
        let p = profile_of(&[&[0xA5u8, 0x00], &[0xA5, 0x00], &[0xA5, 0x00]]);
        assert!(p.segment(&InferParams::default()).is_empty());
    }
}
