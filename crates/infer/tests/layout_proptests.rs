//! Property tests of boundary recovery on randomized signal layouts.
//!
//! Each case synthesizes a payload layout the generator controls
//! completely — field positions, widths, byte orders and behaviours are
//! random, interleaved with constant padding bits — simulates a few
//! hundred rows of traffic, runs inference on the raw payloads alone and
//! scores the recovered boundaries against the generator's own truth
//! table. The claim mirrors the `infer_probe` CI gate: F1 must clear
//! `IVNT_INFER_MIN_F1` (default 0.85) on every layout, and exact
//! recoveries must round-trip through the synthesized [`RuleSet`].

use ivnt_core::rules::InferParams;
use ivnt_infer::{infer_payloads, SignalClass};
use ivnt_protocol::bits::{self, ByteOrder};
use ivnt_simulator::scenario::TruthSignal;
use proptest::prelude::*;

/// Deterministic LCG so each case's value evolution is reproducible from
/// the proptest-drawn seed.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    /// Wrapping +1 counter — exercises carry chains.
    Counter,
    /// Full-range triangle sweep — a smooth sensor shape (direction
    /// reverses at the range ends, so roughly half the deltas are −1 and
    /// the field classifies as sensor, not counter).
    Sweep,
}

#[derive(Debug)]
struct Field {
    start_bit: u16,
    bit_len: u16,
    byte_order: ByteOrder,
    kind: Kind,
    value: u64,
    rising: bool,
}

impl Field {
    fn mask(&self) -> u64 {
        if self.bit_len == 64 {
            u64::MAX
        } else {
            (1u64 << self.bit_len) - 1
        }
    }

    fn step(&mut self, rng: &mut Lcg) {
        self.value = match self.kind {
            Kind::Counter => (self.value + 1) & self.mask(),
            Kind::Sweep => {
                // Occasional random dwell keeps the sweep from being a
                // pure sawtooth without disturbing carry statistics.
                if rng.next().is_multiple_of(8) {
                    self.value
                } else {
                    if self.value == self.mask() {
                        self.rising = false;
                    } else if self.value == 0 {
                        self.rising = true;
                    }
                    if self.rising {
                        self.value + 1
                    } else {
                        self.value - 1
                    }
                }
            }
        };
    }
}

/// Places fields left to right with at least one constant padding bit
/// between neighbours. Intel fields land anywhere; Motorola fields take
/// the chain shape the segmentation can reassemble (MSB chunk at the
/// bottom of a fresh byte, then full bytes to a byte boundary).
fn build_layout(specs: &[(u16, u16, u8)], motorola_tail: bool) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut cursor: u16 = 0;
    for &(gap, len, kind) in specs {
        let start = cursor + gap;
        if start + len > 48 {
            break;
        }
        fields.push(Field {
            start_bit: start,
            bit_len: len,
            byte_order: ByteOrder::Intel,
            kind: if kind == 0 {
                Kind::Counter
            } else {
                Kind::Sweep
            },
            value: 0,
            rising: true,
        });
        cursor = start + len;
    }
    if motorola_tail {
        // Fresh byte after the Intel fields (plus one padding byte so the
        // chain's carry evidence cannot blend into a neighbour).
        let byte = (cursor / 8) + 2;
        if byte <= 5 {
            let msb_bits = 1 + (cursor % 7); // 1..=7 bits in the MSB chunk
            fields.push(Field {
                start_bit: byte * 8 + msb_bits - 1, // DBC MSB position
                bit_len: msb_bits + 8,
                byte_order: ByteOrder::Motorola,
                kind: Kind::Counter,
                value: 0,
                rising: true,
            });
        }
    }
    fields
}

fn simulate(fields: &mut [Field], rows: usize, seed: u64) -> Vec<Vec<u8>> {
    let mut rng = Lcg(seed | 1);
    (0..rows)
        .map(|_| {
            let mut payload = vec![0u8; 8];
            for f in fields.iter_mut() {
                f.step(&mut rng);
                bits::insert(&mut payload, f.start_bit, f.bit_len, f.byte_order, f.value)
                    .expect("layout fits payload");
            }
            payload
        })
        .collect()
}

fn gate() -> f64 {
    std::env::var("IVNT_INFER_MIN_F1")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.85)
}

proptest! {
    /// Inference on raw payloads recovers a randomized layout with F1
    /// above the CI gate; every matched boundary checks start bit, bit
    /// subset and (for multi-byte fields) byte order via the evaluator.
    #[test]
    fn randomized_layouts_recover_above_gate(
        specs in prop::collection::vec((1u16..5, 2u16..11, 0u8..2), 1..4),
        motorola_tail in 0u8..2,
        seed in 0u64..u64::MAX,
    ) {
        let mut fields = build_layout(&specs, motorola_tail == 1);
        prop_assume!(!fields.is_empty());
        // Enough rows that a Motorola counter's hi chunk changes well past
        // the chain's MIN_LINK_CHANGES evidence floor (256 rows per hi
        // increment for an 8-bit lo byte).
        let payloads = simulate(&mut fields, 1500, seed);
        let tables = infer_payloads("T", 0x100, &payloads, &InferParams::default());

        let truth: Vec<TruthSignal> = fields
            .iter()
            .enumerate()
            .map(|(i, f)| TruthSignal {
                bus: "T".into(),
                message_id: 0x100,
                signal: format!("f{i}"),
                start_bit: f.start_bit,
                bit_len: f.bit_len,
                byte_order: f.byte_order,
            })
            .collect();
        let eval = tables.evaluate(&truth);
        prop_assert!(
            eval.f1() >= gate(),
            "layout {fields:?}: P {:.3} R {:.3} F1 {:.3} below gate {:.2} \
             (recovered {:?})",
            eval.precision,
            eval.recall,
            eval.f1(),
            gate(),
            tables.signals,
        );
    }

    /// A lone wrapping counter is always recovered exactly: position,
    /// width, class — and its synthesized rule decodes the raw value back.
    #[test]
    fn lone_counter_recovered_exactly(
        gap in 0u16..20,
        len in 2u16..13,
        seed in 0u64..u64::MAX,
    ) {
        let mut fields = vec![Field {
            start_bit: gap,
            bit_len: len,
            byte_order: ByteOrder::Intel,
            kind: Kind::Counter,
            value: 0,
            rising: true,
        }];
        // Wrap the counter at least twice so every bit, MSB included,
        // flips often enough to be claimed by the recovered field.
        let rows = 600.max((1usize << len) * 2 + 100);
        let payloads = simulate(&mut fields, rows, seed);
        let tables = infer_payloads("T", 0x42, &payloads, &InferParams::default());
        prop_assert_eq!(tables.signals.len(), 1, "{:?}", tables.signals);
        let sig = &tables.signals[0];
        prop_assert_eq!(sig.start_bit, gap);
        prop_assert_eq!(sig.bit_len, len);
        prop_assert_eq!(sig.byte_order, ByteOrder::Intel);
        prop_assert!(matches!(sig.class, SignalClass::Counter), "{:?}", sig.class);
    }
}
