//! # ivnt-obs — metrics and span tracing for the preprocessing stack
//!
//! The paper's Spark deployment gets per-stage task metrics and straggler
//! visibility from the Spark UI for free; this crate is that tier's
//! std-only substitute. It provides
//!
//! * a lock-cheap metrics [`Registry`] — monotonic [`Counter`]s (sharded
//!   per worker thread, merged on snapshot), [`Gauge`]s, and fixed-bucket
//!   [`Histogram`]s,
//! * lightweight span tracing with explicit or thread-local parent/child
//!   stage attribution ([`Registry::record_span`], [`SpanTimer`]),
//! * an immutable [`Snapshot`] with deterministic ordering, delta
//!   ([`Snapshot::since`]) and cross-process merge ([`Snapshot::merge`]),
//!   rendered as Prometheus text or JSON.
//!
//! ## The disabled hot path
//!
//! Instrumentation points throughout `ivnt-frame`, `ivnt-core`,
//! `ivnt-store` and `ivnt-cluster` call [`with`]. When no subscriber is
//! installed this compiles down to **one relaxed atomic load and a
//! branch** — the closure is never built up, no lock is touched, nothing
//! allocates. The `pipeline_e2e` bench measures this path and gates the
//! end-to-end overhead under `IVNT_OBS_MAX_OVERHEAD`.
//!
//! ## Subscribing
//!
//! ```
//! use std::sync::Arc;
//!
//! let registry = Arc::new(ivnt_obs::Registry::new());
//! {
//!     let _guard = ivnt_obs::install(registry.clone());
//!     ivnt_obs::with(|r| r.add("demo_events_total", 3));
//! } // guard dropped: previous subscriber (none) restored
//! let snap = registry.snapshot();
//! assert_eq!(snap.counters["demo_events_total"], 3);
//! ```

#![warn(missing_docs)]

pub mod metrics;
pub mod registry;
pub mod snapshot;

pub use metrics::{Counter, Gauge, Histogram};
pub use registry::{Registry, SpanTimer};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanStat};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Canonical latency buckets (seconds) for stage/task histograms: 100 µs
/// to 100 s, decade-spaced. Small enough to scan linearly on observe.
pub const SECONDS_BUCKETS: &[f64] = &[1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// Whether any subscriber is installed. Kept in its own atomic so the
/// disabled fast path never touches the `RwLock` below.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed subscriber. Only read after [`ENABLED`] observes `true`.
static CURRENT: RwLock<Option<Arc<Registry>>> = RwLock::new(None);

/// Whether a subscriber is installed — one relaxed load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Runs `f` against the installed registry, or does nothing. This is the
/// instrumentation entry point: with no subscriber it is a relaxed load
/// and a branch.
#[inline]
pub fn with<F: FnOnce(&Registry)>(f: F) {
    if !enabled() {
        return;
    }
    with_installed(f);
}

/// Cold half of [`with`], out of line so the fast path stays tiny.
#[cold]
fn with_installed<F: FnOnce(&Registry)>(f: F) {
    let current = CURRENT.read().unwrap_or_else(|e| e.into_inner());
    if let Some(registry) = current.as_ref() {
        f(registry);
    }
}

/// The installed registry, if any (cloned handle).
pub fn current() -> Option<Arc<Registry>> {
    if !enabled() {
        return None;
    }
    CURRENT.read().unwrap_or_else(|e| e.into_inner()).clone()
}

/// Installs `registry` as the process-wide subscriber, returning a guard
/// that restores the previous subscriber (usually none) on drop.
/// Installations nest; the innermost wins while its guard lives.
#[must_use = "dropping the guard immediately uninstalls the subscriber"]
pub fn install(registry: Arc<Registry>) -> InstallGuard {
    let mut slot = CURRENT.write().unwrap_or_else(|e| e.into_inner());
    let previous = slot.replace(registry);
    ENABLED.store(true, Ordering::Relaxed);
    InstallGuard { previous }
}

/// Keeps a subscriber installed; restores the previous one when dropped.
pub struct InstallGuard {
    previous: Option<Arc<Registry>>,
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        let mut slot = CURRENT.write().unwrap_or_else(|e| e.into_inner());
        *slot = self.previous.take();
        ENABLED.store(slot.is_some(), Ordering::Relaxed);
    }
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallGuard").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Serializes tests that touch the process-global subscriber slot.
    static INSTALL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_with_is_a_no_op() {
        let _lock = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        assert!(!enabled());
        let mut ran = false;
        with(|_| ran = true);
        assert!(!ran);
    }

    #[test]
    fn install_enables_and_guard_restores() {
        let _lock = INSTALL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let outer = Arc::new(Registry::new());
        let inner = Arc::new(Registry::new());
        {
            let _g1 = install(outer.clone());
            with(|r| r.add("hits", 1));
            {
                let _g2 = install(inner.clone());
                with(|r| r.add("hits", 10));
            }
            // Inner guard dropped: outer is active again.
            with(|r| r.add("hits", 2));
        }
        assert!(!enabled());
        assert_eq!(outer.snapshot().counters["hits"], 3);
        assert_eq!(inner.snapshot().counters["hits"], 10);
    }
}
