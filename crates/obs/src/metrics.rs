//! The metric primitives: sharded counters, gauges, fixed-bucket
//! histograms.
//!
//! Everything here is built for *concurrent writers, rare readers*: the
//! pipeline's worker threads hammer counters while a snapshot happens
//! once per run. Counters are therefore sharded across cache lines and
//! keyed by a per-thread shard index, so two workers incrementing the
//! same counter never contend on one atomic. Snapshots sum the shards —
//! exact, since the shards are plain `u64` adds.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Shards per counter. 16 covers typical core counts; threads beyond
/// that wrap around and share (correctness is unaffected).
pub const COUNTER_SHARDS: usize = 16;

/// Monotonically growing per-thread shard assignment.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SHARD: usize =
        NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % COUNTER_SHARDS;
}

/// This thread's counter shard index.
#[inline]
fn shard_index() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// One cache line worth of counter shard, padded so neighbouring shards
/// never false-share.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonic counter, sharded per worker thread.
///
/// [`Counter::add`] is one relaxed `fetch_add` on the calling thread's
/// shard; [`Counter::get`] merges all shards.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; COUNTER_SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds `v` to the calling thread's shard.
    #[inline]
    pub fn add(&self, v: u64) {
        self.shards[shard_index()].0.fetch_add(v, Ordering::Relaxed);
    }

    /// The merged total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// A last-value-wins `f64` gauge (stored as raw bits in one atomic).
#[derive(Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge reading `0.0`.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger — a concurrent
    /// high-water mark (used for e.g. peak rows buffered).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

/// A fixed-bucket histogram: upper bounds chosen at creation, one atomic
/// per bucket plus an implicit overflow bucket, with total count and a
/// CAS-accumulated `f64` sum.
pub struct Histogram {
    bounds: Box<[f64]>,
    /// `bounds.len() + 1` buckets; the last catches everything above the
    /// largest bound.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
}

impl Histogram {
    /// A histogram over the given inclusive upper bounds (must be
    /// sorted ascending; this is debug-asserted, not enforced).
    pub fn new(bounds: &[f64]) -> Histogram {
        debug_assert!(bounds.windows(2).all(|w| w[0] <= w[1]));
        Histogram {
            bounds: bounds.into(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Records one observation. A value equal to a bound lands in that
    /// bound's bucket (`le` semantics, like Prometheus).
    pub fn observe(&self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The bucket upper bounds.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket counts (non-cumulative), overflow bucket last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("bounds", &self.bounds)
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn sharded_counter_merges_concurrent_adds_exactly() {
        let counter = Arc::new(Counter::new());
        let threads = 8;
        let per_thread = 10_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let c = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..per_thread {
                        c.add(1);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.get(), threads * per_thread);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le() {
        let h = Histogram::new(&[1.0, 10.0]);
        h.observe(0.5); // bucket 0
        h.observe(1.0); // bucket 0 — boundary is inclusive
        h.observe(1.0001); // bucket 1
        h.observe(10.0); // bucket 1
        h.observe(11.0); // overflow
        assert_eq!(h.bucket_counts(), vec![2, 2, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 23.5001).abs() < 1e-9);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0); // lower: ignored
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }
}
