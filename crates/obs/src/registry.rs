//! The metrics registry: named metric instances plus span records.
//!
//! Name lookups take a read lock on a `BTreeMap` and return `Arc`
//! handles; hot code resolves a handle once (per scan, per job) and then
//! pays only the metric's own relaxed atomics. Names may embed
//! Prometheus-style labels (`store_scan_chunks{result="skipped"}`) —
//! the registry treats the whole string as the key and the renderers
//! pass it through.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

use crate::metrics::{Counter, Gauge, Histogram};
use crate::snapshot::{HistogramSnapshot, Snapshot, SpanStat};

/// One finished span: a named, timed region with optional parent
/// attribution.
#[derive(Debug, Clone)]
struct SpanRecord {
    name: String,
    parent: String,
    seconds: f64,
}

/// The registry: a subscriber's mutable half. Install one with
/// [`crate::install`]; read it out with [`Registry::snapshot`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
    spans: Mutex<Vec<SpanRecord>>,
    /// Instrumentation operations performed against this registry —
    /// the event count the overhead bench multiplies by the disabled
    /// per-op cost (surfaced as `obs_ops_total` in snapshots).
    ops: Counter,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut map = self.counters.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use with `bounds`
    /// (an existing histogram keeps its original bounds).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut map = self.histograms.write().unwrap_or_else(|e| e.into_inner());
        Arc::clone(
            map.entry(name.to_string())
                .or_insert_with(|| Arc::new(Histogram::new(bounds))),
        )
    }

    /// Adds `v` to counter `name`.
    pub fn add(&self, name: &str, v: u64) {
        self.ops.add(1);
        self.counter(name).add(v);
    }

    /// Sets gauge `name` to `v`.
    pub fn set_gauge(&self, name: &str, v: f64) {
        self.ops.add(1);
        self.gauge(name).set(v);
    }

    /// Raises gauge `name` to `v` if larger (high-water mark).
    pub fn gauge_max(&self, name: &str, v: f64) {
        self.ops.add(1);
        self.gauge(name).set_max(v);
    }

    /// Records one observation into histogram `name` (created with
    /// `bounds` on first use).
    pub fn observe(&self, name: &str, bounds: &[f64], v: f64) {
        self.ops.add(1);
        self.histogram(name, bounds).observe(v);
    }

    /// Records a finished span of `seconds` under `name`, attributed to
    /// `parent` (empty string = root). Explicit attribution works across
    /// threads — the pipeline's fan-out stages use it.
    pub fn record_span(&self, name: &str, parent: &str, seconds: f64) {
        self.ops.add(1);
        let mut spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        spans.push(SpanRecord {
            name: name.to_string(),
            parent: parent.to_string(),
            seconds,
        });
    }

    /// Starts a guard-scoped span whose parent is the innermost
    /// [`SpanTimer`] still open *on this thread*. The span is recorded
    /// when the timer drops.
    pub fn span(self: &Arc<Self>, name: &str) -> SpanTimer {
        let parent = SPAN_STACK.with(|stack| {
            let stack = stack.borrow();
            stack.last().cloned().unwrap_or_default()
        });
        SPAN_STACK.with(|stack| stack.borrow_mut().push(name.to_string()));
        SpanTimer {
            registry: Arc::clone(self),
            name: name.to_string(),
            parent,
            start: Instant::now(),
        }
    }

    /// Instrumentation operations recorded so far.
    pub fn ops(&self) -> u64 {
        self.ops.get()
    }

    /// A point-in-time, deterministically ordered snapshot: counter
    /// shards merged, spans aggregated per `(name, parent)`.
    pub fn snapshot(&self) -> Snapshot {
        let counters: BTreeMap<String, u64> = self
            .counters
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges: BTreeMap<String, f64> = self
            .gauges
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms: BTreeMap<String, HistogramSnapshot> = self
            .histograms
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(k, h)| {
                (
                    k.clone(),
                    HistogramSnapshot {
                        bounds: h.bounds().to_vec(),
                        buckets: h.bucket_counts(),
                        count: h.count(),
                        sum: h.sum(),
                    },
                )
            })
            .collect();
        let mut spans: BTreeMap<String, SpanStat> = BTreeMap::new();
        for rec in self.spans.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            let key = if rec.parent.is_empty() {
                rec.name.clone()
            } else {
                format!("{}/{}", rec.parent, rec.name)
            };
            let stat = spans.entry(key).or_insert_with(|| SpanStat {
                name: rec.name.clone(),
                parent: rec.parent.clone(),
                count: 0,
                seconds: 0.0,
            });
            stat.count += 1;
            stat.seconds += rec.seconds;
        }
        let mut snap = Snapshot {
            counters,
            gauges,
            histograms,
            spans,
        };
        snap.counters.insert("obs_ops_total".into(), self.ops.get());
        snap
    }
}

thread_local! {
    /// Open guard-scoped span names on this thread, innermost last.
    static SPAN_STACK: std::cell::RefCell<Vec<String>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// A guard measuring one span; records into its registry on drop.
#[derive(Debug)]
pub struct SpanTimer {
    registry: Arc<Registry>,
    name: String,
    parent: String,
    start: Instant,
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        self.registry
            .record_span(&self.name, &self.parent, self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_created_once_and_summed() {
        let r = Registry::new();
        r.add("a", 2);
        r.add("a", 3);
        r.add("b{k=\"v\"}", 1);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.counters["b{k=\"v\"}"], 1);
        // add + add + add = 3 instrumentation ops.
        assert_eq!(snap.counters["obs_ops_total"], 3);
    }

    #[test]
    fn histogram_keeps_first_bounds() {
        let r = Registry::new();
        r.observe("h", &[1.0, 2.0], 0.5);
        r.observe("h", &[99.0], 1.5); // different bounds: ignored
        let snap = r.snapshot();
        assert_eq!(snap.histograms["h"].bounds, vec![1.0, 2.0]);
        assert_eq!(snap.histograms["h"].buckets, vec![1, 1, 0]);
    }

    #[test]
    fn span_timers_nest_on_one_thread() {
        let r = Arc::new(Registry::new());
        {
            let _outer = r.span("run");
            let _inner = r.span("interpret");
        }
        let snap = r.snapshot();
        assert_eq!(snap.spans["run"].parent, "");
        assert_eq!(snap.spans["run/interpret"].parent, "run");
        assert_eq!(snap.spans["run/interpret"].count, 1);
    }

    #[test]
    fn explicit_span_attribution() {
        let r = Registry::new();
        r.record_span("dedup", "run", 0.25);
        r.record_span("dedup", "run", 0.75);
        let snap = r.snapshot();
        let stat = &snap.spans["run/dedup"];
        assert_eq!(stat.count, 2);
        assert!((stat.seconds - 1.0).abs() < 1e-12);
    }
}
