//! Immutable snapshots: deterministic ordering, deltas, merges, and the
//! Prometheus-text / JSON renderers.

use std::collections::BTreeMap;

/// A histogram frozen at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Inclusive bucket upper bounds.
    pub bounds: Vec<f64>,
    /// Non-cumulative per-bucket counts; overflow bucket last
    /// (`bounds.len() + 1` entries).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

/// Aggregated statistics of one span name under one parent.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanStat {
    /// Span name.
    pub name: String,
    /// Parent span name; empty for roots.
    pub parent: String,
    /// Times the span ran.
    pub count: u64,
    /// Total seconds across runs.
    pub seconds: f64,
}

/// A point-in-time view of a [`Registry`](crate::Registry): every map is
/// a `BTreeMap`, so iteration — and therefore every rendering — is
/// deterministic regardless of the thread interleaving that produced
/// the underlying metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span aggregates keyed `parent/name` (or `name` for roots).
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// The delta since `baseline`: counters, histogram buckets and span
    /// aggregates subtract (saturating); gauges keep this snapshot's
    /// value. Workers use this to report one session's activity from a
    /// long-lived registry.
    pub fn since(&self, baseline: &Snapshot) -> Snapshot {
        let counters = self
            .counters
            .iter()
            .map(|(k, v)| {
                let base = baseline.counters.get(k).copied().unwrap_or(0);
                (k.clone(), v.saturating_sub(base))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(k, h)| {
                let mut h = h.clone();
                if let Some(base) = baseline.histograms.get(k) {
                    for (b, base_b) in h.buckets.iter_mut().zip(&base.buckets) {
                        *b = b.saturating_sub(*base_b);
                    }
                    h.count = h.count.saturating_sub(base.count);
                    h.sum -= base.sum;
                }
                (k.clone(), h)
            })
            .collect();
        let spans = self
            .spans
            .iter()
            .map(|(k, s)| {
                let mut s = s.clone();
                if let Some(base) = baseline.spans.get(k) {
                    s.count = s.count.saturating_sub(base.count);
                    s.seconds -= base.seconds;
                }
                (k.clone(), s)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
            spans,
        }
    }

    /// Folds `other` into `self`: counters, histogram buckets and span
    /// aggregates add; gauges take the maximum (they are high-water
    /// marks or last-values — max is the conservative fleet view). The
    /// cluster coordinator uses this to merge worker snapshots.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(f64::NEG_INFINITY);
            if *v > *slot {
                *slot = *v;
            }
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) if mine.bounds == h.bounds => {
                    for (b, ob) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += ob;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
                Some(_) => {} // incompatible bounds: keep ours
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
        for (k, s) in &other.spans {
            match self.spans.get_mut(k) {
                Some(mine) => {
                    mine.count += s.count;
                    mine.seconds += s.seconds;
                }
                None => {
                    self.spans.insert(k.clone(), s.clone());
                }
            }
        }
    }

    /// Renders the Prometheus text exposition format. Counter and gauge
    /// names may embed labels (`name{k="v"}`); `# TYPE` lines are
    /// emitted once per base name.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let type_line = |out: &mut String, name: &str, kind: &str, typed: &mut Option<String>| {
            let base = name.split('{').next().unwrap_or(name);
            if typed.as_deref() != Some(base) {
                out.push_str(&format!("# TYPE {base} {kind}\n"));
                *typed = Some(base.to_string());
            }
        };
        let mut last_base: Option<String> = None;
        for (name, v) in &self.counters {
            type_line(&mut out, name, "counter", &mut last_base);
            out.push_str(&format!("{name} {v}\n"));
        }
        let mut last_base: Option<String> = None;
        for (name, v) in &self.gauges {
            type_line(&mut out, name, "gauge", &mut last_base);
            out.push_str(&format!("{name} {}\n", fmt_f64(*v)));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.buckets) {
                cumulative += count;
                out.push_str(&format!(
                    "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                    fmt_f64(*bound)
                ));
            }
            out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", h.count));
            out.push_str(&format!("{name}_sum {}\n", fmt_f64(h.sum)));
            out.push_str(&format!("{name}_count {}\n", h.count));
        }
        if !self.spans.is_empty() {
            out.push_str("# TYPE ivnt_span_seconds_total counter\n");
            for s in self.spans.values() {
                out.push_str(&format!(
                    "ivnt_span_seconds_total{{name=\"{}\",parent=\"{}\"}} {}\n",
                    escape_label(&s.name),
                    escape_label(&s.parent),
                    fmt_f64(s.seconds)
                ));
            }
            out.push_str("# TYPE ivnt_span_calls_total counter\n");
            for s in self.spans.values() {
                out.push_str(&format!(
                    "ivnt_span_calls_total{{name=\"{}\",parent=\"{}\"}} {}\n",
                    escape_label(&s.name),
                    escape_label(&s.parent),
                    s.count
                ));
            }
        }
        out
    }

    /// Renders a compact JSON document:
    /// `{"counters":{..},"gauges":{..},"histograms":{..},"spans":{..}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\"gauges\":{");
        push_entries(&mut out, self.gauges.iter(), |out, v| {
            out.push_str(&json_f64(*v));
        });
        out.push_str("},\"histograms\":{");
        push_entries(&mut out, self.histograms.iter(), |out, h| {
            out.push_str("{\"bounds\":[");
            out.push_str(
                &h.bounds
                    .iter()
                    .map(|b| json_f64(*b))
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push_str("],\"buckets\":[");
            out.push_str(
                &h.buckets
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(","),
            );
            out.push_str(&format!(
                "],\"count\":{},\"sum\":{}}}",
                h.count,
                json_f64(h.sum)
            ));
        });
        out.push_str("},\"spans\":{");
        push_entries(&mut out, self.spans.iter(), |out, s| {
            out.push_str(&format!(
                "{{\"name\":{},\"parent\":{},\"count\":{},\"seconds\":{}}}",
                json_string(&s.name),
                json_string(&s.parent),
                s.count,
                json_f64(s.seconds)
            ));
        });
        out.push_str("}}");
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut render: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (k, v) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&json_string(k));
        out.push(':');
        render(out, v);
    }
}

/// Formats an `f64` for Prometheus text (`+Inf`-style specials allowed).
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else if v.is_nan() {
        "NaN".into()
    } else {
        format!("{v}")
    }
}

/// Formats an `f64` for JSON (non-finite becomes `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".into()
    }
}

/// Escapes a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Escapes a Prometheus label value.
fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.add("events_total", 7);
        r.add("chunks{result=\"skipped\"}", 3);
        r.set_gauge("peak_rows", 128.0);
        r.observe("stage_seconds", &[0.1, 1.0], 0.05);
        r.observe("stage_seconds", &[0.1, 1.0], 0.5);
        r.record_span("interpret", "run", 0.25);
        r.snapshot()
    }

    #[test]
    fn since_subtracts_and_merge_adds() {
        let base = sample();
        let mut later = sample();
        *later.counters.get_mut("events_total").unwrap() = 12;
        let delta = later.since(&base);
        assert_eq!(delta.counters["events_total"], 5);
        assert_eq!(delta.counters["chunks{result=\"skipped\"}"], 0);

        let mut merged = base.clone();
        merged.merge(&later);
        assert_eq!(merged.counters["events_total"], 19);
        assert_eq!(merged.histograms["stage_seconds"].count, 4);
        assert_eq!(merged.spans["run/interpret"].count, 2);
        assert_eq!(merged.gauges["peak_rows"], 128.0);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_typed() {
        let text = sample().to_prometheus();
        assert!(text.contains("# TYPE events_total counter"));
        assert!(text.contains("events_total 7"));
        assert!(text.contains("chunks{result=\"skipped\"} 3"));
        assert!(text.contains("stage_seconds_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("stage_seconds_bucket{le=\"1\"} 2"));
        assert!(text.contains("stage_seconds_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("stage_seconds_count 2"));
        assert!(text.contains("ivnt_span_seconds_total{name=\"interpret\",parent=\"run\"} 0.25"));
    }

    #[test]
    fn json_rendering_is_wellformed_enough() {
        let json = sample().to_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"events_total\":7"));
        assert!(json.contains("\"bounds\":[0.1,1]"));
        assert!(json.contains("\"run/interpret\""));
        assert!(json.ends_with("}}"));
        // Balanced braces (a cheap structural check without a parser).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn snapshot_identical_regardless_of_insertion_order() {
        let a = Registry::new();
        a.add("x", 1);
        a.add("y", 2);
        let b = Registry::new();
        b.add("y", 2);
        b.add("x", 1);
        assert_eq!(a.snapshot(), b.snapshot());
    }
}
