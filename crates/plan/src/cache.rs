//! The plan-keyed result cache.
//!
//! Maps `(query fingerprint, store epoch)` to the query's extracted `K_s`
//! partitions. A hit skips the scan *and* the interpret kernel; the
//! per-query back half (dedup → reduce → extend → classify → branch) is
//! deterministic on `K_s`, so replaying it from cached partitions yields
//! output bit-identical to a fresh session. Entries are invalidated by
//! epoch comparison, not eviction: any append advances the store's
//! [`generation`](ivnt_store::Footer::generation) and strands the old
//! epoch's entries, which age out of the FIFO ring.

use std::collections::{HashMap, VecDeque};

use ivnt_frame::batch::Batch;

/// Default maximum number of cached extractions.
pub const DEFAULT_CACHE_CAPACITY: usize = 128;

#[derive(Debug, Clone)]
struct Entry {
    epoch: u64,
    parts: Vec<Batch>,
}

/// Bounded FIFO cache of extracted `K_s` partition lists.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    map: HashMap<u64, Entry>,
    order: VecDeque<u64>,
    capacity: usize,
}

impl PlanCache {
    pub(crate) fn with_capacity(capacity: usize) -> PlanCache {
        PlanCache {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity: capacity.max(1),
        }
    }

    /// Looks up `key` at `epoch`. A stale entry (older epoch) is dropped
    /// on the spot — it can never be valid again.
    pub(crate) fn get(&mut self, key: u64, epoch: u64) -> Option<Vec<Batch>> {
        match self.map.get(&key) {
            Some(e) if e.epoch == epoch => Some(e.parts.clone()),
            Some(_) => {
                self.map.remove(&key);
                self.order.retain(|k| *k != key);
                None
            }
            None => None,
        }
    }

    pub(crate) fn insert(&mut self, key: u64, epoch: u64, parts: Vec<Batch>) {
        if self.map.insert(key, Entry { epoch, parts }).is_none() {
            self.order.push_back(key);
            while self.order.len() > self.capacity {
                if let Some(evict) = self.order.pop_front() {
                    self.map.remove(&evict);
                }
            }
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }
}
