//! The shared-scan executor: one store pass answers N queries.
//!
//! Two sharing strategies, chosen per batch:
//!
//! - **Shared interpret** — when no query has a time window and the
//!   queries' signal sets are pairwise disjoint, the executor builds one
//!   *union* rule set (each query's `U_comb` rules concatenated, order
//!   preserved) and runs the vectorized interpret kernel **once** per
//!   admitted row group, then routes emitted rows back to their query by
//!   signal ownership. This is exact: the kernel emits input-row-major,
//!   and within a row each `(bus, mid)` rule group keeps every query's
//!   rules in that query's own relative order, so the routed subsequence
//!   equals the query's solo emission row for row.
//! - **Per-query interpret** — when signals overlap or windows differ,
//!   rows can't be routed by signal name alone (the same emitted row may
//!   belong to several queries, or to none inside a window). The scan and
//!   chunk decode are still shared; each query then interprets its own
//!   filtered row subset, which is the solo path by construction.
//!
//! Either way a query's `K_s` partition list is identical to what its own
//! [`Session`](ivnt_core::pipeline::Session) extraction would build: one
//! partition per row group in which at least one raw row matched the
//! query's predicate (the solo scan only emits such groups).

use std::collections::HashMap;
use std::io::{Read, Seek};
use std::sync::Arc;

use ivnt_core::interpret::{extract_signals, extract_signals_routed};
use ivnt_core::rules::{Rule, RuleSet};
use ivnt_core::{Error, Pipeline, Result};
use ivnt_frame::batch::Batch;
use ivnt_frame::frame::DataFrame;
use ivnt_store::schema::records_to_batch;
use ivnt_store::{CompiledPredicate, Record, ScanStats, StoreReader};

/// One query as the executor sees it.
pub(crate) struct QuerySpec<'p> {
    pub pipeline: &'p Pipeline,
    pub window: Option<(u64, u64)>,
}

/// What one shared pass produced, aligned with the input query slice.
pub(crate) struct RouteOutcome {
    /// Per-query `K_s` partitions (unpadded; callers add the store
    /// source's empty-batch padding).
    pub parts: Vec<Vec<Batch>>,
    /// Raw store rows routed to each query.
    pub rows_routed: Vec<u64>,
    /// Row groups that contributed at least one raw row to each query.
    pub groups_hit: Vec<u32>,
    /// The shared scan's pushdown statistics (`rows_emitted` counts
    /// union rows).
    pub stats: ScanStats,
    /// Row groups the union scan emitted.
    pub groups_scanned: u32,
    /// Whether the union-kernel fast path applied.
    pub shared_interpret: bool,
}

/// True when every query is windowless and no signal name is claimed by
/// two different queries — the precondition of the union-kernel path.
pub(crate) fn can_share_interpret(specs: &[QuerySpec<'_>]) -> bool {
    if specs.iter().any(|s| s.window.is_some()) {
        return false;
    }
    let mut owner: HashMap<&str, usize> = HashMap::new();
    for (qi, spec) in specs.iter().enumerate() {
        for r in spec.pipeline.u_comb().rules() {
            if *owner.entry(&r.signal).or_insert(qi) != qi {
                return false;
            }
        }
    }
    true
}

/// Compiles each query's preselection (plus window) against the store.
pub(crate) fn compile_predicates<R: Read + Seek>(
    specs: &[QuerySpec<'_>],
    reader: &StoreReader<R>,
) -> Vec<CompiledPredicate> {
    specs
        .iter()
        .map(|s| {
            let mut pred = s.pipeline.store_predicate();
            if let Some((from, to)) = s.window {
                pred = pred.with_time_range_us(from, to);
            }
            pred.compile(reader.footer())
        })
        .collect()
}

/// Runs one shared pass over `reader` answering every query in `specs`.
pub(crate) fn route_shared<R: Read + Seek>(
    specs: &[QuerySpec<'_>],
    reader: &mut StoreReader<R>,
) -> Result<RouteOutcome> {
    let n = specs.len();
    let preds = compile_predicates(specs, reader);
    let shared_interpret = can_share_interpret(specs);

    // Union rule set + signal-ownership routing table for the fast path.
    let (union_set, owner) = if shared_interpret {
        let mut rules: Vec<Arc<Rule>> = Vec::new();
        let mut owner: HashMap<String, usize> = HashMap::new();
        for (qi, spec) in specs.iter().enumerate() {
            for r in spec.pipeline.u_comb().rules() {
                owner.entry(r.signal.clone()).or_insert(qi);
                rules.push(r.clone());
            }
        }
        (RuleSet::from_rules(rules), owner)
    } else {
        (RuleSet::new(), HashMap::new())
    };

    let raw_schema = ivnt_core::tabular::raw_schema();
    let mut parts: Vec<Vec<Batch>> = vec![Vec::new(); n];
    let mut rows_routed = vec![0u64; n];
    let mut groups_hit = vec![0u32; n];
    let mut groups_scanned = 0u32;

    // `(bus, mid)` → per-query pair-match vector, decided once per
    // distinct key instead of hashing every predicate per row. The time
    // component (window queries only) stays a per-row compare.
    let windows: Vec<Option<(u64, u64)>> = specs.iter().map(|s| s.window).collect();
    let mut pair_memo: HashMap<(u32, u32), usize> = HashMap::new();
    let mut pair_masks: Vec<bool> = Vec::new();

    let stats = reader.scan_indexed::<Error, _>(&preds, |rows| {
        groups_scanned += 1;
        let mut hit = vec![false; n];
        for row in &rows {
            let key = (row.bus_id, row.record.message_id);
            let mi = *pair_memo.entry(key).or_insert_with(|| {
                pair_masks.extend(preds.iter().map(|p| p.row_matches(row)));
                pair_masks.len() / n - 1
            });
            let mask = &pair_masks[mi * n..(mi + 1) * n];
            for qi in 0..n {
                // Windowless predicates are pure pair tests — the memo
                // answers them. A windowed predicate's match depends on
                // the row's timestamp too, so it is evaluated directly.
                let matches = if windows[qi].is_some() {
                    preds[qi].row_matches(row)
                } else {
                    mask[qi]
                };
                if matches {
                    hit[qi] = true;
                    rows_routed[qi] += 1;
                }
            }
        }
        for (qi, h) in hit.iter().enumerate() {
            if *h {
                groups_hit[qi] += 1;
            }
        }

        if shared_interpret {
            // One union-kernel pass, emissions routed by signal owner
            // inside the kernel (see `extract_signals_routed`).
            let records: Vec<Record> = rows.into_iter().map(|r| r.record).collect();
            let raw = records_to_batch(raw_schema.clone(), &records).map_err(Error::from)?;
            let morsel = DataFrame::from_partitions(raw_schema.clone(), vec![raw])?;
            let routed =
                extract_signals_routed(&morsel, &union_set, n, |name| match owner.get(name) {
                    Some(&qi) => qi,
                    None => n, // discard lane; unreachable for union rules
                })?;
            for (qi, batches) in routed.into_iter().enumerate() {
                // A query gets a (possibly empty) partition exactly
                // when its solo scan would have emitted this group.
                if hit[qi] {
                    parts[qi].extend(batches);
                }
            }
        } else {
            // Shared scan + decode only; each query interprets its own
            // row subset — the solo path verbatim.
            for qi in 0..n {
                if !hit[qi] {
                    continue;
                }
                let records: Vec<Record> = rows
                    .iter()
                    .filter(|r| preds[qi].row_matches(r))
                    .map(|r| r.record.clone())
                    .collect();
                let raw = records_to_batch(raw_schema.clone(), &records).map_err(Error::from)?;
                let morsel = DataFrame::from_partitions(raw_schema.clone(), vec![raw])?;
                let interpreted = extract_signals(&morsel, specs[qi].pipeline.u_comb())?;
                parts[qi].extend(interpreted.partitions().iter().cloned());
            }
        }
        Ok(())
    })?;

    Ok(RouteOutcome {
        parts,
        rows_routed,
        groups_hit,
        stats,
        groups_scanned,
        shared_interpret,
    })
}
