//! Plan and store fingerprints — the two halves of a cache key.
//!
//! A cached extraction may be reused only when *both* the question and the
//! data are unchanged. The question is fingerprinted from the query's
//! normalized predicate (sorted, deduplicated `(bus, mid)` pairs plus the
//! time window) and its rule identity (the `U_comb` rule list *in order* —
//! emission order depends on it); the data from the store's footer
//! ([`generation`](ivnt_store::Footer::generation) plus row/chunk/group
//! geometry, so both appends and compaction rewrites advance the epoch).

use std::sync::Arc;

use ivnt_core::Pipeline;
use ivnt_store::Footer;

/// FNV-1a 64, streamed. Same constants as the store's chunk checksum.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprints one query: normalized predicate + ordered rule identity.
///
/// Rule identity includes each rule's `(signal, bus, message id)` *and*
/// its [`Arc`] pointer, so two pipelines only share cache entries when
/// they were built from the same rule table in the same process — a
/// conservative choice that can miss spuriously but never hit falsely
/// (two same-named signals with different decode parameters never
/// collide).
pub(crate) fn query_fingerprint(pipeline: &Pipeline, window: Option<(u64, u64)>) -> u64 {
    let mut h = Fnv::new();

    // Normalized predicate: sorted, deduplicated (bus, mid) pairs.
    let mut pairs: Vec<(&str, u32)> = pipeline
        .u_comb()
        .rules()
        .iter()
        .map(|r| (r.bus.as_str(), r.message_id))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    h.write_u64(pairs.len() as u64);
    for (bus, mid) in pairs {
        h.write_u64(bus.len() as u64);
        h.write(bus.as_bytes());
        h.write_u64(u64::from(mid));
    }

    match window {
        None => h.write_u64(0),
        Some((from, to)) => {
            h.write_u64(1);
            h.write_u64(from);
            h.write_u64(to);
        }
    }

    // Ordered rule identity: emission order follows the rule list.
    let rules = pipeline.u_comb().rules();
    h.write_u64(rules.len() as u64);
    for r in rules {
        h.write_u64(r.signal.len() as u64);
        h.write(r.signal.as_bytes());
        h.write_u64(r.bus.len() as u64);
        h.write(r.bus.as_bytes());
        h.write_u64(u64::from(r.message_id));
        h.write_u64(Arc::as_ptr(r) as usize as u64);
    }
    h.finish()
}

/// Fingerprints the store's current contents — the cache epoch.
pub(crate) fn store_epoch(footer: &Footer) -> u64 {
    let mut h = Fnv::new();
    h.write_u64(footer.generation);
    h.write_u64(footer.rows);
    h.write_u64(u64::from(footer.groups));
    h.write_u64(u64::from(footer.group_rows));
    h.write_u64(footer.chunks.len() as u64);
    h.finish()
}
