//! # ivnt-plan — lazy multi-query planner with shared scans
//!
//! The paper's deployment serves many analysis domains (one
//! interpretation table selection per domain) over the same fleet traces.
//! Running each domain as its own [`Pipeline::session`] pays N full store
//! passes for N tenants; this crate answers all N from **one** pass:
//!
//! 1. **Plan** — each query contributes a normalized preselection
//!    predicate (its `U_comb`'s `(bus, mid)` pairs, plus an optional time
//!    window) and a cache fingerprint.
//! 2. **Cache probe** — queries whose `(fingerprint, store epoch)` is
//!    cached skip the scan entirely. The epoch hashes the store's
//!    [`generation`](ivnt_store::Footer::generation) (advanced by every
//!    append-mode flush), so a growing store invalidates naturally.
//! 3. **Shared scan** — remaining queries are merged into one union
//!    predicate; the store is scanned once, zone maps pruning chunks no
//!    query needs. When queries are signal-disjoint and windowless the
//!    vectorized interpret kernel also runs once per row group over the
//!    union rule set, and emitted rows are routed back by signal
//!    ownership (see [`exec`](self) internals); otherwise each query
//!    interprets its own row subset of the shared decode.
//! 4. **Per-query back half** — dedup → reduce → extend → classify →
//!    branch runs per query on its routed `K_s`, so every answer is
//!    **bit-identical** to running that query as its own session.
//!
//! ```no_run
//! # fn demo(p1: &ivnt_core::Pipeline, p2: &ivnt_core::Pipeline,
//! #         reader: &mut ivnt_store::StoreReader<std::io::BufReader<std::fs::File>>)
//! # -> ivnt_core::Result<()> {
//! use ivnt_plan::{Query, SessionMany};
//! use ivnt_core::Pipeline;
//! let out = Pipeline::session_many(vec![Query::new(p1), Query::new(p2)], reader).run()?;
//! assert_eq!(out.results.len(), 2);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod cache;
mod exec;
mod fingerprint;

use std::io::{Read, Seek};
use std::sync::Arc;
use std::time::Instant;

use ivnt_core::interpret::signal_schema;
use ivnt_core::pipeline::PipelineOutput;
use ivnt_core::{Pipeline, Result};
use ivnt_frame::batch::Batch;
use ivnt_frame::frame::DataFrame;
use ivnt_store::{ScanStats, StoreReader};

use cache::PlanCache;
pub use cache::DEFAULT_CACHE_CAPACITY;
use exec::{route_shared, QuerySpec};

/// One query of a multi-query batch: a domain pipeline plus optional
/// planner-level restrictions.
pub struct Query<'p> {
    pipeline: &'p Pipeline,
    window: Option<(u64, u64)>,
    label: Option<String>,
}

impl<'p> Query<'p> {
    /// A query running `pipeline` over the whole store.
    pub fn new(pipeline: &'p Pipeline) -> Query<'p> {
        Query {
            pipeline,
            window: None,
            label: None,
        }
    }

    /// Restricts the query to the inclusive `[from, to]` timestamp window
    /// (µs), pushed into the shared scan's predicate.
    pub fn with_window(mut self, from_us: u64, to_us: u64) -> Query<'p> {
        self.window = Some((from_us, to_us));
        self
    }

    /// Overrides the result label (defaults to the domain profile name).
    pub fn with_label(mut self, label: impl Into<String>) -> Query<'p> {
        self.label = Some(label.into());
        self
    }

    /// The query's pipeline.
    pub fn pipeline(&self) -> &'p Pipeline {
        self.pipeline
    }

    /// The query's result label.
    pub fn label(&self) -> &str {
        self.label
            .as_deref()
            .unwrap_or(&self.pipeline.profile().name)
    }
}

/// Per-query planner statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryStats {
    /// Raw store rows routed to this query (0 on a cache hit — nothing
    /// was scanned).
    pub rows_routed: u64,
    /// Row groups that contributed rows to this query.
    pub groups: u32,
    /// Whether the answer came from the plan cache.
    pub cache_hit: bool,
}

/// Batch-level planner statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PlanStats {
    /// Queries in the batch.
    pub queries: usize,
    /// Queries answered from the plan cache.
    pub cache_hits: usize,
    /// Queries that joined the shared scan.
    pub cache_misses: usize,
    /// Whether the union-kernel fast path applied to the shared scan.
    pub shared_interpret: bool,
    /// Store passes avoided versus sequential sessions: `misses − 1`
    /// scans saved by sharing plus one per cache hit.
    pub scans_saved: usize,
    /// Row groups the shared scan emitted.
    pub groups_scanned: u32,
    /// The shared scan's pushdown statistics (`None` when every query
    /// was a cache hit and no scan ran).
    pub scan: Option<ScanStats>,
}

/// One query's full-pipeline result.
pub struct QueryResult {
    /// Result label (profile name unless overridden).
    pub label: String,
    /// The query's pipeline output, bit-identical to a solo session.
    pub output: PipelineOutput,
    /// Per-query planner statistics.
    pub stats: QueryStats,
}

/// One query's extraction-only result.
pub struct QueryExtraction {
    /// Result label (profile name unless overridden).
    pub label: String,
    /// The interpreted `K_s` frame, bit-identical to a solo session's.
    pub frame: DataFrame,
    /// Per-query planner statistics.
    pub stats: QueryStats,
}

/// What [`QuerySet::run`] produces.
pub struct MultiOutput {
    /// Per-query results, in query order.
    pub results: Vec<QueryResult>,
    /// Batch-level planner statistics.
    pub plan: PlanStats,
}

/// What [`QuerySet::extract`] produces.
pub struct MultiExtraction {
    /// Per-query extractions, in query order.
    pub frames: Vec<QueryExtraction>,
    /// Batch-level planner statistics.
    pub plan: PlanStats,
}

/// A reusable planner: holds the plan-keyed result cache across batches.
/// Drop-and-recreate is equivalent to clearing the cache.
#[derive(Debug, Default)]
pub struct Planner {
    cache: PlanCache,
}

impl Planner {
    /// A planner with the default cache capacity
    /// ([`DEFAULT_CACHE_CAPACITY`] extractions).
    pub fn new() -> Planner {
        Planner::with_cache_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// A planner caching at most `capacity` extractions (FIFO eviction).
    pub fn with_cache_capacity(capacity: usize) -> Planner {
        Planner {
            cache: PlanCache::with_capacity(capacity),
        }
    }

    /// Cached extractions currently held.
    pub fn cached(&self) -> usize {
        self.cache.len()
    }

    /// Answers every query's extraction (`K_s`) from one shared pass.
    ///
    /// # Errors
    ///
    /// Propagates store corruption/I/O and tabular-engine errors; the
    /// batch fails as a whole.
    pub fn extract<R: Read + Seek>(
        &mut self,
        queries: &[Query<'_>],
        reader: &mut StoreReader<R>,
    ) -> Result<MultiExtraction> {
        let (parts, plan, per_query) = self.extract_parts(queries, reader)?;
        let frames = queries
            .iter()
            .zip(parts)
            .zip(per_query)
            .map(|((q, parts), stats)| {
                Ok(QueryExtraction {
                    label: q.label().to_string(),
                    frame: q.pipeline.signal_frame(parts)?,
                    stats,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MultiExtraction { frames, plan })
    }

    /// Answers every query's full pipeline run from one shared pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::extract`].
    pub fn run<R: Read + Seek>(
        &mut self,
        queries: &[Query<'_>],
        reader: &mut StoreReader<R>,
    ) -> Result<MultiOutput> {
        self.run_with(queries, reader, false)
    }

    /// [`Planner::run`] with the per-signal fan-out forced serial — the
    /// reference oracle, mirroring
    /// [`RunOptions::serial`](ivnt_core::pipeline::RunOptions::serial).
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::extract`].
    pub fn run_serial<R: Read + Seek>(
        &mut self,
        queries: &[Query<'_>],
        reader: &mut StoreReader<R>,
    ) -> Result<MultiOutput> {
        self.run_with(queries, reader, true)
    }

    fn run_with<R: Read + Seek>(
        &mut self,
        queries: &[Query<'_>],
        reader: &mut StoreReader<R>,
        serial: bool,
    ) -> Result<MultiOutput> {
        let t_extract = Instant::now();
        let (parts, plan, per_query) = self.extract_parts(queries, reader)?;
        let extract_secs = t_extract.elapsed().as_secs_f64();
        // The shared extraction's cost is attributed evenly across the
        // batch — per-query stage timings stay comparable to solo runs.
        let interpret_secs = extract_secs / queries.len().max(1) as f64;
        let results = queries
            .iter()
            .zip(parts)
            .zip(per_query)
            .map(|((q, parts), stats)| {
                let epoch = Instant::now();
                let ks = q.pipeline.signal_frame(parts)?;
                let parallel = !serial && q.pipeline.effective_workers() > 1;
                let output = q
                    .pipeline
                    .run_from_ks(ks, epoch, interpret_secs, parallel)?;
                Ok(QueryResult {
                    label: q.label().to_string(),
                    output,
                    stats,
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(MultiOutput { results, plan })
    }

    /// The planner core: cache probe → shared scan → routing → cache
    /// fill. Returns each query's padded `K_s` partitions.
    fn extract_parts<R: Read + Seek>(
        &mut self,
        queries: &[Query<'_>],
        reader: &mut StoreReader<R>,
    ) -> Result<(Vec<Vec<Batch>>, PlanStats, Vec<QueryStats>)> {
        let epoch = fingerprint::store_epoch(reader.footer());
        let keys: Vec<u64> = queries
            .iter()
            .map(|q| fingerprint::query_fingerprint(q.pipeline, q.window))
            .collect();

        // Cache probe: split the batch into hits and the scan set.
        let mut parts: Vec<Option<Vec<Batch>>> = Vec::with_capacity(queries.len());
        let mut per_query: Vec<QueryStats> = Vec::with_capacity(queries.len());
        let mut scan_set: Vec<usize> = Vec::new();
        for (qi, key) in keys.iter().enumerate() {
            match self.cache.get(*key, epoch) {
                Some(cached) => {
                    parts.push(Some(cached));
                    per_query.push(QueryStats {
                        rows_routed: 0,
                        groups: 0,
                        cache_hit: true,
                    });
                }
                None => {
                    parts.push(None);
                    per_query.push(QueryStats {
                        rows_routed: 0,
                        groups: 0,
                        cache_hit: false,
                    });
                    scan_set.push(qi);
                }
            }
        }
        let cache_hits = queries.len() - scan_set.len();

        let mut plan = PlanStats {
            queries: queries.len(),
            cache_hits,
            cache_misses: scan_set.len(),
            shared_interpret: false,
            scans_saved: cache_hits + scan_set.len().saturating_sub(1),
            groups_scanned: 0,
            scan: None,
        };

        if !scan_set.is_empty() {
            let specs: Vec<QuerySpec<'_>> = scan_set
                .iter()
                .map(|&qi| QuerySpec {
                    pipeline: queries[qi].pipeline,
                    window: queries[qi].window,
                })
                .collect();
            let mut outcome = route_shared(&specs, reader)?;
            plan.shared_interpret = outcome.shared_interpret;
            plan.groups_scanned = outcome.groups_scanned;
            plan.scan = Some(outcome.stats);
            for (si, &qi) in scan_set.iter().enumerate() {
                let mut query_parts = std::mem::take(&mut outcome.parts[si]);
                // Store-source semantics: an all-pruned query still gets
                // one empty partition so downstream schemas hold.
                if query_parts.is_empty() {
                    query_parts.push(Batch::empty(signal_schema()));
                }
                self.cache.insert(keys[qi], epoch, query_parts.clone());
                per_query[qi].rows_routed = outcome.rows_routed[si];
                per_query[qi].groups = outcome.groups_hit[si];
                parts[qi] = Some(query_parts);
            }
        }

        flush_plan_obs(&plan, queries, &per_query);
        let parts = parts
            .into_iter()
            .map(|p| p.expect("every query resolved by cache or scan"))
            .collect();
        Ok((parts, plan, per_query))
    }
}

/// One registry interaction per batch, mirroring the store scan's pattern.
fn flush_plan_obs(plan: &PlanStats, queries: &[Query<'_>], per_query: &[QueryStats]) {
    ivnt_obs::with(|r| {
        r.add("plan_batches_total", 1);
        r.add("plan_queries_total", plan.queries as u64);
        r.add("plan_cache_total{result=\"hit\"}", plan.cache_hits as u64);
        r.add(
            "plan_cache_total{result=\"miss\"}",
            plan.cache_misses as u64,
        );
        r.add("plan_scans_saved_total", plan.scans_saved as u64);
        r.add("plan_groups_scanned_total", u64::from(plan.groups_scanned));
        let strategy = if plan.cache_misses == 0 {
            "cache-only"
        } else if plan.shared_interpret {
            "shared-interpret"
        } else {
            "per-query"
        };
        r.add(
            &format!("plan_strategy_total{{strategy=\"{strategy}\"}}"),
            1,
        );
        for (q, s) in queries.iter().zip(per_query) {
            r.add(
                &format!("plan_rows_routed_total{{query=\"{}\"}}", q.label()),
                s.rows_routed,
            );
        }
    });
}

/// A batch of queries bound to one store reader — the multi-query
/// counterpart of [`Pipeline::session`]. Built with
/// [`Pipeline::session_many`] (via the [`SessionMany`] extension trait).
pub struct QuerySet<'p, 'a, 'c, R: Read + Seek> {
    queries: Vec<Query<'p>>,
    reader: &'a mut StoreReader<R>,
    planner: Option<&'c mut Planner>,
    serial: bool,
    subscriber: Option<Arc<ivnt_obs::Registry>>,
}

impl<'p, 'a, 'c, R: Read + Seek> QuerySet<'p, 'a, 'c, R> {
    /// Reuses `planner` (and its result cache) instead of a throwaway one.
    pub fn with_planner(mut self, planner: &'c mut Planner) -> Self {
        self.planner = Some(planner);
        self
    }

    /// Forces every query's per-signal fan-out serial (reference oracle).
    pub fn serial(mut self) -> Self {
        self.serial = true;
        self
    }

    /// Installs `registry` as the metrics subscriber for the batch.
    pub fn with_subscriber(mut self, registry: Arc<ivnt_obs::Registry>) -> Self {
        self.subscriber = Some(registry);
        self
    }

    /// Runs every query's full pipeline from one shared pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::run`].
    pub fn run(self) -> Result<MultiOutput> {
        let QuerySet {
            queries,
            reader,
            planner,
            serial,
            subscriber,
        } = self;
        let _guard = subscriber.map(ivnt_obs::install);
        let mut local = Planner::new();
        let planner = planner.unwrap_or(&mut local);
        planner.run_with(&queries, reader, serial)
    }

    /// Extracts every query's `K_s` from one shared pass.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Planner::extract`].
    pub fn extract(self) -> Result<MultiExtraction> {
        let QuerySet {
            queries,
            reader,
            planner,
            subscriber,
            ..
        } = self;
        let _guard = subscriber.map(ivnt_obs::install);
        let mut local = Planner::new();
        let planner = planner.unwrap_or(&mut local);
        planner.extract(&queries, reader)
    }
}

/// Extension trait putting `session_many` on [`Pipeline`] — bring it into
/// scope and call `Pipeline::session_many(queries, reader)`.
pub trait SessionMany {
    /// Binds a batch of queries to one store reader.
    fn session_many<'p, 'a, 'c, R: Read + Seek>(
        queries: Vec<Query<'p>>,
        reader: &'a mut StoreReader<R>,
    ) -> QuerySet<'p, 'a, 'c, R>;
}

impl SessionMany for Pipeline {
    fn session_many<'p, 'a, 'c, R: Read + Seek>(
        queries: Vec<Query<'p>>,
        reader: &'a mut StoreReader<R>,
    ) -> QuerySet<'p, 'a, 'c, R> {
        QuerySet {
            queries,
            reader,
            planner: None,
            serial: false,
            subscriber: None,
        }
    }
}
