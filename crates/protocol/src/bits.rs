//! Bit-level extraction and insertion of raw signal values.
//!
//! In-vehicle protocols pack several signals into one payload at arbitrary
//! bit positions. Two start-bit conventions are in industry use (both
//! supported here, matching DBC semantics):
//!
//! * **Intel (little endian)** — `start_bit` addresses the signal's least
//!   significant bit; successive bits walk towards higher bit positions.
//! * **Motorola (big endian)** — `start_bit` addresses the signal's *most*
//!   significant bit; successive bits walk down within a byte and then jump
//!   to bit 7 of the following byte (the classic "sawtooth").
//!
//! Bit `p` addresses byte `p / 8`, bit `p % 8` with LSB-first numbering
//! inside each byte.

use crate::error::{Error, Result};

/// Byte order (start-bit convention) of a packed signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ByteOrder {
    /// Little endian; start bit = LSB.
    Intel,
    /// Big endian; start bit = MSB ("sawtooth" walk).
    Motorola,
}

fn check(start_bit: u16, bit_len: u16, payload_len: usize, order: ByteOrder) -> Result<()> {
    if bit_len == 0 || bit_len > 64 {
        return Err(Error::InvalidBitLength(bit_len));
    }
    let out_of_bounds = Error::BitRangeOutOfBounds {
        start_bit,
        bit_len,
        payload_len,
    };
    match order {
        ByteOrder::Intel => {
            let end = start_bit as usize + bit_len as usize;
            if end > payload_len * 8 {
                return Err(out_of_bounds);
            }
        }
        ByteOrder::Motorola => {
            // Walk the sawtooth to find the final bit position.
            let mut pos = start_bit as usize;
            if pos >= payload_len * 8 {
                return Err(out_of_bounds);
            }
            for _ in 1..bit_len {
                pos = if pos.is_multiple_of(8) {
                    pos + 15
                } else {
                    pos - 1
                };
                if pos >= payload_len * 8 {
                    return Err(out_of_bounds);
                }
            }
        }
    }
    Ok(())
}

#[inline]
fn get_bit(data: &[u8], pos: usize) -> u64 {
    ((data[pos / 8] >> (pos % 8)) & 1) as u64
}

#[inline]
fn set_bit(data: &mut [u8], pos: usize, bit: u64) {
    let mask = 1u8 << (pos % 8);
    if bit != 0 {
        data[pos / 8] |= mask;
    } else {
        data[pos / 8] &= !mask;
    }
}

/// Extracts an unsigned raw value of `bit_len` bits starting at `start_bit`.
///
/// # Errors
///
/// Returns [`Error::InvalidBitLength`] for `bit_len` outside `1..=64` and
/// [`Error::BitRangeOutOfBounds`] if the range leaves the payload.
pub fn extract(data: &[u8], start_bit: u16, bit_len: u16, order: ByteOrder) -> Result<u64> {
    check(start_bit, bit_len, data.len(), order)?;
    let mut value = 0u64;
    match order {
        ByteOrder::Intel => {
            for i in 0..bit_len as usize {
                value |= get_bit(data, start_bit as usize + i) << i;
            }
        }
        ByteOrder::Motorola => {
            let mut pos = start_bit as usize;
            for _ in 0..bit_len {
                value = (value << 1) | get_bit(data, pos);
                pos = if pos.is_multiple_of(8) {
                    pos + 15
                } else {
                    pos.wrapping_sub(1)
                };
            }
        }
    }
    Ok(value)
}

/// Extracts a signed raw value (two's complement over `bit_len` bits).
///
/// # Errors
///
/// Same conditions as [`extract`].
pub fn extract_signed(data: &[u8], start_bit: u16, bit_len: u16, order: ByteOrder) -> Result<i64> {
    let raw = extract(data, start_bit, bit_len, order)?;
    Ok(sign_extend(raw, bit_len))
}

/// Sign-extends `raw` interpreted as a `bit_len`-bit two's complement value.
pub fn sign_extend(raw: u64, bit_len: u16) -> i64 {
    if bit_len == 64 {
        return raw as i64;
    }
    let sign = 1u64 << (bit_len - 1);
    if raw & sign != 0 {
        (raw | !((1u64 << bit_len) - 1)) as i64
    } else {
        raw as i64
    }
}

/// Inserts the low `bit_len` bits of `value` at `start_bit`.
///
/// Bits of `value` above `bit_len` are ignored.
///
/// # Errors
///
/// Same conditions as [`extract`].
pub fn insert(
    data: &mut [u8],
    start_bit: u16,
    bit_len: u16,
    order: ByteOrder,
    value: u64,
) -> Result<()> {
    check(start_bit, bit_len, data.len(), order)?;
    match order {
        ByteOrder::Intel => {
            for i in 0..bit_len as usize {
                set_bit(data, start_bit as usize + i, (value >> i) & 1);
            }
        }
        ByteOrder::Motorola => {
            let mut pos = start_bit as usize;
            for i in (0..bit_len as usize).rev() {
                set_bit(data, pos, (value >> i) & 1);
                pos = if pos.is_multiple_of(8) {
                    pos + 15
                } else {
                    pos.wrapping_sub(1)
                };
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_byte_aligned() {
        let data = [0x5A, 0x01, 0xFF, 0x00];
        assert_eq!(extract(&data, 0, 8, ByteOrder::Intel).unwrap(), 0x5A);
        assert_eq!(extract(&data, 8, 8, ByteOrder::Intel).unwrap(), 0x01);
        assert_eq!(extract(&data, 0, 16, ByteOrder::Intel).unwrap(), 0x015A);
    }

    #[test]
    fn intel_unaligned() {
        // 0b1011_0100 -> bits 2..6 = 0b1101
        let data = [0b1011_0100];
        assert_eq!(extract(&data, 2, 4, ByteOrder::Intel).unwrap(), 0b1101);
    }

    #[test]
    fn motorola_byte_aligned() {
        let data = [0x12, 0x34];
        // start bit 7 (MSB of byte 0), 16 bits -> big-endian 0x1234
        assert_eq!(extract(&data, 7, 16, ByteOrder::Motorola).unwrap(), 0x1234);
    }

    #[test]
    fn motorola_sawtooth_crosses_bytes() {
        // 12-bit signal starting at bit 3 of byte 0: bits 3..0 of byte 0,
        // then bits 7..0 of byte 1.
        let data = [0b0000_1010, 0xCD];
        let v = extract(&data, 3, 12, ByteOrder::Motorola).unwrap();
        assert_eq!(v, 0b1010_1100_1101);
    }

    #[test]
    fn signed_extraction() {
        let data = [0xFF];
        assert_eq!(extract_signed(&data, 0, 8, ByteOrder::Intel).unwrap(), -1);
        let data = [0x80];
        assert_eq!(extract_signed(&data, 0, 8, ByteOrder::Intel).unwrap(), -128);
        let data = [0x7F];
        assert_eq!(extract_signed(&data, 0, 8, ByteOrder::Intel).unwrap(), 127);
    }

    #[test]
    fn sign_extend_widths() {
        assert_eq!(sign_extend(0b111, 3), -1);
        assert_eq!(sign_extend(0b011, 3), 3);
        assert_eq!(sign_extend(u64::MAX, 64), -1);
    }

    #[test]
    fn insert_extract_roundtrip_intel() {
        let mut data = [0u8; 8];
        insert(&mut data, 13, 11, ByteOrder::Intel, 0x5A5).unwrap();
        assert_eq!(extract(&data, 13, 11, ByteOrder::Intel).unwrap(), 0x5A5);
    }

    #[test]
    fn insert_extract_roundtrip_motorola() {
        let mut data = [0u8; 8];
        insert(&mut data, 5, 14, ByteOrder::Motorola, 0x2B7D).unwrap();
        assert_eq!(extract(&data, 5, 14, ByteOrder::Motorola).unwrap(), 0x2B7D);
    }

    #[test]
    fn insert_does_not_clobber_neighbours() {
        let mut data = [0xFFu8; 2];
        insert(&mut data, 4, 4, ByteOrder::Intel, 0).unwrap();
        assert_eq!(data, [0x0F, 0xFF]);
    }

    #[test]
    fn bounds_checked() {
        let data = [0u8; 2];
        assert!(matches!(
            extract(&data, 10, 8, ByteOrder::Intel),
            Err(Error::BitRangeOutOfBounds { .. })
        ));
        assert!(matches!(
            extract(&data, 2, 12, ByteOrder::Motorola),
            Err(Error::BitRangeOutOfBounds { .. })
        ));
        assert!(matches!(
            extract(&data, 0, 0, ByteOrder::Intel),
            Err(Error::InvalidBitLength(0))
        ));
        assert!(matches!(
            extract(&data, 0, 65, ByteOrder::Intel),
            Err(Error::InvalidBitLength(65))
        ));
    }

    #[test]
    fn full_64_bit_roundtrip() {
        let mut data = [0u8; 8];
        insert(&mut data, 0, 64, ByteOrder::Intel, u64::MAX).unwrap();
        assert_eq!(extract(&data, 0, 64, ByteOrder::Intel).unwrap(), u64::MAX);
        let mut data = [0u8; 8];
        insert(&mut data, 7, 64, ByteOrder::Motorola, 0xDEAD_BEEF_0123_4567).unwrap();
        assert_eq!(
            extract(&data, 7, 64, ByteOrder::Motorola).unwrap(),
            0xDEAD_BEEF_0123_4567
        );
    }
}
