//! Classic CAN frames.

use bytes::Bytes;

use crate::error::{Error, Result};

/// A CAN identifier, standard (11-bit) or extended (29-bit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CanId {
    /// 11-bit base identifier.
    Standard(u16),
    /// 29-bit extended identifier.
    Extended(u32),
}

impl CanId {
    /// Creates a standard id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when the value exceeds 11 bits.
    pub fn standard(id: u16) -> Result<CanId> {
        if id > 0x7FF {
            return Err(Error::InvalidSpec(format!(
                "standard CAN id {id:#x} exceeds 11 bits"
            )));
        }
        Ok(CanId::Standard(id))
    }

    /// Creates an extended id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when the value exceeds 29 bits.
    pub fn extended(id: u32) -> Result<CanId> {
        if id > 0x1FFF_FFFF {
            return Err(Error::InvalidSpec(format!(
                "extended CAN id {id:#x} exceeds 29 bits"
            )));
        }
        Ok(CanId::Extended(id))
    }

    /// The raw identifier value.
    pub fn raw(&self) -> u32 {
        match self {
            CanId::Standard(id) => *id as u32,
            CanId::Extended(id) => *id,
        }
    }

    /// `true` for extended (29-bit) ids.
    pub fn is_extended(&self) -> bool {
        matches!(self, CanId::Extended(_))
    }
}

impl std::fmt::Display for CanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CanId::Standard(id) => write!(f, "{id:#05x}"),
            CanId::Extended(id) => write!(f, "{id:#010x}x"),
        }
    }
}

/// One CAN frame on the wire.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::can::{CanFrame, CanId};
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// let frame = CanFrame::new(CanId::standard(3)?, &[0x5A, 0x01])?;
/// assert_eq!(frame.dlc(), 2);
/// let wire = frame.to_wire();
/// assert_eq!(CanFrame::from_wire(&wire)?, frame);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanFrame {
    id: CanId,
    data: Bytes,
}

impl CanFrame {
    /// Creates a frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when `data` exceeds 8 bytes.
    pub fn new(id: CanId, data: &[u8]) -> Result<CanFrame> {
        if data.len() > 8 {
            return Err(Error::InvalidSpec(format!(
                "classic CAN payload limited to 8 bytes, got {}",
                data.len()
            )));
        }
        Ok(CanFrame {
            id,
            data: Bytes::copy_from_slice(data),
        })
    }

    /// The frame identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// The payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Data length code (payload size in bytes).
    pub fn dlc(&self) -> usize {
        self.data.len()
    }

    /// Serializes to a compact wire format:
    /// `flags(1) | id(4 LE) | dlc(1) | data`.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.data.len());
        out.push(if self.id.is_extended() { 1 } else { 0 });
        out.extend_from_slice(&self.id.raw().to_le_bytes());
        out.push(self.data.len() as u8);
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses the wire format produced by [`CanFrame::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::TruncatedFrame`] for short input and
    /// [`Error::InvalidSpec`] for malformed ids or DLC.
    pub fn from_wire(wire: &[u8]) -> Result<CanFrame> {
        if wire.len() < 6 {
            return Err(Error::TruncatedFrame {
                expected: 6,
                actual: wire.len(),
            });
        }
        let extended = wire[0] == 1;
        let raw = u32::from_le_bytes([wire[1], wire[2], wire[3], wire[4]]);
        let dlc = wire[5] as usize;
        if wire.len() < 6 + dlc {
            return Err(Error::TruncatedFrame {
                expected: 6 + dlc,
                actual: wire.len(),
            });
        }
        let id = if extended {
            CanId::extended(raw)?
        } else {
            CanId::standard(raw as u16)?
        };
        CanFrame::new(id, &wire[6..6 + dlc])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_limits() {
        assert!(CanId::standard(0x7FF).is_ok());
        assert!(CanId::standard(0x800).is_err());
        assert!(CanId::extended(0x1FFF_FFFF).is_ok());
        assert!(CanId::extended(0x2000_0000).is_err());
    }

    #[test]
    fn frame_payload_limit() {
        let id = CanId::standard(1).unwrap();
        assert!(CanFrame::new(id, &[0; 8]).is_ok());
        assert!(CanFrame::new(id, &[0; 9]).is_err());
    }

    #[test]
    fn wire_roundtrip_standard_and_extended() {
        let f = CanFrame::new(CanId::standard(0x123).unwrap(), &[1, 2, 3]).unwrap();
        assert_eq!(CanFrame::from_wire(&f.to_wire()).unwrap(), f);
        let f = CanFrame::new(CanId::extended(0x1ABCDEF).unwrap(), &[]).unwrap();
        assert_eq!(CanFrame::from_wire(&f.to_wire()).unwrap(), f);
    }

    #[test]
    fn truncated_wire_rejected() {
        assert!(matches!(
            CanFrame::from_wire(&[0, 1, 0]),
            Err(Error::TruncatedFrame { .. })
        ));
        let f = CanFrame::new(CanId::standard(5).unwrap(), &[1, 2, 3, 4]).unwrap();
        let wire = f.to_wire();
        assert!(matches!(
            CanFrame::from_wire(&wire[..wire.len() - 1]),
            Err(Error::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn display() {
        assert_eq!(CanId::standard(3).unwrap().to_string(), "0x003");
        assert!(CanId::extended(0x1234).unwrap().to_string().ends_with('x'));
    }
}

/// Valid CAN FD payload lengths (DLC codes 0–15).
pub const CAN_FD_LENGTHS: [usize; 16] = [0, 1, 2, 3, 4, 5, 6, 7, 8, 12, 16, 20, 24, 32, 48, 64];

/// A CAN FD frame: up to 64 payload bytes in the discrete lengths the DLC
/// code can express, plus the bit-rate-switch flag.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::can::{CanFdFrame, CanId};
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// let frame = CanFdFrame::new(CanId::standard(0x1A)?, &[0u8; 20], true)?;
/// assert_eq!(frame.dlc_code(), 11); // 20 bytes -> DLC code 11
/// assert_eq!(CanFdFrame::from_wire(&frame.to_wire())?, frame);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanFdFrame {
    id: CanId,
    data: Bytes,
    bit_rate_switch: bool,
}

impl CanFdFrame {
    /// Creates a frame.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when `data.len()` is not one of the
    /// lengths a CAN FD DLC code can express.
    pub fn new(id: CanId, data: &[u8], bit_rate_switch: bool) -> Result<CanFdFrame> {
        if !CAN_FD_LENGTHS.contains(&data.len()) {
            return Err(Error::InvalidSpec(format!(
                "CAN FD payload length {} is not DLC-expressible (valid: {CAN_FD_LENGTHS:?})",
                data.len()
            )));
        }
        Ok(CanFdFrame {
            id,
            data: Bytes::copy_from_slice(data),
            bit_rate_switch,
        })
    }

    /// The frame identifier.
    pub fn id(&self) -> CanId {
        self.id
    }

    /// The payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// `true` when the data phase uses the higher bit rate.
    pub fn bit_rate_switch(&self) -> bool {
        self.bit_rate_switch
    }

    /// The 4-bit DLC code encoding the payload length.
    pub fn dlc_code(&self) -> u8 {
        CAN_FD_LENGTHS
            .iter()
            .position(|&l| l == self.data.len())
            .expect("constructor enforces a valid length") as u8
    }

    /// Serializes to `flags(1) | id(4 LE) | dlc_code(1) | data`; flag bit 0
    /// = extended id, bit 1 = bit-rate switch.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(6 + self.data.len());
        let mut flags = 0u8;
        if self.id.is_extended() {
            flags |= 1;
        }
        if self.bit_rate_switch {
            flags |= 2;
        }
        out.push(flags);
        out.extend_from_slice(&self.id.raw().to_le_bytes());
        out.push(self.dlc_code());
        out.extend_from_slice(&self.data);
        out
    }

    /// Parses the wire format of [`CanFdFrame::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::TruncatedFrame`] for short input and
    /// [`Error::InvalidSpec`] for malformed ids or DLC codes.
    pub fn from_wire(wire: &[u8]) -> Result<CanFdFrame> {
        if wire.len() < 6 {
            return Err(Error::TruncatedFrame {
                expected: 6,
                actual: wire.len(),
            });
        }
        let flags = wire[0];
        let raw = u32::from_le_bytes([wire[1], wire[2], wire[3], wire[4]]);
        let code = wire[5] as usize;
        let len = *CAN_FD_LENGTHS
            .get(code)
            .ok_or_else(|| Error::InvalidSpec(format!("bad CAN FD DLC code {code}")))?;
        if wire.len() < 6 + len {
            return Err(Error::TruncatedFrame {
                expected: 6 + len,
                actual: wire.len(),
            });
        }
        let id = if flags & 1 != 0 {
            CanId::extended(raw)?
        } else {
            CanId::standard(raw as u16)?
        };
        CanFdFrame::new(id, &wire[6..6 + len], flags & 2 != 0)
    }
}

#[cfg(test)]
mod fd_tests {
    use super::*;

    #[test]
    fn dlc_codes_match_table() {
        let id = CanId::standard(1).unwrap();
        for (code, &len) in CAN_FD_LENGTHS.iter().enumerate() {
            let f = CanFdFrame::new(id, &vec![0u8; len], false).unwrap();
            assert_eq!(f.dlc_code() as usize, code);
        }
    }

    #[test]
    fn odd_lengths_rejected() {
        let id = CanId::standard(1).unwrap();
        for bad in [9usize, 13, 33, 63, 65] {
            assert!(CanFdFrame::new(id, &vec![0u8; bad], false).is_err());
        }
    }

    #[test]
    fn wire_roundtrip_with_flags() {
        let f = CanFdFrame::new(CanId::extended(0x1ABCDE).unwrap(), &[7u8; 48], true).unwrap();
        let parsed = CanFdFrame::from_wire(&f.to_wire()).unwrap();
        assert_eq!(parsed, f);
        assert!(parsed.bit_rate_switch());
    }

    #[test]
    fn bad_dlc_code_rejected() {
        let f = CanFdFrame::new(CanId::standard(2).unwrap(), &[1, 2], false).unwrap();
        let mut wire = f.to_wire();
        wire[5] = 16;
        assert!(matches!(
            CanFdFrame::from_wire(&wire),
            Err(Error::InvalidSpec(_))
        ));
    }
}
