//! The message/signal database (DBC-like catalog).

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::message::MessageSpec;
use crate::signal::{PhysicalValue, SignalSpec};

/// A database of every message (and therefore signal) type on every channel,
/// keyed by `(b_id, m_id)`.
///
/// This is the "documentation" knowledge the paper's interpretation rules
/// are generated from: each domain derives its `U_rel` subset by picking
/// signals out of the catalog.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::catalog::Catalog;
/// use ivnt_protocol::message::{MessageSpec, Protocol};
/// use ivnt_protocol::signal::SignalSpec;
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// let mut catalog = Catalog::new();
/// catalog.add_message(
///     MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
///         .dlc(4)
///         .signal(SignalSpec::builder("wpos", 0, 16).factor(0.5).build()?)
///         .build()?,
/// )?;
/// let m = catalog.message("FC", 3)?;
/// assert_eq!(m.name(), "WiperStatus");
/// assert_eq!(catalog.num_signals(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Catalog {
    messages: Vec<MessageSpec>,
    #[serde(skip)]
    index: HashMap<(String, u32), usize>,
    #[serde(skip)]
    signal_index: HashMap<String, (usize, usize)>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Adds a message definition.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when `(bus, id)` is already defined or
    /// a signal name is already used by another message (the paper treats
    /// `s_id` as globally unique).
    pub fn add_message(&mut self, message: MessageSpec) -> Result<()> {
        let key = (message.bus().to_string(), message.id());
        if self.index.contains_key(&key) {
            return Err(Error::InvalidSpec(format!(
                "message {} already defined on channel {}",
                message.id(),
                message.bus()
            )));
        }
        for s in message.signals() {
            if self.signal_index.contains_key(s.name()) {
                return Err(Error::InvalidSpec(format!(
                    "signal {} already defined elsewhere in the catalog",
                    s.name()
                )));
            }
        }
        let mi = self.messages.len();
        for (si, s) in message.signals().iter().enumerate() {
            self.signal_index.insert(s.name().to_string(), (mi, si));
        }
        self.index.insert(key, mi);
        self.messages.push(message);
        Ok(())
    }

    /// Rebuilds the lookup indexes (needed after deserialization).
    pub fn rebuild_index(&mut self) {
        self.index.clear();
        self.signal_index.clear();
        for (mi, m) in self.messages.iter().enumerate() {
            self.index.insert((m.bus().to_string(), m.id()), mi);
            for (si, s) in m.signals().iter().enumerate() {
                self.signal_index.insert(s.name().to_string(), (mi, si));
            }
        }
    }

    /// All message definitions.
    pub fn messages(&self) -> &[MessageSpec] {
        &self.messages
    }

    /// Number of messages.
    pub fn num_messages(&self) -> usize {
        self.messages.len()
    }

    /// Total number of signal types (the alphabet Σ).
    pub fn num_signals(&self) -> usize {
        self.signal_index.len()
    }

    /// Looks up a message by channel and id.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMessage`] when absent.
    pub fn message(&self, bus: &str, id: u32) -> Result<&MessageSpec> {
        self.index
            .get(&(bus.to_string(), id))
            .map(|&i| &self.messages[i])
            .ok_or_else(|| Error::UnknownMessage {
                bus: bus.to_string(),
                message_id: id,
            })
    }

    /// Looks up a signal and its carrying message by signal name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownSignal`] when absent.
    pub fn signal(&self, name: &str) -> Result<(&MessageSpec, &SignalSpec)> {
        self.signal_index
            .get(name)
            .map(|&(mi, si)| (&self.messages[mi], &self.messages[mi].signals()[si]))
            .ok_or_else(|| Error::UnknownSignal(name.to_string()))
    }

    /// Iterates over `(message, signal)` pairs for every signal type.
    pub fn iter_signals(&self) -> impl Iterator<Item = (&MessageSpec, &SignalSpec)> {
        self.messages
            .iter()
            .flat_map(|m| m.signals().iter().map(move |s| (m, s)))
    }

    /// Decodes all signals of a raw payload received as `(bus, id)`.
    ///
    /// This is the sequential "interpret everything on ingest" primitive
    /// that monitoring tools (and the baseline comparator) use.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownMessage`] for unknown `(bus, id)` and
    /// propagates decode failures.
    pub fn decode_payload(
        &self,
        bus: &str,
        id: u32,
        payload: &[u8],
    ) -> Result<Vec<(String, PhysicalValue)>> {
        self.message(bus, id)?.decode_all(payload)
    }

    /// All distinct channel identifiers.
    pub fn buses(&self) -> Vec<&str> {
        let mut buses: Vec<&str> = self.messages.iter().map(MessageSpec::bus).collect();
        buses.sort_unstable();
        buses.dedup();
        buses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Protocol;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.add_message(
            MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
                .dlc(4)
                .signal(
                    SignalSpec::builder("wpos", 0, 16)
                        .factor(0.5)
                        .build()
                        .unwrap(),
                )
                .signal(SignalSpec::builder("wvel", 16, 16).build().unwrap())
                .build()
                .unwrap(),
        )
        .unwrap();
        c.add_message(
            MessageSpec::builder(11, "WiperType", "K-LIN", Protocol::Lin)
                .dlc(1)
                .signal(
                    SignalSpec::builder("wtype", 0, 8)
                        .offset(2.0)
                        .build()
                        .unwrap(),
                )
                .build()
                .unwrap(),
        )
        .unwrap();
        c
    }

    #[test]
    fn lookup_by_bus_and_id() {
        let c = catalog();
        assert_eq!(c.message("FC", 3).unwrap().name(), "WiperStatus");
        assert!(matches!(
            c.message("FC", 99),
            Err(Error::UnknownMessage { .. })
        ));
        assert!(matches!(
            c.message("XX", 3),
            Err(Error::UnknownMessage { .. })
        ));
    }

    #[test]
    fn signal_lookup_spans_messages() {
        let c = catalog();
        let (m, s) = c.signal("wtype").unwrap();
        assert_eq!(m.bus(), "K-LIN");
        assert_eq!(s.offset(), 2.0);
        assert!(c.signal("nope").is_err());
        assert_eq!(c.num_signals(), 3);
    }

    #[test]
    fn duplicate_message_and_signal_rejected() {
        let mut c = catalog();
        let dup = MessageSpec::builder(3, "Other", "FC", Protocol::Can)
            .build()
            .unwrap();
        assert!(c.add_message(dup).is_err());
        let dup_sig = MessageSpec::builder(50, "Other", "FC", Protocol::Can)
            .signal(SignalSpec::builder("wpos", 0, 8).build().unwrap())
            .build()
            .unwrap();
        assert!(c.add_message(dup_sig).is_err());
    }

    #[test]
    fn decode_payload_full_message() {
        let c = catalog();
        let decoded = c
            .decode_payload("FC", 3, &[0x5A, 0x00, 0x01, 0x00])
            .unwrap();
        assert_eq!(decoded.len(), 2);
        assert_eq!(decoded[0].1, PhysicalValue::Num(45.0));
    }

    #[test]
    fn buses_sorted_unique() {
        let c = catalog();
        assert_eq!(c.buses(), vec!["FC", "K-LIN"]);
    }

    #[test]
    fn rebuild_index_after_manual_construction() {
        let c0 = catalog();
        let mut c = Catalog {
            messages: c0.messages.clone(),
            index: HashMap::new(),
            signal_index: HashMap::new(),
        };
        assert!(c.message("FC", 3).is_err());
        c.rebuild_index();
        assert!(c.message("FC", 3).is_ok());
        assert_eq!(c.num_signals(), 3);
    }
}
