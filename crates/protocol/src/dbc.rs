//! DBC import/export — the industry-standard communication-matrix format.
//!
//! The paper's interpretation rules are "generated from documentation";
//! in practice that documentation is a Vector DBC file. This module parses
//! the widely used subset into a [`Catalog`] and serializes a catalog back
//! out, so real communication matrices can parameterize the pipeline.
//!
//! Supported statements:
//!
//! * `VERSION "..."`, `BU_:` (node list, kept as metadata)
//! * `BO_ <id> <name>: <dlc> <sender>` — message definition
//! * `SG_ <name> : <start>|<len>@<order><sign> (<factor>,<offset>)
//!   [<min>|<max>] "<unit>" <receivers>` — signal definition
//!   (`@1` = Intel/little endian, `@0` = Motorola/big endian;
//!   `+` unsigned, `-` signed)
//! * `VAL_ <msg id> <signal> <raw> "<label>" ... ;` — enumerations
//! * `BA_ "GenMsgCycleTime" BO_ <id> <ms>;` — cycle times
//! * `CM_ ...;` comments are skipped
//!
//! Multiplexed signals (`m0`/`M` indicators) are not supported and produce
//! a clear error naming the line.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::bits::ByteOrder;
use crate::catalog::Catalog;
use crate::error::{Error, Result};
use crate::message::{MessageSpec, Protocol};
use crate::signal::{RawKind, SignalSpec};

/// A parse failure with its 1-based line number.
fn parse_err(line_no: usize, msg: impl std::fmt::Display) -> Error {
    Error::InvalidSpec(format!("dbc line {line_no}: {msg}"))
}

/// Multiplexing role parsed from the DBC `m<k>`/`M` indicator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MuxRole {
    /// Plain signal, always present.
    None,
    /// The multiplexor (selector) signal.
    Multiplexor,
    /// Present only when the multiplexor carries this raw value.
    Multiplexed(u64),
}

/// One multiplexed signal extracted by [`parse_dbc_extended`]: it is *not*
/// part of the catalog message (its bytes are only valid on its page) and
/// must be extracted with a presence-conditional rule.
#[derive(Debug, Clone)]
pub struct MuxEntry {
    /// Message the signal occurs in.
    pub message_id: u32,
    /// Decode spec of the multiplexor signal (payload-relative).
    pub selector: SignalSpec,
    /// Raw multiplexor value gating this signal.
    pub selector_value: u64,
    /// The multiplexed signal's spec (payload-relative).
    pub signal: SignalSpec,
}

#[derive(Debug, Clone)]
struct PendingSignal {
    mux: MuxRole,
    name: String,
    start_bit: u16,
    bit_len: u16,
    byte_order: ByteOrder,
    raw_kind: RawKind,
    factor: f64,
    offset: f64,
    min: f64,
    max: f64,
    unit: Option<String>,
}

#[derive(Debug, Clone)]
struct PendingMessage {
    id: u32,
    name: String,
    dlc: usize,
    signals: Vec<PendingSignal>,
}

/// Parses DBC text into a [`Catalog`], assigning every message to channel
/// `bus` (DBC files describe one bus each).
///
/// # Errors
///
/// Returns [`Error::InvalidSpec`] with the offending line number for
/// malformed statements, unsupported multiplexing, or inconsistent specs
/// (duplicate ids, out-of-payload signals, ...).
///
/// # Examples
///
/// ```
/// use ivnt_protocol::dbc;
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// let text = r#"
/// BO_ 3 WiperStatus: 4 WiperEcu
///  SG_ wpos : 0|16@1+ (0.5,0) [0|180] "deg" Receiver
///  SG_ wvel : 16|16@1+ (1,0) [0|10] "rad/min" Receiver
/// "#;
/// let catalog = dbc::parse_dbc(text, "FC")?;
/// assert_eq!(catalog.message("FC", 3)?.signals().len(), 2);
/// # Ok(())
/// # }
/// ```
pub fn parse_dbc(text: &str, bus: &str) -> Result<Catalog> {
    let (catalog, mux) = parse_dbc_extended(text, bus)?;
    if let Some(entry) = mux.first() {
        return Err(Error::InvalidSpec(format!(
            "message {} carries multiplexed signal {}; use parse_dbc_extended",
            entry.message_id,
            entry.signal.name()
        )));
    }
    Ok(catalog)
}

/// Like [`parse_dbc`], but supports multiplexed signals: the catalog holds
/// each message's always-present signals (including the multiplexor), and
/// every `m<k>`-multiplexed signal is returned as a [`MuxEntry`] for
/// presence-conditional extraction.
///
/// # Errors
///
/// Same conditions as [`parse_dbc`], plus a clear error when a multiplexed
/// signal appears in a message without a multiplexor.
pub fn parse_dbc_extended(text: &str, bus: &str) -> Result<(Catalog, Vec<MuxEntry>)> {
    let mut messages: Vec<PendingMessage> = Vec::new();
    let mut enums: HashMap<(u32, String), Vec<(u64, String)>> = HashMap::new();
    let mut cycle_times: HashMap<u32, u32> = HashMap::new();

    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("BO_ ") {
            messages.push(parse_bo(rest, line_no)?);
        } else if let Some(rest) = line.strip_prefix("SG_ ") {
            let msg = messages
                .last_mut()
                .ok_or_else(|| parse_err(line_no, "SG_ before any BO_"))?;
            msg.signals.push(parse_sg(rest, line_no)?);
        } else if let Some(rest) = line.strip_prefix("VAL_ ") {
            let (key, labels) = parse_val(rest, line_no)?;
            enums.insert(key, labels);
        } else if let Some(rest) = line.strip_prefix("BA_ ") {
            if let Some((id, ms)) = parse_cycle_time(rest) {
                cycle_times.insert(id, ms);
            }
        }
        // VERSION, BU_, CM_, BA_DEF_, NS_ etc. carry no catalog content.
    }

    let mut catalog = Catalog::new();
    let mut mux_entries: Vec<MuxEntry> = Vec::new();
    for pending in messages {
        let mut builder =
            MessageSpec::builder(pending.id, &pending.name, bus, Protocol::Can).dlc(pending.dlc);
        if let Some(&ms) = cycle_times.get(&pending.id) {
            builder = builder.cycle_time_ms(ms);
        }
        let build_spec = |s: &PendingSignal| -> Result<SignalSpec> {
            let mut sig = SignalSpec::builder(&s.name, s.start_bit, s.bit_len)
                .byte_order(s.byte_order)
                .raw_kind(s.raw_kind)
                .factor(s.factor)
                .offset(s.offset);
            if s.min != 0.0 || s.max != 0.0 {
                sig = sig.min(s.min).max(s.max);
            }
            if let Some(unit) = &s.unit {
                if !unit.is_empty() {
                    sig = sig.unit(unit.clone());
                }
            }
            if let Some(labels) = enums.get(&(pending.id, s.name.clone())) {
                for (raw, label) in labels {
                    sig = sig.label(*raw, label.clone());
                }
            }
            sig.build()
        };
        let selector = pending
            .signals
            .iter()
            .find(|s| s.mux == MuxRole::Multiplexor)
            .map(build_spec)
            .transpose()?;
        for s in &pending.signals {
            match s.mux {
                MuxRole::None | MuxRole::Multiplexor => {
                    builder = builder.signal(build_spec(s)?);
                }
                MuxRole::Multiplexed(value) => {
                    let selector = selector.clone().ok_or_else(|| {
                        Error::InvalidSpec(format!(
                            "message {} has multiplexed signal {} but no multiplexor",
                            pending.id, s.name
                        ))
                    })?;
                    mux_entries.push(MuxEntry {
                        message_id: pending.id,
                        selector,
                        selector_value: value,
                        signal: build_spec(s)?,
                    });
                }
            }
        }
        catalog.add_message(builder.build()?)?;
    }
    Ok((catalog, mux_entries))
}

fn parse_bo(rest: &str, line_no: usize) -> Result<PendingMessage> {
    // "<id> <name>: <dlc> <sender>"
    let mut parts = rest.split_whitespace();
    let id: u32 = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(line_no, "BO_ needs a numeric id"))?;
    let name = parts
        .next()
        .and_then(|t| t.strip_suffix(':'))
        .map(str::to_string)
        .ok_or_else(|| parse_err(line_no, "BO_ needs '<name>:'"))?;
    let dlc: usize = parts
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(line_no, "BO_ needs a numeric dlc"))?;
    Ok(PendingMessage {
        id,
        name,
        dlc,
        signals: Vec::new(),
    })
}

fn parse_sg(rest: &str, line_no: usize) -> Result<PendingSignal> {
    // "<name> : <start>|<len>@<order><sign> (<f>,<o>) [<min>|<max>] "unit" recv"
    let (name_part, spec_part) = rest
        .split_once(':')
        .ok_or_else(|| parse_err(line_no, "SG_ needs ':'"))?;
    let mut name_tokens = name_part.split_whitespace();
    let name = name_tokens
        .next()
        .ok_or_else(|| parse_err(line_no, "SG_ needs a name"))?
        .to_string();
    let mux = match name_tokens.next() {
        None => MuxRole::None,
        Some("M") => MuxRole::Multiplexor,
        Some(tok) => {
            let value: u64 = tok
                .strip_prefix('m')
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| parse_err(line_no, format!("bad multiplex indicator '{tok}'")))?;
            MuxRole::Multiplexed(value)
        }
    };

    let spec = spec_part.trim();
    // <start>|<len>@<order><sign>
    let (packing, rest2) = spec
        .split_once(' ')
        .ok_or_else(|| parse_err(line_no, "SG_ needs packing and coding"))?;
    let (start_str, rest3) = packing
        .split_once('|')
        .ok_or_else(|| parse_err(line_no, "packing needs '<start>|<len>'"))?;
    let (len_str, order_sign) = rest3
        .split_once('@')
        .ok_or_else(|| parse_err(line_no, "packing needs '@<order><sign>'"))?;
    let start_bit: u16 = start_str
        .parse()
        .map_err(|_| parse_err(line_no, "bad start bit"))?;
    let bit_len: u16 = len_str
        .parse()
        .map_err(|_| parse_err(line_no, "bad bit length"))?;
    let mut chars = order_sign.chars();
    let byte_order = match chars.next() {
        Some('1') => ByteOrder::Intel,
        Some('0') => ByteOrder::Motorola,
        other => return Err(parse_err(line_no, format!("bad byte order {other:?}"))),
    };
    let raw_kind = match chars.next() {
        Some('+') => RawKind::Unsigned,
        Some('-') => RawKind::Signed,
        other => return Err(parse_err(line_no, format!("bad sign {other:?}"))),
    };

    // (<factor>,<offset>)
    let rest2 = rest2.trim();
    let (coding, rest4) = rest2
        .split_once(')')
        .ok_or_else(|| parse_err(line_no, "SG_ needs '(factor,offset)'"))?;
    let coding = coding
        .strip_prefix('(')
        .ok_or_else(|| parse_err(line_no, "coding must start with '('"))?;
    let (f_str, o_str) = coding
        .split_once(',')
        .ok_or_else(|| parse_err(line_no, "coding needs ','"))?;
    let factor: f64 = f_str
        .trim()
        .parse()
        .map_err(|_| parse_err(line_no, "bad factor"))?;
    let offset: f64 = o_str
        .trim()
        .parse()
        .map_err(|_| parse_err(line_no, "bad offset"))?;

    // [<min>|<max>]
    let rest4 = rest4.trim();
    let (range, rest5) = rest4
        .split_once(']')
        .ok_or_else(|| parse_err(line_no, "SG_ needs '[min|max]'"))?;
    let range = range
        .strip_prefix('[')
        .ok_or_else(|| parse_err(line_no, "range must start with '['"))?;
    let (min_str, max_str) = range
        .split_once('|')
        .ok_or_else(|| parse_err(line_no, "range needs '|'"))?;
    let min: f64 = min_str
        .trim()
        .parse()
        .map_err(|_| parse_err(line_no, "bad min"))?;
    let max: f64 = max_str
        .trim()
        .parse()
        .map_err(|_| parse_err(line_no, "bad max"))?;

    // "<unit>"
    let rest5 = rest5.trim();
    let unit = rest5
        .strip_prefix('"')
        .and_then(|s| s.split_once('"'))
        .map(|(u, _)| u.to_string());

    Ok(PendingSignal {
        mux,
        name,
        start_bit,
        bit_len,
        byte_order,
        raw_kind,
        factor,
        offset,
        min,
        max,
        unit,
    })
}

/// Enumeration labels for one `(message id, signal)` pair.
type ValEntry = ((u32, String), Vec<(u64, String)>);

fn parse_val(rest: &str, line_no: usize) -> Result<ValEntry> {
    // "<msg id> <signal> <raw> \"label\" <raw> \"label\" ... ;"
    let rest = rest.trim_end_matches(';').trim();
    let mut tokens = rest.splitn(3, ' ');
    let id: u32 = tokens
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| parse_err(line_no, "VAL_ needs a message id"))?;
    let signal = tokens
        .next()
        .ok_or_else(|| parse_err(line_no, "VAL_ needs a signal name"))?
        .to_string();
    let mut labels = Vec::new();
    let mut remainder = tokens.next().unwrap_or("").trim();
    while !remainder.is_empty() {
        let (raw_str, after) = remainder
            .split_once(' ')
            .ok_or_else(|| parse_err(line_no, "VAL_ entries are '<raw> \"label\"' pairs"))?;
        let raw: u64 = raw_str
            .parse()
            .map_err(|_| parse_err(line_no, "bad VAL_ raw value"))?;
        let after = after.trim_start();
        let after = after
            .strip_prefix('"')
            .ok_or_else(|| parse_err(line_no, "VAL_ label must be quoted"))?;
        let (label, rest2) = after
            .split_once('"')
            .ok_or_else(|| parse_err(line_no, "VAL_ label missing closing quote"))?;
        labels.push((raw, label.to_string()));
        remainder = rest2.trim();
    }
    if labels.is_empty() {
        return Err(parse_err(line_no, "VAL_ without any labels"));
    }
    Ok(((id, signal), labels))
}

fn parse_cycle_time(rest: &str) -> Option<(u32, u32)> {
    // "\"GenMsgCycleTime\" BO_ <id> <ms>;"
    let rest = rest.trim();
    let rest = rest.strip_prefix("\"GenMsgCycleTime\"")?.trim();
    let rest = rest.strip_prefix("BO_")?.trim();
    let rest = rest.trim_end_matches(';');
    let mut parts = rest.split_whitespace();
    let id: u32 = parts.next()?.parse().ok()?;
    let ms: u32 = parts.next()?.parse().ok()?;
    Some((id, ms))
}

/// Serializes the catalog's messages on channel `bus` as DBC text.
///
/// Round-trips with [`parse_dbc`] for the supported subset. Messages on
/// other channels are skipped (a DBC file describes one bus).
pub fn to_dbc(catalog: &Catalog, bus: &str) -> String {
    let mut out = String::from("VERSION \"ivnt export\"\n\nBU_: IVNT\n\n");
    for m in catalog.messages().iter().filter(|m| m.bus() == bus) {
        let _ = writeln!(out, "BO_ {} {}: {} IVNT", m.id(), m.name(), m.dlc());
        for s in m.signals() {
            let order = match s.byte_order() {
                ByteOrder::Intel => '1',
                ByteOrder::Motorola => '0',
            };
            let sign = match s.raw_kind() {
                RawKind::Unsigned => '+',
                RawKind::Signed => '-',
            };
            let _ = writeln!(
                out,
                " SG_ {} : {}|{}@{}{} ({},{}) [0|0] \"{}\" IVNT",
                s.name(),
                s.start_bit(),
                s.bit_len(),
                order,
                sign,
                s.factor(),
                s.offset(),
                s.unit().unwrap_or(""),
            );
        }
        out.push('\n');
    }
    for m in catalog.messages().iter().filter(|m| m.bus() == bus) {
        if let Some(ms) = m.cycle_time_ms() {
            let _ = writeln!(out, "BA_ \"GenMsgCycleTime\" BO_ {} {};", m.id(), ms);
        }
        for s in m.signals() {
            if s.is_enumerated() {
                let mut line = format!("VAL_ {} {}", m.id(), s.name());
                for (raw, label) in s.enumeration() {
                    let _ = write!(line, " {raw} \"{label}\"");
                }
                line.push_str(" ;");
                let _ = writeln!(out, "{line}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
VERSION "test matrix"

BU_: WiperEcu BodyEcu

BO_ 3 WiperStatus: 4 WiperEcu
 SG_ wpos : 0|16@1+ (0.5,0) [0|180] "deg" BodyEcu
 SG_ wvel : 16|16@1+ (1,0) [0|10] "rad/min" BodyEcu

BO_ 120 CarState: 2 BodyEcu
 SG_ state : 0|2@1+ (1,0) [0|2] "" WiperEcu
 SG_ temp : 15|8@0- (0.5,-40) [-40|87.5] "C" WiperEcu

CM_ SG_ 3 wpos "wiper position";
BA_ "GenMsgCycleTime" BO_ 3 100;
VAL_ 120 state 0 "parking" 1 "standby" 2 "driving" ;
"#;

    #[test]
    fn parses_messages_and_signals() {
        let catalog = parse_dbc(SAMPLE, "FC").unwrap();
        assert_eq!(catalog.num_messages(), 2);
        let wiper = catalog.message("FC", 3).unwrap();
        assert_eq!(wiper.name(), "WiperStatus");
        assert_eq!(wiper.dlc(), 4);
        assert_eq!(wiper.cycle_time_ms(), Some(100));
        let wpos = wiper.signal("wpos").unwrap();
        assert_eq!(wpos.factor(), 0.5);
        assert_eq!(wpos.unit(), Some("deg"));
        assert_eq!(wpos.bit_len(), 16);
    }

    #[test]
    fn parses_motorola_signed() {
        let catalog = parse_dbc(SAMPLE, "FC").unwrap();
        let temp = catalog.message("FC", 120).unwrap().signal("temp").unwrap();
        assert_eq!(temp.byte_order(), ByteOrder::Motorola);
        assert_eq!(temp.raw_kind(), RawKind::Signed);
        assert_eq!(temp.offset(), -40.0);
    }

    #[test]
    fn parses_enumerations() {
        let catalog = parse_dbc(SAMPLE, "FC").unwrap();
        let state = catalog.message("FC", 120).unwrap().signal("state").unwrap();
        assert!(state.is_enumerated());
        assert_eq!(state.enumeration().get(&2), Some(&"driving".to_string()));
    }

    #[test]
    fn decoded_values_match_spec() {
        let catalog = parse_dbc(SAMPLE, "FC").unwrap();
        let wpos = catalog.message("FC", 3).unwrap().signal("wpos").unwrap();
        assert_eq!(
            wpos.decode(&[0x5A, 0x00, 0x00, 0x00]).unwrap().as_num(),
            Some(45.0)
        );
    }

    #[test]
    fn plain_parse_rejects_multiplexing_with_hint() {
        let text = "BO_ 1 Msg: 8 E\n SG_ page M : 0|8@1+ (1,0) [0|255] \"\" R\n SG_ sig m0 : 8|8@1+ (1,0) [0|255] \"\" R\n";
        let err = parse_dbc(text, "B").unwrap_err();
        assert!(err.to_string().contains("parse_dbc_extended"), "{err}");
    }

    #[test]
    fn extended_parse_returns_mux_entries() {
        let text = "BO_ 1 Msg: 8 E\n SG_ page M : 0|8@1+ (1,0) [0|255] \"\" R\n SG_ oil m0 : 8|16@1+ (0.1,-40) [0|100] \"C\" R\n SG_ cool m1 : 8|16@1+ (0.1,-40) [0|100] \"C\" R\n";
        let (catalog, mux) = parse_dbc_extended(text, "B").unwrap();
        // The catalog holds the multiplexor only.
        assert_eq!(catalog.message("B", 1).unwrap().signals().len(), 1);
        assert_eq!(mux.len(), 2);
        assert_eq!(mux[0].selector.name(), "page");
        assert_eq!(mux[0].selector_value, 0);
        assert_eq!(mux[0].signal.name(), "oil");
        assert_eq!(mux[1].selector_value, 1);
        assert_eq!(mux[1].signal.factor(), 0.1);
    }

    #[test]
    fn multiplexed_without_multiplexor_rejected() {
        let text = "BO_ 1 Msg: 8 E\n SG_ sig m0 : 8|8@1+ (1,0) [0|255] \"\" R\n";
        let err = parse_dbc_extended(text, "B").unwrap_err();
        assert!(err.to_string().contains("no multiplexor"), "{err}");
    }

    #[test]
    fn bad_mux_indicator_reports_line() {
        let text = "BO_ 1 Msg: 8 E\n SG_ sig xyz : 8|8@1+ (1,0) [0|255] \"\" R\n";
        let err = parse_dbc_extended(text, "B").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn malformed_lines_report_position() {
        for (text, needle) in [
            ("BO_ x Name: 8 E", "numeric id"),
            ("BO_ 1 Name 8 E", "'<name>:'"),
            (
                "BO_ 1 N: 8 E\n SG_ s : 0|8@2+ (1,0) [0|1] \"\" R",
                "byte order",
            ),
            (" SG_ s : 0|8@1+ (1,0) [0|1] \"\" R", "SG_ before any BO_"),
            ("VAL_ 1 s ;", "without any labels"),
        ] {
            let err = parse_dbc(text, "B").unwrap_err();
            assert!(
                err.to_string().contains(needle),
                "expected {needle:?} in {err}"
            );
        }
    }

    #[test]
    fn export_roundtrips() {
        let catalog = parse_dbc(SAMPLE, "FC").unwrap();
        let text = to_dbc(&catalog, "FC");
        let reparsed = parse_dbc(&text, "FC").unwrap();
        assert_eq!(reparsed.num_messages(), catalog.num_messages());
        for m in catalog.messages() {
            let rm = reparsed.message("FC", m.id()).unwrap();
            assert_eq!(rm.dlc(), m.dlc());
            assert_eq!(rm.cycle_time_ms(), m.cycle_time_ms());
            assert_eq!(rm.signals().len(), m.signals().len());
            for (a, b) in m.signals().iter().zip(rm.signals()) {
                assert_eq!(a.name(), b.name());
                assert_eq!(a.start_bit(), b.start_bit());
                assert_eq!(a.bit_len(), b.bit_len());
                assert_eq!(a.byte_order(), b.byte_order());
                assert_eq!(a.factor(), b.factor());
                assert_eq!(a.enumeration(), b.enumeration());
            }
        }
    }

    #[test]
    fn other_buses_excluded_from_export() {
        let mut catalog = parse_dbc(SAMPLE, "FC").unwrap();
        catalog
            .add_message(
                MessageSpec::builder(9, "Other", "LIN", Protocol::Lin)
                    .dlc(1)
                    .signal(SignalSpec::builder("x", 0, 8).build().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let text = to_dbc(&catalog, "FC");
        assert!(!text.contains("Other"));
    }

    #[test]
    fn signal_out_of_payload_rejected() {
        let text = "BO_ 1 N: 1 E\n SG_ s : 0|16@1+ (1,0) [0|1] \"\" R";
        assert!(parse_dbc(text, "B").is_err());
    }
}
