//! Error type for protocol encoding/decoding.

use std::fmt;

/// Result alias used throughout [`ivnt_protocol`](crate).
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by frame and signal codecs.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A signal's bit range does not fit into the payload.
    BitRangeOutOfBounds {
        /// Start bit of the offending range.
        start_bit: u16,
        /// Bit length of the offending range.
        bit_len: u16,
        /// Payload size in bytes.
        payload_len: usize,
    },
    /// A bit length outside `1..=64`.
    InvalidBitLength(u16),
    /// A physical value cannot be represented by the signal's raw coding.
    ValueOutOfRange {
        /// Signal name.
        signal: String,
        /// Offending physical value.
        value: f64,
    },
    /// A raw value has no label in the signal's enumeration.
    UnknownEnumValue {
        /// Signal name.
        signal: String,
        /// Raw value without a label.
        raw: u64,
    },
    /// A label is not part of the signal's enumeration.
    UnknownEnumLabel {
        /// Signal name.
        signal: String,
        /// Unmatched label.
        label: String,
    },
    /// A payload is shorter than the protocol header requires.
    TruncatedFrame {
        /// Expected minimum size in bytes.
        expected: usize,
        /// Actual size in bytes.
        actual: usize,
    },
    /// A checksum did not verify (LIN).
    ChecksumMismatch {
        /// Checksum carried by the frame.
        stored: u8,
        /// Checksum recomputed from the data.
        computed: u8,
    },
    /// Catalog lookup failed.
    UnknownMessage {
        /// Channel identifier.
        bus: String,
        /// Message identifier.
        message_id: u32,
    },
    /// Signal lookup failed.
    UnknownSignal(String),
    /// Specification-level inconsistency (duplicate ids, overlapping bits...).
    InvalidSpec(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::BitRangeOutOfBounds {
                start_bit,
                bit_len,
                payload_len,
            } => write!(
                f,
                "bit range start={start_bit} len={bit_len} exceeds {payload_len}-byte payload"
            ),
            Error::InvalidBitLength(n) => write!(f, "bit length {n} outside 1..=64"),
            Error::ValueOutOfRange { signal, value } => {
                write!(f, "value {value} out of range for signal {signal}")
            }
            Error::UnknownEnumValue { signal, raw } => {
                write!(f, "raw value {raw} has no label for signal {signal}")
            }
            Error::UnknownEnumLabel { signal, label } => {
                write!(f, "label {label} unknown for signal {signal}")
            }
            Error::TruncatedFrame { expected, actual } => {
                write!(f, "frame truncated: need {expected} bytes, got {actual}")
            }
            Error::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "checksum mismatch: stored {stored:#04x}, computed {computed:#04x}"
                )
            }
            Error::UnknownMessage { bus, message_id } => {
                write!(f, "no message {message_id} on channel {bus}")
            }
            Error::UnknownSignal(name) => write!(f, "unknown signal: {name}"),
            Error::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = Error::InvalidBitLength(0);
        assert_eq!(e.to_string(), "bit length 0 outside 1..=64");
    }

    #[test]
    fn send_sync() {
        fn check<T: Send + Sync>() {}
        check::<Error>();
    }
}
