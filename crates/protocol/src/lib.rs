//! # ivnt-protocol — in-vehicle network protocol model
//!
//! Frame structures and bit-level signal codecs for the three protocol
//! families the DAC'18 paper extracts signals from: **CAN**, **LIN** and
//! **SOME/IP**. A [`Catalog`] plays the role of the
//! vehicle's communication documentation (a DBC database): it defines every
//! message type `m = (S, m_id, b_id)` and every signal type `s_id` with its
//! packing geometry and physical coding.
//!
//! * [`bits`] — raw bit-field extraction/insertion (Intel and Motorola
//!   start-bit conventions),
//! * [`signal`] — [`SignalSpec`]: packing + linear
//!   coding + enumerations, decoding to
//!   [`PhysicalValue`],
//! * [`message`] — [`MessageSpec`]: the signal set
//!   carried by a message type,
//! * [`can`] / [`lin`] / [`someip`] — frame codecs, including SOME/IP
//!   presence-conditional optional fields,
//! * [`catalog`] — the per-vehicle message/signal database.
//!
//! # Examples
//!
//! ```
//! use ivnt_protocol::prelude::*;
//!
//! # fn main() -> ivnt_protocol::Result<()> {
//! // The paper's running example: wiper position packed with v = 0.5 * l'.
//! let wpos = SignalSpec::builder("wpos", 0, 16).factor(0.5).unit("deg").build()?;
//! let mut payload = [0u8; 4];
//! wpos.encode(&mut payload, &PhysicalValue::Num(45.0))?;
//! assert_eq!(payload[0], 0x5A);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod bits;
pub mod can;
pub mod catalog;
pub mod dbc;
pub mod error;
pub mod lin;
pub mod message;
pub mod signal;
pub mod someip;

pub use bits::ByteOrder;
pub use can::{CanFdFrame, CanFrame, CanId};
pub use catalog::Catalog;
pub use error::{Error, Result};
pub use lin::LinFrame;
pub use message::{MessageSpec, Protocol};
pub use signal::{PhysicalValue, RawKind, SignalSpec};
pub use someip::{OptionalFieldLayout, SomeIpMessage};

/// Convenient glob import of the protocol model's common types.
pub mod prelude {
    pub use crate::bits::ByteOrder;
    pub use crate::can::{CanFdFrame, CanFrame, CanId};
    pub use crate::catalog::Catalog;
    pub use crate::lin::LinFrame;
    pub use crate::message::{MessageSpec, Protocol};
    pub use crate::signal::{PhysicalValue, RawKind, SignalSpec};
    pub use crate::someip::{OptionalFieldLayout, SomeIpMessage};
}
