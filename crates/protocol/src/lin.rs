//! LIN frames (the paper's `K-LIN` channel).

use bytes::Bytes;

use crate::error::{Error, Result};

/// A LIN frame: protected identifier, up to 8 data bytes, checksum.
///
/// The checksum follows LIN 2.x "enhanced" semantics: the inverted modulo-256
/// carry sum over the protected id and all data bytes.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::lin::LinFrame;
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// let frame = LinFrame::new(0x11, &[0x03])?;
/// assert!(frame.verify_checksum());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinFrame {
    pid: u8,
    data: Bytes,
    checksum: u8,
}

/// Computes the LIN 2.x enhanced checksum over pid and data.
pub fn checksum(pid: u8, data: &[u8]) -> u8 {
    let mut sum: u16 = pid as u16;
    for &b in data {
        sum += b as u16;
        if sum >= 256 {
            sum -= 255;
        }
    }
    !(sum as u8)
}

impl LinFrame {
    /// Creates a frame, computing its checksum.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when the identifier exceeds 6 bits or
    /// the payload exceeds 8 bytes.
    pub fn new(id: u8, data: &[u8]) -> Result<LinFrame> {
        if id > 0x3F {
            return Err(Error::InvalidSpec(format!("LIN id {id:#x} exceeds 6 bits")));
        }
        if data.len() > 8 {
            return Err(Error::InvalidSpec(format!(
                "LIN payload limited to 8 bytes, got {}",
                data.len()
            )));
        }
        let pid = protected_id(id);
        Ok(LinFrame {
            pid,
            data: Bytes::copy_from_slice(data),
            checksum: checksum(pid, data),
        })
    }

    /// The 6-bit frame identifier (parity bits stripped).
    pub fn id(&self) -> u8 {
        self.pid & 0x3F
    }

    /// The protected identifier (id plus parity bits).
    pub fn pid(&self) -> u8 {
        self.pid
    }

    /// The payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// The carried checksum.
    pub fn checksum(&self) -> u8 {
        self.checksum
    }

    /// Recomputes and compares the checksum.
    pub fn verify_checksum(&self) -> bool {
        checksum(self.pid, &self.data) == self.checksum
    }

    /// Serializes to `pid(1) | len(1) | data | checksum(1)`.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(3 + self.data.len());
        out.push(self.pid);
        out.push(self.data.len() as u8);
        out.extend_from_slice(&self.data);
        out.push(self.checksum);
        out
    }

    /// Parses the wire format of [`LinFrame::to_wire`], verifying parity and
    /// checksum.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TruncatedFrame`] for short input,
    /// [`Error::ChecksumMismatch`] when the checksum does not verify, and
    /// [`Error::InvalidSpec`] for bad parity.
    pub fn from_wire(wire: &[u8]) -> Result<LinFrame> {
        if wire.len() < 3 {
            return Err(Error::TruncatedFrame {
                expected: 3,
                actual: wire.len(),
            });
        }
        let pid = wire[0];
        if protected_id(pid & 0x3F) != pid {
            return Err(Error::InvalidSpec(format!(
                "LIN pid {pid:#04x} fails parity check"
            )));
        }
        let len = wire[1] as usize;
        if wire.len() < 3 + len {
            return Err(Error::TruncatedFrame {
                expected: 3 + len,
                actual: wire.len(),
            });
        }
        let data = &wire[2..2 + len];
        let stored = wire[2 + len];
        let computed = checksum(pid, data);
        if stored != computed {
            return Err(Error::ChecksumMismatch { stored, computed });
        }
        Ok(LinFrame {
            pid,
            data: Bytes::copy_from_slice(data),
            checksum: stored,
        })
    }
}

/// Computes the protected identifier: 6-bit id plus two parity bits
/// (P0 = id0^id1^id2^id4, P1 = !(id1^id3^id4^id5)).
pub fn protected_id(id: u8) -> u8 {
    let bit = |n: u8| (id >> n) & 1;
    let p0 = bit(0) ^ bit(1) ^ bit(2) ^ bit(4);
    let p1 = 1 ^ (bit(1) ^ bit(3) ^ bit(4) ^ bit(5));
    (id & 0x3F) | (p0 << 6) | (p1 << 7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_and_payload_limits() {
        assert!(LinFrame::new(0x3F, &[0; 8]).is_ok());
        assert!(LinFrame::new(0x40, &[]).is_err());
        assert!(LinFrame::new(0, &[0; 9]).is_err());
    }

    #[test]
    fn checksum_verifies() {
        let f = LinFrame::new(0x11, &[0x03, 0x07]).unwrap();
        assert!(f.verify_checksum());
    }

    #[test]
    fn wire_roundtrip() {
        let f = LinFrame::new(0x2A, &[1, 2, 3]).unwrap();
        let parsed = LinFrame::from_wire(&f.to_wire()).unwrap();
        assert_eq!(parsed, f);
        assert_eq!(parsed.id(), 0x2A);
    }

    #[test]
    fn corrupted_checksum_detected() {
        let f = LinFrame::new(0x10, &[9]).unwrap();
        let mut wire = f.to_wire();
        let last = wire.len() - 1;
        wire[last] ^= 0xFF;
        assert!(matches!(
            LinFrame::from_wire(&wire),
            Err(Error::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn corrupted_data_detected() {
        let f = LinFrame::new(0x10, &[9, 8]).unwrap();
        let mut wire = f.to_wire();
        wire[2] ^= 0x01;
        assert!(matches!(
            LinFrame::from_wire(&wire),
            Err(Error::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn parity_checked() {
        let f = LinFrame::new(0x01, &[]).unwrap();
        let mut wire = f.to_wire();
        wire[0] ^= 0x80; // flip P1
        assert!(matches!(
            LinFrame::from_wire(&wire),
            Err(Error::InvalidSpec(_))
        ));
    }

    #[test]
    fn known_parity_vectors() {
        // id 0x00 -> P0=0, P1=1 -> 0x80
        assert_eq!(protected_id(0x00), 0x80);
        // id 0x3F: bits all 1 -> P0 = 1^1^1^1 = 0, P1 = 1^(1^1^1^1) = 1 -> 0xBF
        assert_eq!(protected_id(0x3F), 0xBF);
    }
}
