//! Message specifications: a set of signals sharing one frame.

use serde::{Deserialize, Serialize};

use crate::error::{Error, Result};
use crate::signal::{PhysicalValue, SignalSpec};

/// The protocol family a message travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Controller Area Network (classic, up to 8 data bytes).
    Can,
    /// CAN FD (up to 64 data bytes in discrete DLC lengths).
    CanFd,
    /// Local Interconnect Network (up to 8 data bytes + checksum).
    Lin,
    /// Scalable service-Oriented MiddlewarE over IP (variable payload).
    SomeIp,
}

impl std::fmt::Display for Protocol {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Protocol::Can => "CAN",
            Protocol::CanFd => "CAN FD",
            Protocol::Lin => "LIN",
            Protocol::SomeIp => "SOME/IP",
        };
        f.write_str(s)
    }
}

/// Definition of a message type `m = (S, m_id, b_id)`: its identifier, the
/// channel it occurs on, its payload geometry and the signal set it carries.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::message::{MessageSpec, Protocol};
/// use ivnt_protocol::signal::SignalSpec;
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// // The paper's wiper message: id 3 on FA-CAN, carrying wpos and wvel.
/// let m = MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
///     .dlc(4)
///     .cycle_time_ms(500)
///     .signal(SignalSpec::builder("wpos", 0, 16).factor(0.5).build()?)
///     .signal(SignalSpec::builder("wvel", 16, 16).build()?)
///     .build()?;
/// assert_eq!(m.signals().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MessageSpec {
    id: u32,
    name: String,
    bus: String,
    protocol: Protocol,
    dlc: usize,
    cycle_time_ms: Option<u32>,
    signals: Vec<SignalSpec>,
}

impl MessageSpec {
    /// Starts building a message spec.
    pub fn builder(
        id: u32,
        name: impl Into<String>,
        bus: impl Into<String>,
        protocol: Protocol,
    ) -> MessageSpecBuilder {
        MessageSpecBuilder {
            spec: MessageSpec {
                id,
                name: name.into(),
                bus: bus.into(),
                protocol,
                dlc: 8,
                cycle_time_ms: None,
                signals: Vec::new(),
            },
        }
    }

    /// Message identifier (the paper's `m_id`; the CAN id for CAN).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Human-readable message name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Channel identifier (the paper's `b_id`, e.g. `"FC"` for FA-CAN).
    pub fn bus(&self) -> &str {
        &self.bus
    }

    /// Protocol family.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Payload length in bytes (DLC for CAN/LIN).
    pub fn dlc(&self) -> usize {
        self.dlc
    }

    /// Nominal cycle time, if the message is sent cyclically.
    pub fn cycle_time_ms(&self) -> Option<u32> {
        self.cycle_time_ms
    }

    /// The signal set `S` carried by every instance of this message.
    pub fn signals(&self) -> &[SignalSpec] {
        &self.signals
    }

    /// Looks up a signal by name.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownSignal`] when absent.
    pub fn signal(&self, name: &str) -> Result<&SignalSpec> {
        self.signals
            .iter()
            .find(|s| s.name() == name)
            .ok_or_else(|| Error::UnknownSignal(name.to_string()))
    }

    /// Decodes every signal of the message from `payload`.
    ///
    /// # Errors
    ///
    /// Propagates the first signal decode failure.
    pub fn decode_all(&self, payload: &[u8]) -> Result<Vec<(String, PhysicalValue)>> {
        self.signals
            .iter()
            .map(|s| Ok((s.name().to_string(), s.decode(payload)?)))
            .collect()
    }

    /// Encodes the given `(name, value)` pairs into a fresh payload of
    /// `dlc` bytes; unspecified bits stay zero.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownSignal`] for names outside the signal set and
    /// propagates per-signal encode failures.
    pub fn encode(&self, values: &[(&str, PhysicalValue)]) -> Result<Vec<u8>> {
        let mut payload = vec![0u8; self.dlc];
        for (name, value) in values {
            self.signal(name)?.encode(&mut payload, value)?;
        }
        Ok(payload)
    }
}

/// Builder for [`MessageSpec`].
#[derive(Debug, Clone)]
pub struct MessageSpecBuilder {
    spec: MessageSpec,
}

impl MessageSpecBuilder {
    /// Sets the payload length in bytes (default 8).
    pub fn dlc(mut self, dlc: usize) -> Self {
        self.spec.dlc = dlc;
        self
    }

    /// Declares a nominal cycle time in milliseconds.
    pub fn cycle_time_ms(mut self, ms: u32) -> Self {
        self.spec.cycle_time_ms = Some(ms);
        self
    }

    /// Adds a signal to the message.
    pub fn signal(mut self, signal: SignalSpec) -> Self {
        self.spec.signals.push(signal);
        self
    }

    /// Validates and finishes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] for duplicate signal names, a zero or
    /// oversized DLC for the protocol, or a signal whose bit range exceeds
    /// the payload.
    pub fn build(self) -> Result<MessageSpec> {
        let m = self.spec;
        if m.dlc == 0 {
            return Err(Error::InvalidSpec(format!(
                "message {} has zero-length payload",
                m.name
            )));
        }
        let max_dlc = match m.protocol {
            Protocol::Can | Protocol::Lin => 8,
            Protocol::CanFd => 64,
            Protocol::SomeIp => 1400,
        };
        if m.dlc > max_dlc {
            return Err(Error::InvalidSpec(format!(
                "message {} dlc {} exceeds {} limit of {max_dlc}",
                m.name, m.dlc, m.protocol
            )));
        }
        let mut names = std::collections::HashSet::new();
        for s in &m.signals {
            if !names.insert(s.name()) {
                return Err(Error::InvalidSpec(format!(
                    "message {} has duplicate signal {}",
                    m.name,
                    s.name()
                )));
            }
            // Verify the bit range fits by probing a zero payload.
            let zeros = vec![0u8; m.dlc];
            crate::bits::extract(&zeros, s.start_bit(), s.bit_len(), s.byte_order()).map_err(
                |_| {
                    Error::InvalidSpec(format!(
                        "signal {} does not fit message {} payload ({} bytes)",
                        s.name(),
                        m.name,
                        m.dlc
                    ))
                },
            )?;
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wiper() -> MessageSpec {
        MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
            .dlc(4)
            .cycle_time_ms(500)
            .signal(
                SignalSpec::builder("wpos", 0, 16)
                    .factor(0.5)
                    .build()
                    .unwrap(),
            )
            .signal(SignalSpec::builder("wvel", 16, 16).build().unwrap())
            .build()
            .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let m = wiper();
        let payload = m
            .encode(&[
                ("wpos", PhysicalValue::Num(45.0)),
                ("wvel", PhysicalValue::Num(1.0)),
            ])
            .unwrap();
        assert_eq!(payload.len(), 4);
        let decoded = m.decode_all(&payload).unwrap();
        assert_eq!(decoded[0], ("wpos".to_string(), PhysicalValue::Num(45.0)));
        assert_eq!(decoded[1], ("wvel".to_string(), PhysicalValue::Num(1.0)));
    }

    #[test]
    fn unknown_signal_rejected() {
        let m = wiper();
        assert!(matches!(
            m.encode(&[("nope", PhysicalValue::Num(0.0))]),
            Err(Error::UnknownSignal(_))
        ));
        assert!(m.signal("wpos").is_ok());
    }

    #[test]
    fn duplicate_signal_names_rejected() {
        let r = MessageSpec::builder(1, "M", "B", Protocol::Can)
            .signal(SignalSpec::builder("x", 0, 8).build().unwrap())
            .signal(SignalSpec::builder("x", 8, 8).build().unwrap())
            .build();
        assert!(matches!(r, Err(Error::InvalidSpec(_))));
    }

    #[test]
    fn signal_must_fit_payload() {
        let r = MessageSpec::builder(1, "M", "B", Protocol::Can)
            .dlc(1)
            .signal(SignalSpec::builder("x", 0, 16).build().unwrap())
            .build();
        assert!(matches!(r, Err(Error::InvalidSpec(_))));
    }

    #[test]
    fn protocol_dlc_limits() {
        assert!(MessageSpec::builder(1, "M", "B", Protocol::Can)
            .dlc(9)
            .build()
            .is_err());
        assert!(MessageSpec::builder(1, "M", "B", Protocol::SomeIp)
            .dlc(64)
            .build()
            .is_ok());
        assert!(MessageSpec::builder(1, "M", "B", Protocol::Can)
            .dlc(0)
            .build()
            .is_err());
    }

    #[test]
    fn metadata_accessors() {
        let m = wiper();
        assert_eq!(m.id(), 3);
        assert_eq!(m.bus(), "FC");
        assert_eq!(m.cycle_time_ms(), Some(500));
        assert_eq!(m.protocol(), Protocol::Can);
        assert_eq!(m.protocol().to_string(), "CAN");
    }
}
