//! Signal specifications: how a physical quantity is packed into payload bits.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bits::{self, ByteOrder};
use crate::error::{Error, Result};

/// How the raw bit pattern is interpreted before scaling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RawKind {
    /// Unsigned integer.
    Unsigned,
    /// Two's complement signed integer.
    Signed,
}

/// A decoded physical signal value.
///
/// Numeric signals decode to [`PhysicalValue::Num`]; enumerated signals
/// (status words, switch positions, validity flags) decode to
/// [`PhysicalValue::Text`] labels.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PhysicalValue {
    /// Physical quantity after `factor * raw + offset`.
    Num(f64),
    /// Enumeration label.
    Text(String),
}

impl PhysicalValue {
    /// Numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            PhysicalValue::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// Label payload, if this is text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            PhysicalValue::Text(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for PhysicalValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhysicalValue::Num(v) => write!(f, "{v}"),
            PhysicalValue::Text(s) => f.write_str(s),
        }
    }
}

/// Packing and interpretation rule for one signal within a message payload.
///
/// Mirrors a DBC signal entry: bit position/length/byte order describe the
/// packing, `factor`/`offset` the linear physical coding and an optional
/// enumeration maps raw values to labels. Construct via
/// [`SignalSpec::builder`].
///
/// # Examples
///
/// ```
/// use ivnt_protocol::signal::SignalSpec;
/// use ivnt_protocol::bits::ByteOrder;
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// // Wiper position: bytes 1-2, factor 0.5 (paper's Table 1 rule v = 0.5 * l').
/// let wpos = SignalSpec::builder("wpos", 0, 16)
///     .byte_order(ByteOrder::Intel)
///     .factor(0.5)
///     .unit("deg")
///     .build()?;
/// let payload = [0x5A, 0x00, 0x01, 0x00];
/// let v = wpos.decode(&payload)?;
/// assert_eq!(v.as_num(), Some(45.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalSpec {
    name: String,
    start_bit: u16,
    bit_len: u16,
    byte_order: ByteOrder,
    raw_kind: RawKind,
    factor: f64,
    offset: f64,
    unit: Option<String>,
    /// raw -> label; non-empty means the signal is enumerated.
    enumeration: BTreeMap<u64, String>,
    min: Option<f64>,
    max: Option<f64>,
}

impl SignalSpec {
    /// Starts building a signal with mandatory name and packing geometry.
    pub fn builder(name: impl Into<String>, start_bit: u16, bit_len: u16) -> SignalSpecBuilder {
        SignalSpecBuilder {
            spec: SignalSpec {
                name: name.into(),
                start_bit,
                bit_len,
                byte_order: ByteOrder::Intel,
                raw_kind: RawKind::Unsigned,
                factor: 1.0,
                offset: 0.0,
                unit: None,
                enumeration: BTreeMap::new(),
                min: None,
                max: None,
            },
        }
    }

    /// Signal name (the paper's `s_id`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// First bit of the packed value (convention depends on byte order).
    pub fn start_bit(&self) -> u16 {
        self.start_bit
    }

    /// Packed width in bits.
    pub fn bit_len(&self) -> u16 {
        self.bit_len
    }

    /// Packing convention.
    pub fn byte_order(&self) -> ByteOrder {
        self.byte_order
    }

    /// Raw integer interpretation.
    pub fn raw_kind(&self) -> RawKind {
        self.raw_kind
    }

    /// Linear scale factor.
    pub fn factor(&self) -> f64 {
        self.factor
    }

    /// Linear offset.
    pub fn offset(&self) -> f64 {
        self.offset
    }

    /// Physical unit, if declared.
    pub fn unit(&self) -> Option<&str> {
        self.unit.as_deref()
    }

    /// `true` if the signal decodes to enumeration labels.
    pub fn is_enumerated(&self) -> bool {
        !self.enumeration.is_empty()
    }

    /// The enumeration (raw → label), empty for numeric signals.
    pub fn enumeration(&self) -> &BTreeMap<u64, String> {
        &self.enumeration
    }

    /// Number of distinct decodable values (`z_num` in the paper's
    /// classification): enumeration size for labeled signals, raw range for
    /// numeric ones (saturating).
    pub fn cardinality(&self) -> u64 {
        if self.is_enumerated() {
            self.enumeration.len() as u64
        } else if self.bit_len >= 64 {
            u64::MAX
        } else {
            1u64 << self.bit_len
        }
    }

    /// Extracts the raw (unscaled) value from a payload.
    ///
    /// # Errors
    ///
    /// Propagates bit-range errors from [`bits::extract`].
    pub fn decode_raw(&self, payload: &[u8]) -> Result<u64> {
        bits::extract(payload, self.start_bit, self.bit_len, self.byte_order)
    }

    /// Decodes the physical value from a payload.
    ///
    /// Enumerated signals map the raw value through the enumeration;
    /// numeric ones apply `factor * raw + offset` (raw sign-extended for
    /// [`RawKind::Signed`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEnumValue`] when an enumerated signal holds
    /// an unlabeled raw value, plus bit-range errors.
    pub fn decode(&self, payload: &[u8]) -> Result<PhysicalValue> {
        let raw = self.decode_raw(payload)?;
        if self.is_enumerated() {
            return self
                .enumeration
                .get(&raw)
                .map(|label| PhysicalValue::Text(label.clone()))
                .ok_or_else(|| Error::UnknownEnumValue {
                    signal: self.name.clone(),
                    raw,
                });
        }
        let signed = match self.raw_kind {
            RawKind::Unsigned => raw as i64 as f64,
            RawKind::Signed => bits::sign_extend(raw, self.bit_len) as f64,
        };
        let phys = if self.raw_kind == RawKind::Unsigned {
            self.factor * (raw as f64) + self.offset
        } else {
            self.factor * signed + self.offset
        };
        Ok(PhysicalValue::Num(phys))
    }

    /// Encodes a physical value into a payload.
    ///
    /// # Errors
    ///
    /// Returns [`Error::UnknownEnumLabel`] for unknown labels,
    /// [`Error::ValueOutOfRange`] when the scaled raw value does not fit the
    /// packed width or violates declared min/max, and bit-range errors.
    pub fn encode(&self, payload: &mut [u8], value: &PhysicalValue) -> Result<()> {
        let raw = self.raw_for(value)?;
        bits::insert(payload, self.start_bit, self.bit_len, self.byte_order, raw)
    }

    /// Computes the raw bit pattern for a physical value without writing it.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SignalSpec::encode`].
    pub fn raw_for(&self, value: &PhysicalValue) -> Result<u64> {
        match value {
            PhysicalValue::Text(label) => {
                if let Some((raw, _)) = self.enumeration.iter().find(|(_, l)| *l == label) {
                    Ok(*raw)
                } else {
                    Err(Error::UnknownEnumLabel {
                        signal: self.name.clone(),
                        label: label.clone(),
                    })
                }
            }
            PhysicalValue::Num(v) => {
                if let (Some(lo), true) = (self.min, self.min.is_some()) {
                    if *v < lo {
                        return Err(Error::ValueOutOfRange {
                            signal: self.name.clone(),
                            value: *v,
                        });
                    }
                }
                if let Some(hi) = self.max {
                    if *v > hi {
                        return Err(Error::ValueOutOfRange {
                            signal: self.name.clone(),
                            value: *v,
                        });
                    }
                }
                let scaled = (v - self.offset) / self.factor;
                let rounded = scaled.round();
                let fits = match self.raw_kind {
                    RawKind::Unsigned => {
                        let max = if self.bit_len >= 64 {
                            u64::MAX as f64
                        } else {
                            ((1u128 << self.bit_len) - 1) as f64
                        };
                        rounded >= 0.0 && rounded <= max
                    }
                    RawKind::Signed => {
                        let half = 1i128 << (self.bit_len - 1);
                        rounded >= -(half as f64) && rounded <= (half - 1) as f64
                    }
                };
                if !fits || !rounded.is_finite() {
                    return Err(Error::ValueOutOfRange {
                        signal: self.name.clone(),
                        value: *v,
                    });
                }
                let raw = match self.raw_kind {
                    RawKind::Unsigned => rounded as u64,
                    RawKind::Signed => {
                        let mask = if self.bit_len == 64 {
                            u64::MAX
                        } else {
                            (1u64 << self.bit_len) - 1
                        };
                        (rounded as i64 as u64) & mask
                    }
                };
                Ok(raw)
            }
        }
    }
}

/// Builder for [`SignalSpec`].
#[derive(Debug, Clone)]
pub struct SignalSpecBuilder {
    spec: SignalSpec,
}

impl SignalSpecBuilder {
    /// Sets the byte order (default [`ByteOrder::Intel`]).
    pub fn byte_order(mut self, order: ByteOrder) -> Self {
        self.spec.byte_order = order;
        self
    }

    /// Sets the raw interpretation (default [`RawKind::Unsigned`]).
    pub fn raw_kind(mut self, kind: RawKind) -> Self {
        self.spec.raw_kind = kind;
        self
    }

    /// Sets the linear scale factor (default `1.0`).
    pub fn factor(mut self, factor: f64) -> Self {
        self.spec.factor = factor;
        self
    }

    /// Sets the linear offset (default `0.0`).
    pub fn offset(mut self, offset: f64) -> Self {
        self.spec.offset = offset;
        self
    }

    /// Declares the physical unit.
    pub fn unit(mut self, unit: impl Into<String>) -> Self {
        self.spec.unit = Some(unit.into());
        self
    }

    /// Declares a physical minimum.
    pub fn min(mut self, min: f64) -> Self {
        self.spec.min = Some(min);
        self
    }

    /// Declares a physical maximum.
    pub fn max(mut self, max: f64) -> Self {
        self.spec.max = Some(max);
        self
    }

    /// Adds one enumeration entry (raw → label); turns the signal into an
    /// enumerated one.
    pub fn label(mut self, raw: u64, label: impl Into<String>) -> Self {
        self.spec.enumeration.insert(raw, label.into());
        self
    }

    /// Adds many enumeration entries.
    pub fn labels<I, S>(mut self, entries: I) -> Self
    where
        I: IntoIterator<Item = (u64, S)>,
        S: Into<String>,
    {
        for (raw, label) in entries {
            self.spec.enumeration.insert(raw, label.into());
        }
        self
    }

    /// Validates and finishes the spec.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidBitLength`] for widths outside `1..=64`,
    /// and [`Error::InvalidSpec`] for a zero factor, an empty name, or
    /// enumeration raw values that cannot fit the packed width.
    pub fn build(self) -> Result<SignalSpec> {
        let s = self.spec;
        if s.bit_len == 0 || s.bit_len > 64 {
            return Err(Error::InvalidBitLength(s.bit_len));
        }
        if s.name.is_empty() {
            return Err(Error::InvalidSpec("signal name must be non-empty".into()));
        }
        if s.factor == 0.0 {
            return Err(Error::InvalidSpec(format!(
                "signal {} has zero factor",
                s.name
            )));
        }
        if s.bit_len < 64 {
            let max = (1u64 << s.bit_len) - 1;
            if let Some((&raw, _)) = s.enumeration.iter().next_back() {
                if raw > max {
                    return Err(Error::InvalidSpec(format!(
                        "signal {} enumeration value {raw} exceeds {}-bit range",
                        s.name, s.bit_len
                    )));
                }
            }
        }
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wpos() -> SignalSpec {
        SignalSpec::builder("wpos", 0, 16)
            .factor(0.5)
            .unit("deg")
            .build()
            .unwrap()
    }

    #[test]
    fn numeric_decode_applies_factor() {
        let payload = [0x5A, 0x00];
        assert_eq!(wpos().decode(&payload).unwrap(), PhysicalValue::Num(45.0));
    }

    #[test]
    fn numeric_encode_roundtrip() {
        let s = wpos();
        let mut payload = [0u8; 2];
        s.encode(&mut payload, &PhysicalValue::Num(60.0)).unwrap();
        assert_eq!(s.decode(&payload).unwrap().as_num(), Some(60.0));
    }

    #[test]
    fn signed_signal_with_offset() {
        let s = SignalSpec::builder("temp", 0, 8)
            .raw_kind(RawKind::Signed)
            .factor(0.5)
            .offset(-40.0)
            .build()
            .unwrap();
        let mut payload = [0u8; 1];
        s.encode(&mut payload, &PhysicalValue::Num(-52.5)).unwrap();
        assert_eq!(s.decode(&payload).unwrap().as_num(), Some(-52.5));
    }

    #[test]
    fn enumerated_decode_and_encode() {
        let s = SignalSpec::builder("belt", 0, 2)
            .label(0, "OFF")
            .label(1, "ON")
            .build()
            .unwrap();
        let mut payload = [0u8; 1];
        s.encode(&mut payload, &PhysicalValue::Text("ON".into()))
            .unwrap();
        assert_eq!(
            s.decode(&payload).unwrap(),
            PhysicalValue::Text("ON".into())
        );
        payload[0] = 3;
        assert!(matches!(
            s.decode(&payload),
            Err(Error::UnknownEnumValue { .. })
        ));
        assert!(matches!(
            s.encode(&mut payload, &PhysicalValue::Text("HALF".into())),
            Err(Error::UnknownEnumLabel { .. })
        ));
    }

    #[test]
    fn cardinality() {
        assert_eq!(wpos().cardinality(), 1 << 16);
        let e = SignalSpec::builder("x", 0, 4)
            .labels([(0u64, "a"), (1, "b"), (2, "c")])
            .build()
            .unwrap();
        assert_eq!(e.cardinality(), 3);
    }

    #[test]
    fn out_of_range_rejected() {
        let s = wpos();
        let mut p = [0u8; 2];
        // 16 bits * factor 0.5 -> max 32767.5
        assert!(matches!(
            s.encode(&mut p, &PhysicalValue::Num(40000.0)),
            Err(Error::ValueOutOfRange { .. })
        ));
        let bounded = SignalSpec::builder("spd", 0, 16)
            .min(0.0)
            .max(300.0)
            .build()
            .unwrap();
        assert!(bounded.raw_for(&PhysicalValue::Num(301.0)).is_err());
        assert!(bounded.raw_for(&PhysicalValue::Num(-1.0)).is_err());
    }

    #[test]
    fn builder_validation() {
        assert!(SignalSpec::builder("", 0, 8).build().is_err());
        assert!(SignalSpec::builder("x", 0, 0).build().is_err());
        assert!(SignalSpec::builder("x", 0, 8).factor(0.0).build().is_err());
        assert!(SignalSpec::builder("x", 0, 2)
            .label(7, "oops")
            .build()
            .is_err());
    }

    #[test]
    fn physical_value_accessors() {
        assert_eq!(PhysicalValue::Num(1.5).as_num(), Some(1.5));
        assert_eq!(PhysicalValue::Text("a".into()).as_text(), Some("a"));
        assert_eq!(PhysicalValue::Num(1.5).as_text(), None);
        assert_eq!(PhysicalValue::Num(1.5).to_string(), "1.5");
    }
}
