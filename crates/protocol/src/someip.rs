//! SOME/IP messages (service-oriented payloads with optional fields).

use bytes::Bytes;

use crate::error::{Error, Result};

/// SOME/IP message type field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageType {
    /// Fire-and-forget request.
    Notification,
    /// Request expecting a response.
    Request,
    /// Response to a request.
    Response,
    /// Error response.
    Error,
}

impl MessageType {
    fn to_byte(self) -> u8 {
        match self {
            MessageType::Request => 0x00,
            MessageType::Notification => 0x02,
            MessageType::Response => 0x80,
            MessageType::Error => 0x81,
        }
    }

    fn from_byte(b: u8) -> Result<MessageType> {
        Ok(match b {
            0x00 => MessageType::Request,
            0x02 => MessageType::Notification,
            0x80 => MessageType::Response,
            0x81 => MessageType::Error,
            other => {
                return Err(Error::InvalidSpec(format!(
                    "unknown SOME/IP message type {other:#04x}"
                )))
            }
        })
    }
}

/// A SOME/IP message: the standard 16-byte header plus payload.
///
/// The *message id* (service id « 16 | method id) plays the role of the
/// paper's `m_id` on SOME/IP channels.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::someip::{MessageType, SomeIpMessage};
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// let msg = SomeIpMessage::new(0x00D4, 0x0001, MessageType::Notification, &[0x0A, 0x0B]);
/// let wire = msg.to_wire();
/// let parsed = SomeIpMessage::from_wire(&wire)?;
/// assert_eq!(parsed.message_id(), msg.message_id());
/// assert_eq!(parsed.payload(), &[0x0A, 0x0B]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SomeIpMessage {
    service_id: u16,
    method_id: u16,
    client_id: u16,
    session_id: u16,
    interface_version: u8,
    message_type: MessageType,
    return_code: u8,
    payload: Bytes,
}

/// SOME/IP protocol version carried in every header.
pub const PROTOCOL_VERSION: u8 = 0x01;
/// Header length in bytes (after the length field's own coverage begins).
pub const HEADER_LEN: usize = 16;

impl SomeIpMessage {
    /// Creates a notification/request message.
    pub fn new(
        service_id: u16,
        method_id: u16,
        message_type: MessageType,
        payload: &[u8],
    ) -> SomeIpMessage {
        SomeIpMessage {
            service_id,
            method_id,
            client_id: 0,
            session_id: 0,
            interface_version: 1,
            message_type,
            return_code: 0,
            payload: Bytes::copy_from_slice(payload),
        }
    }

    /// Combined message id: `service_id << 16 | method_id`.
    pub fn message_id(&self) -> u32 {
        (self.service_id as u32) << 16 | self.method_id as u32
    }

    /// Service identifier.
    pub fn service_id(&self) -> u16 {
        self.service_id
    }

    /// Method/event identifier.
    pub fn method_id(&self) -> u16 {
        self.method_id
    }

    /// Message type field.
    pub fn message_type(&self) -> MessageType {
        self.message_type
    }

    /// The payload bytes following the header.
    pub fn payload(&self) -> &[u8] {
        &self.payload
    }

    /// Sets the request id (client and session).
    pub fn with_request_id(mut self, client_id: u16, session_id: u16) -> SomeIpMessage {
        self.client_id = client_id;
        self.session_id = session_id;
        self
    }

    /// Serializes to the standard SOME/IP on-wire layout (big endian).
    pub fn to_wire(&self) -> Vec<u8> {
        let length = 8 + self.payload.len() as u32; // request id .. payload
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&self.service_id.to_be_bytes());
        out.extend_from_slice(&self.method_id.to_be_bytes());
        out.extend_from_slice(&length.to_be_bytes());
        out.extend_from_slice(&self.client_id.to_be_bytes());
        out.extend_from_slice(&self.session_id.to_be_bytes());
        out.push(PROTOCOL_VERSION);
        out.push(self.interface_version);
        out.push(self.message_type.to_byte());
        out.push(self.return_code);
        out.extend_from_slice(&self.payload);
        out
    }

    /// Parses the wire layout of [`SomeIpMessage::to_wire`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::TruncatedFrame`] when shorter than the header or the
    /// declared length, and [`Error::InvalidSpec`] for unknown protocol
    /// versions or message types.
    pub fn from_wire(wire: &[u8]) -> Result<SomeIpMessage> {
        if wire.len() < HEADER_LEN {
            return Err(Error::TruncatedFrame {
                expected: HEADER_LEN,
                actual: wire.len(),
            });
        }
        let service_id = u16::from_be_bytes([wire[0], wire[1]]);
        let method_id = u16::from_be_bytes([wire[2], wire[3]]);
        let length = u32::from_be_bytes([wire[4], wire[5], wire[6], wire[7]]) as usize;
        if length < 8 || wire.len() < 8 + length {
            return Err(Error::TruncatedFrame {
                expected: 8 + length.max(8),
                actual: wire.len(),
            });
        }
        let client_id = u16::from_be_bytes([wire[8], wire[9]]);
        let session_id = u16::from_be_bytes([wire[10], wire[11]]);
        if wire[12] != PROTOCOL_VERSION {
            return Err(Error::InvalidSpec(format!(
                "unsupported SOME/IP protocol version {:#04x}",
                wire[12]
            )));
        }
        let interface_version = wire[13];
        let message_type = MessageType::from_byte(wire[14])?;
        let return_code = wire[15];
        let payload = Bytes::copy_from_slice(&wire[16..8 + length]);
        Ok(SomeIpMessage {
            service_id,
            method_id,
            client_id,
            session_id,
            interface_version,
            message_type,
            return_code,
            payload,
        })
    }
}

/// An optional-field payload: the first byte is a presence bitmask gating up
/// to eight fixed-width fields that follow in mask-bit order.
///
/// This models the paper's SOME/IP peculiarity that "values of preceding
/// bytes define the presence of a signal type in succeeding bytes": a field's
/// byte position in the payload depends on which earlier fields are present.
///
/// # Examples
///
/// ```
/// use ivnt_protocol::someip::OptionalFieldLayout;
///
/// # fn main() -> ivnt_protocol::Result<()> {
/// // Three optional 2-byte fields.
/// let layout = OptionalFieldLayout::new(vec![2, 2, 2]);
/// let payload = layout.encode(&[Some(&[0x01, 0x02]), None, Some(&[0x05, 0x06])])?;
/// assert_eq!(payload[0], 0b101); // presence mask
/// assert_eq!(layout.decode_field(&payload, 2)?, Some(vec![0x05, 0x06]));
/// assert_eq!(layout.decode_field(&payload, 1)?, None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionalFieldLayout {
    field_sizes: Vec<usize>,
}

impl OptionalFieldLayout {
    /// Creates a layout with the given per-field byte widths (max 8 fields).
    ///
    /// # Panics
    ///
    /// Panics if more than 8 fields are declared.
    pub fn new(field_sizes: Vec<usize>) -> OptionalFieldLayout {
        assert!(field_sizes.len() <= 8, "presence mask covers 8 fields");
        OptionalFieldLayout { field_sizes }
    }

    /// Number of declared fields.
    pub fn num_fields(&self) -> usize {
        self.field_sizes.len()
    }

    /// Encodes present fields after a presence-mask byte.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidSpec`] when the slice count differs from the
    /// layout or a present field has the wrong width.
    pub fn encode(&self, fields: &[Option<&[u8]>]) -> Result<Vec<u8>> {
        if fields.len() != self.field_sizes.len() {
            return Err(Error::InvalidSpec(format!(
                "layout has {} fields, got {}",
                self.field_sizes.len(),
                fields.len()
            )));
        }
        let mut mask = 0u8;
        let mut out = vec![0u8];
        for (i, (field, &size)) in fields.iter().zip(&self.field_sizes).enumerate() {
            if let Some(data) = field {
                if data.len() != size {
                    return Err(Error::InvalidSpec(format!(
                        "field {i} expects {size} bytes, got {}",
                        data.len()
                    )));
                }
                mask |= 1 << i;
                out.extend_from_slice(data);
            }
        }
        out[0] = mask;
        Ok(out)
    }

    /// Byte offset of `field` within `payload`, or `None` when absent.
    ///
    /// # Errors
    ///
    /// Returns [`Error::TruncatedFrame`] for an empty payload and
    /// [`Error::InvalidSpec`] for an out-of-range field index.
    pub fn field_offset(&self, payload: &[u8], field: usize) -> Result<Option<usize>> {
        if payload.is_empty() {
            return Err(Error::TruncatedFrame {
                expected: 1,
                actual: 0,
            });
        }
        if field >= self.field_sizes.len() {
            return Err(Error::InvalidSpec(format!(
                "field index {field} outside layout of {}",
                self.field_sizes.len()
            )));
        }
        let mask = payload[0];
        if mask & (1 << field) == 0 {
            return Ok(None);
        }
        let mut offset = 1usize;
        for i in 0..field {
            if mask & (1 << i) != 0 {
                offset += self.field_sizes[i];
            }
        }
        Ok(Some(offset))
    }

    /// Decodes `field` from `payload`, or `None` when absent.
    ///
    /// # Errors
    ///
    /// Same conditions as [`OptionalFieldLayout::field_offset`], plus
    /// [`Error::TruncatedFrame`] when the payload ends inside the field.
    pub fn decode_field(&self, payload: &[u8], field: usize) -> Result<Option<Vec<u8>>> {
        let Some(offset) = self.field_offset(payload, field)? else {
            return Ok(None);
        };
        let size = self.field_sizes[field];
        if payload.len() < offset + size {
            return Err(Error::TruncatedFrame {
                expected: offset + size,
                actual: payload.len(),
            });
        }
        Ok(Some(payload[offset..offset + size].to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let m = SomeIpMessage::new(0x00D4, 0x0001, MessageType::Notification, &[1, 2, 3])
            .with_request_id(0x1111, 0x0007);
        let parsed = SomeIpMessage::from_wire(&m.to_wire()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.message_id(), 0x00D4_0001);
    }

    #[test]
    fn truncated_and_bad_version() {
        assert!(matches!(
            SomeIpMessage::from_wire(&[0; 10]),
            Err(Error::TruncatedFrame { .. })
        ));
        let m = SomeIpMessage::new(1, 2, MessageType::Request, &[]);
        let mut wire = m.to_wire();
        wire[12] = 0x42;
        assert!(matches!(
            SomeIpMessage::from_wire(&wire),
            Err(Error::InvalidSpec(_))
        ));
        let mut wire = m.to_wire();
        wire[14] = 0x55;
        assert!(SomeIpMessage::from_wire(&wire).is_err());
    }

    #[test]
    fn declared_length_enforced() {
        let m = SomeIpMessage::new(1, 2, MessageType::Response, &[9, 9, 9]);
        let wire = m.to_wire();
        assert!(matches!(
            SomeIpMessage::from_wire(&wire[..wire.len() - 1]),
            Err(Error::TruncatedFrame { .. })
        ));
    }

    #[test]
    fn optional_fields_shift_with_presence() {
        let layout = OptionalFieldLayout::new(vec![1, 2, 1]);
        // All present: field 2 at offset 1+1+2 = 4.
        let p = layout
            .encode(&[Some(&[0xAA]), Some(&[0xBB, 0xCC]), Some(&[0xDD])])
            .unwrap();
        assert_eq!(layout.field_offset(&p, 2).unwrap(), Some(4));
        // Field 1 absent: field 2 moves to offset 2.
        let p = layout
            .encode(&[Some(&[0xAA]), None, Some(&[0xDD])])
            .unwrap();
        assert_eq!(layout.field_offset(&p, 2).unwrap(), Some(2));
        assert_eq!(layout.decode_field(&p, 2).unwrap(), Some(vec![0xDD]));
        assert_eq!(layout.decode_field(&p, 1).unwrap(), None);
    }

    #[test]
    fn optional_field_validation() {
        let layout = OptionalFieldLayout::new(vec![2]);
        assert!(layout.encode(&[Some(&[1])]).is_err());
        assert!(layout.encode(&[]).is_err());
        assert!(layout.decode_field(&[], 0).is_err());
        let p = layout.encode(&[Some(&[1, 2])]).unwrap();
        assert!(layout.decode_field(&p, 5).is_err());
        assert!(layout.decode_field(&p[..2], 0).is_err());
    }
}
