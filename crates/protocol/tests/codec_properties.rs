//! Property tests: every codec must roundtrip for arbitrary valid inputs.

use ivnt_protocol::bits::{self, ByteOrder};
use ivnt_protocol::can::{CanFrame, CanId};
use ivnt_protocol::lin::LinFrame;
use ivnt_protocol::signal::{PhysicalValue, RawKind, SignalSpec};
use ivnt_protocol::someip::{MessageType, SomeIpMessage};
use proptest::prelude::*;

proptest! {
    /// Intel insert/extract roundtrips for any in-bounds geometry.
    #[test]
    fn intel_bit_roundtrip(
        start in 0u16..48,
        len in 1u16..17,
        value in any::<u64>(),
    ) {
        let mut data = [0u8; 8];
        let masked = value & ((1u64 << len) - 1);
        bits::insert(&mut data, start, len, ByteOrder::Intel, masked).unwrap();
        prop_assert_eq!(bits::extract(&data, start, len, ByteOrder::Intel).unwrap(), masked);
    }

    /// Motorola insert/extract roundtrips when the sawtooth stays in bounds.
    #[test]
    fn motorola_bit_roundtrip(
        byte in 0u16..6,
        bit in 0u16..8,
        len in 1u16..17,
        value in any::<u64>(),
    ) {
        let start = byte * 8 + bit;
        let mut data = [0u8; 8];
        let masked = value & ((1u64 << len) - 1);
        if bits::insert(&mut data, start, len, ByteOrder::Motorola, masked).is_ok() {
            prop_assert_eq!(
                bits::extract(&data, start, len, ByteOrder::Motorola).unwrap(),
                masked
            );
        }
    }

    /// Inserting one field never disturbs a disjoint field (Intel).
    #[test]
    fn intel_insert_is_local(
        a_start in 0u16..16,
        b_start in 32u16..48,
        a_len in 1u16..16,
        b_len in 1u16..16,
        a in any::<u64>(),
        b in any::<u64>(),
    ) {
        let mut data = [0u8; 8];
        let am = a & ((1u64 << a_len) - 1);
        let bm = b & ((1u64 << b_len) - 1);
        bits::insert(&mut data, a_start, a_len, ByteOrder::Intel, am).unwrap();
        bits::insert(&mut data, b_start, b_len, ByteOrder::Intel, bm).unwrap();
        prop_assert_eq!(bits::extract(&data, a_start, a_len, ByteOrder::Intel).unwrap(), am);
        prop_assert_eq!(bits::extract(&data, b_start, b_len, ByteOrder::Intel).unwrap(), bm);
    }

    /// Signed extraction matches two's complement semantics.
    #[test]
    fn sign_extension_reference(len in 2u16..63, raw in any::<u64>()) {
        let masked = raw & ((1u64 << len) - 1);
        let expected = if masked >> (len - 1) == 1 {
            masked as i64 - (1i64 << len)
        } else {
            masked as i64
        };
        prop_assert_eq!(bits::sign_extend(masked, len), expected);
    }

    /// Linear-coded unsigned signals roundtrip within quantization error.
    #[test]
    fn signal_linear_roundtrip(
        raw in 0u64..65536,
        factor in prop::sample::select(vec![0.01f64, 0.1, 0.25, 0.5, 1.0, 2.0]),
        offset in -100.0f64..100.0,
    ) {
        let s = SignalSpec::builder("s", 0, 16)
            .factor(factor)
            .offset(offset)
            .build()
            .unwrap();
        let phys = factor * raw as f64 + offset;
        let mut payload = [0u8; 2];
        s.encode(&mut payload, &PhysicalValue::Num(phys)).unwrap();
        let decoded = s.decode(&payload).unwrap().as_num().unwrap();
        prop_assert!((decoded - phys).abs() <= factor / 2.0 + 1e-9);
    }

    /// Signed signals roundtrip exactly on raw grid points.
    #[test]
    fn signal_signed_roundtrip(raw in -128i64..128) {
        let s = SignalSpec::builder("t", 0, 8)
            .raw_kind(RawKind::Signed)
            .build()
            .unwrap();
        let mut payload = [0u8; 1];
        s.encode(&mut payload, &PhysicalValue::Num(raw as f64)).unwrap();
        prop_assert_eq!(s.decode(&payload).unwrap().as_num(), Some(raw as f64));
    }

    /// CAN frames roundtrip through the wire format.
    #[test]
    fn can_wire_roundtrip(id in 0u16..0x800, data in prop::collection::vec(any::<u8>(), 0..9)) {
        let f = CanFrame::new(CanId::standard(id).unwrap(), &data).unwrap();
        prop_assert_eq!(CanFrame::from_wire(&f.to_wire()).unwrap(), f);
    }

    /// LIN frames roundtrip and always carry a valid checksum.
    #[test]
    fn lin_wire_roundtrip(id in 0u8..0x40, data in prop::collection::vec(any::<u8>(), 0..9)) {
        let f = LinFrame::new(id, &data).unwrap();
        prop_assert!(f.verify_checksum());
        prop_assert_eq!(LinFrame::from_wire(&f.to_wire()).unwrap(), f);
    }

    /// SOME/IP messages roundtrip through the wire format.
    #[test]
    fn someip_wire_roundtrip(
        service in any::<u16>(),
        method in any::<u16>(),
        payload in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let m = SomeIpMessage::new(service, method, MessageType::Notification, &payload);
        prop_assert_eq!(SomeIpMessage::from_wire(&m.to_wire()).unwrap(), m);
    }

    /// Single-bit corruption of a LIN frame body is always detected.
    #[test]
    fn lin_detects_single_bit_flips(
        id in 0u8..0x40,
        data in prop::collection::vec(any::<u8>(), 1..8),
        flip_byte in 0usize..8,
        flip_bit in 0usize..8,
    ) {
        let f = LinFrame::new(id, &data).unwrap();
        let mut wire = f.to_wire();
        // Only corrupt data or checksum bytes (pid corruption may trip parity instead).
        let idx = 2 + flip_byte % (wire.len() - 2);
        wire[idx] ^= 1 << flip_bit;
        prop_assert!(LinFrame::from_wire(&wire).is_err());
    }
}
