//! Property test: arbitrary generated catalogs survive a DBC export/import
//! roundtrip.

use ivnt_protocol::bits::ByteOrder;
use ivnt_protocol::catalog::Catalog;
use ivnt_protocol::dbc::{parse_dbc, to_dbc};
use ivnt_protocol::message::{MessageSpec, Protocol};
use ivnt_protocol::signal::{RawKind, SignalSpec};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct SigPlan {
    byte_slot: usize,
    width: u16,
    intel: bool,
    signed: bool,
    factor_id: usize,
    offset: i32,
    labels: usize,
}

fn arb_signal() -> impl Strategy<Value = SigPlan> {
    (
        0usize..8,
        1u16..9,
        any::<bool>(),
        any::<bool>(),
        0usize..4,
        -50i32..50,
        0usize..4,
    )
        .prop_map(
            |(byte_slot, width, intel, signed, factor_id, offset, labels)| SigPlan {
                byte_slot,
                width,
                intel,
                signed,
                factor_id,
                offset,
                labels,
            },
        )
}

fn build_catalog(plans: &[Vec<SigPlan>]) -> Catalog {
    const FACTORS: [f64; 4] = [1.0, 0.5, 0.25, 2.0];
    let mut catalog = Catalog::new();
    for (mi, signals) in plans.iter().enumerate() {
        let mut builder =
            MessageSpec::builder(100 + mi as u32, format!("M{mi}"), "B", Protocol::Can)
                .dlc(8)
                .cycle_time_ms(100 * (mi as u32 + 1));
        for (si, p) in signals.iter().enumerate() {
            // One signal per byte slot avoids overlap concerns; Motorola
            // start bit = MSB of the byte.
            let start = if p.intel {
                (p.byte_slot * 8) as u16
            } else {
                (p.byte_slot * 8 + 7) as u16
            };
            let width = p.width.min(8);
            let mut sig = SignalSpec::builder(format!("m{mi}_s{si}"), start, width)
                .byte_order(if p.intel {
                    ByteOrder::Intel
                } else {
                    ByteOrder::Motorola
                })
                .factor(FACTORS[p.factor_id])
                .offset(p.offset as f64);
            if p.labels >= 2 && !p.signed {
                let max = (1u64 << width).min(8);
                for raw in 0..(p.labels as u64).min(max) {
                    sig = sig.label(raw, format!("L{raw}"));
                }
            } else if p.signed {
                sig = sig.raw_kind(RawKind::Signed);
            }
            builder = builder.signal(sig.build().expect("valid signal"));
        }
        catalog
            .add_message(builder.build().expect("valid message"))
            .expect("unique");
    }
    catalog
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn dbc_roundtrip_preserves_catalog(
        plans in prop::collection::vec(
            prop::collection::vec(arb_signal(), 1..4),
            1..5,
        )
    ) {
        // Deduplicate byte slots within a message so signals don't overlap.
        let plans: Vec<Vec<SigPlan>> = plans
            .into_iter()
            .map(|mut sigs| {
                let mut used = std::collections::HashSet::new();
                sigs.retain(|s| used.insert(s.byte_slot));
                sigs
            })
            .filter(|sigs| !sigs.is_empty())
            .collect();
        prop_assume!(!plans.is_empty());

        let catalog = build_catalog(&plans);
        let text = to_dbc(&catalog, "B");
        let reparsed = parse_dbc(&text, "B").expect("reparse");

        prop_assert_eq!(reparsed.num_messages(), catalog.num_messages());
        for m in catalog.messages() {
            let rm = reparsed.message("B", m.id()).expect("message");
            prop_assert_eq!(rm.dlc(), m.dlc());
            prop_assert_eq!(rm.cycle_time_ms(), m.cycle_time_ms());
            for (a, b) in m.signals().iter().zip(rm.signals()) {
                prop_assert_eq!(a.name(), b.name());
                prop_assert_eq!(a.start_bit(), b.start_bit());
                prop_assert_eq!(a.bit_len(), b.bit_len());
                prop_assert_eq!(a.byte_order(), b.byte_order());
                prop_assert_eq!(a.raw_kind(), b.raw_kind());
                prop_assert_eq!(a.factor(), b.factor());
                prop_assert_eq!(a.offset(), b.offset());
                prop_assert_eq!(a.enumeration(), b.enumeration());
                // Decoding agrees on an arbitrary payload.
                let payload = [0xA5u8, 0x5A, 0x0F, 0xF0, 0x33, 0xCC, 0x01, 0x80];
                let da = a.decode(&payload);
                let db = b.decode(&payload);
                match (da, db) {
                    (Ok(x), Ok(y)) => prop_assert_eq!(x, y),
                    (Err(_), Err(_)) => {}
                    other => prop_assert!(false, "decode disagreement: {other:?}"),
                }
            }
        }
    }
}
