//! Robustness: the DBC parser and frame decoders must never panic on
//! arbitrary text/bytes.

use ivnt_protocol::can::{CanFdFrame, CanFrame};
use ivnt_protocol::dbc::parse_dbc_extended;
use ivnt_protocol::lin::LinFrame;
use ivnt_protocol::someip::SomeIpMessage;
use proptest::prelude::*;

proptest! {
    /// Arbitrary text never panics the DBC parser.
    #[test]
    fn dbc_parser_never_panics(text in "\\PC{0,400}") {
        let _ = parse_dbc_extended(&text, "B");
    }

    /// DBC-looking garbage (keywords + junk) never panics either.
    #[test]
    fn dbc_keyword_fuzz(
        parts in prop::collection::vec(
            prop::sample::select(vec![
                "BO_ ", "SG_ ", "VAL_ ", "BA_ ", "CM_ ", ":", "|", "@", "(", ")",
                "[", "]", "\"", " 1 ", " x ", "\n", "m0 ", "M ", "0|8@1+ ",
            ]),
            0..60,
        )
    ) {
        let text: String = parts.concat();
        let _ = parse_dbc_extended(&text, "B");
    }

    /// Arbitrary bytes never panic the frame wire parsers.
    #[test]
    fn wire_parsers_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let _ = CanFrame::from_wire(&bytes);
        let _ = CanFdFrame::from_wire(&bytes);
        let _ = LinFrame::from_wire(&bytes);
        let _ = SomeIpMessage::from_wire(&bytes);
    }
}
