//! One-dimensional k-means clustering.
//!
//! Sec. 4.1 of the paper lists clustering as one of the reduction
//! techniques its constraint formalism can express ("by mapping multiple
//! trace segments on a representative symbol, by clustering or by using
//! sampling techniques"); related work (Agarwal et al., CODS 2015) reduces vehicular sensor data
//! exactly this way. This module provides the deterministic 1-D k-means
//! used by the cluster-based reducer in `ivnt-core`.

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centers, ascending.
    pub centers: Vec<f64>,
    /// Per-input cluster assignment (index into `centers`).
    pub assignment: Vec<usize>,
    /// Sum of squared distances to assigned centers.
    pub inertia: f64,
    /// Lloyd iterations executed.
    pub iterations: usize,
}

/// Deterministic 1-D k-means (Lloyd's algorithm, quantile initialization).
///
/// `k` is clamped to the number of distinct values; an empty input yields
/// an empty clustering. Initialization by quantiles makes the run
/// deterministic — no RNG, per the pipeline's determinism requirement.
///
/// # Examples
///
/// ```
/// use ivnt_series::cluster::kmeans_1d;
///
/// // Gear-position readings hover around two levels.
/// let data = [2.0, 2.1, 1.9, 6.0, 6.1, 5.9];
/// let c = kmeans_1d(&data, 2, 50);
/// assert_eq!(c.centers.len(), 2);
/// assert!((c.centers[0] - 2.0).abs() < 0.1);
/// assert!((c.centers[1] - 6.0).abs() < 0.1);
/// ```
pub fn kmeans_1d(data: &[f64], k: usize, max_iterations: usize) -> Clustering {
    if data.is_empty() || k == 0 {
        return Clustering {
            centers: Vec::new(),
            assignment: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let mut distinct: Vec<f64> = data.to_vec();
    distinct.sort_by(|a, b| a.total_cmp(b));
    distinct.dedup_by(|a, b| a.to_bits() == b.to_bits());
    let k = k.min(distinct.len());

    // Quantile initialization over distinct values.
    let mut centers: Vec<f64> = (0..k)
        .map(|i| {
            let pos = if k == 1 {
                0
            } else {
                i * (distinct.len() - 1) / (k - 1)
            };
            distinct[pos]
        })
        .collect();
    centers.dedup_by(|a, b| a.to_bits() == b.to_bits());

    let mut assignment = vec![0usize; data.len()];
    let mut iterations = 0usize;
    for _ in 0..max_iterations.max(1) {
        iterations += 1;
        // Assign.
        let mut changed = false;
        for (i, &x) in data.iter().enumerate() {
            let nearest = nearest_center(&centers, x);
            if assignment[i] != nearest {
                assignment[i] = nearest;
                changed = true;
            }
        }
        // Update.
        let mut sums = vec![0.0f64; centers.len()];
        let mut counts = vec![0usize; centers.len()];
        for (i, &x) in data.iter().enumerate() {
            sums[assignment[i]] += x;
            counts[assignment[i]] += 1;
        }
        for (c, (s, n)) in centers.iter_mut().zip(sums.iter().zip(&counts)) {
            if *n > 0 {
                *c = s / *n as f64;
            }
        }
        centers.sort_by(|a, b| a.total_cmp(b));
        if !changed && iterations > 1 {
            break;
        }
    }
    // Final assignment against sorted centers.
    for (i, &x) in data.iter().enumerate() {
        assignment[i] = nearest_center(&centers, x);
    }
    let inertia = data
        .iter()
        .zip(&assignment)
        .map(|(&x, &a)| (x - centers[a]) * (x - centers[a]))
        .sum();
    Clustering {
        centers,
        assignment,
        inertia,
        iterations,
    }
}

fn nearest_center(centers: &[f64], x: f64) -> usize {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, &c) in centers.iter().enumerate() {
        let d = (x - c).abs();
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    best
}

/// Maps each value to its cluster center — the "representative symbol"
/// reduction: runs of equal representatives then collapse under
/// unchanged-repeat removal.
pub fn quantize(data: &[f64], k: usize, max_iterations: usize) -> Vec<f64> {
    let clustering = kmeans_1d(data, k, max_iterations);
    data.iter()
        .zip(&clustering.assignment)
        .map(|(_, &a)| clustering.centers[a])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_obvious_clusters() {
        let data = [1.0, 1.1, 0.9, 10.0, 10.2, 9.8, 20.0, 19.9];
        let c = kmeans_1d(&data, 3, 50);
        assert_eq!(c.centers.len(), 3);
        assert!((c.centers[0] - 1.0).abs() < 0.2);
        assert!((c.centers[1] - 10.0).abs() < 0.2);
        assert!((c.centers[2] - 19.95).abs() < 0.2);
        // All members of a cluster share the assignment.
        assert_eq!(c.assignment[0], c.assignment[1]);
        assert_eq!(c.assignment[3], c.assignment[4]);
        assert_ne!(c.assignment[0], c.assignment[3]);
    }

    #[test]
    fn deterministic() {
        let data: Vec<f64> = (0..200).map(|i| ((i * 37) % 97) as f64).collect();
        let a = kmeans_1d(&data, 5, 100);
        let b = kmeans_1d(&data, 5, 100);
        assert_eq!(a, b);
    }

    #[test]
    fn k_clamped_to_distinct_values() {
        let data = [3.0, 3.0, 7.0];
        let c = kmeans_1d(&data, 10, 50);
        assert_eq!(c.centers.len(), 2);
        assert_eq!(c.inertia, 0.0);
    }

    #[test]
    fn empty_and_degenerate() {
        let c = kmeans_1d(&[], 3, 10);
        assert!(c.centers.is_empty());
        let c = kmeans_1d(&[5.0], 3, 10);
        assert_eq!(c.centers, vec![5.0]);
        let c = kmeans_1d(&[1.0, 2.0], 0, 10);
        assert!(c.centers.is_empty());
    }

    #[test]
    fn quantize_maps_to_centers() {
        let data = [1.0, 1.2, 9.0, 9.4];
        let q = quantize(&data, 2, 50);
        assert_eq!(q[0], q[1]);
        assert_eq!(q[2], q[3]);
        assert!(q[0] < q[2]);
        // Representatives are the cluster means.
        assert!((q[0] - 1.1).abs() < 1e-9);
        assert!((q[2] - 9.2).abs() < 1e-9);
    }

    #[test]
    fn inertia_decreases_with_k() {
        let data: Vec<f64> = (0..100).map(|i| (i % 10) as f64).collect();
        let c2 = kmeans_1d(&data, 2, 100);
        let c5 = kmeans_1d(&data, 5, 100);
        let c10 = kmeans_1d(&data, 10, 100);
        assert!(c2.inertia >= c5.inertia);
        assert!(c5.inertia >= c10.inertia);
        assert_eq!(c10.inertia, 0.0);
    }
}
