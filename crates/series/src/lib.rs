//! # ivnt-series — time-series algorithms for trace symbolization
//!
//! From-scratch implementations of the algorithms the DAC'18 paper's
//! type-dependent processing branches rely on (Sec. 4.2):
//!
//! * [`swab`] — SWAB online segmentation (Keogh et al., ICDM 2001),
//! * [`sax`] — PAA + SAX symbolization (Lin et al., DMKD 2003),
//! * [`smooth`] — moving-average / exponential / median smoothing,
//! * [`outlier`] — z-score, Hampel and IQR outlier detection,
//! * [`trend`] — least-squares gradient and qualitative trend labels,
//! * [`segment`] / [`stats`] — shared fitting and statistics primitives.
//!
//! Branch α of the paper composes these as: outlier removal → smoothing →
//! SWAB segmentation → SAX symbol + trend per segment; branch β uses the
//! outlier detectors and the gradient.
//!
//! # Examples
//!
//! ```
//! use ivnt_series::{sax, swab, trend};
//!
//! // A speed-like trajectory: accelerate then cruise.
//! let mut speed: Vec<f64> = (0..100).map(|i| i as f64).collect();
//! speed.extend(vec![99.0; 100]);
//!
//! let segments = swab::swab(&speed, swab::SwabConfig { max_error: 5.0, buffer_len: 64 });
//! let trends = trend::classify_segments(&segments, 0.05);
//! assert!(trends.contains(&trend::Trend::Increasing));
//! assert!(trends.contains(&trend::Trend::Steady));
//!
//! let word = sax::sax_word(&speed, 8, 4);
//! assert_eq!(word.len(), 8);
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod outlier;
pub mod sax;
pub mod segment;
pub mod smooth;
pub mod stats;
pub mod swab;
pub mod trend;

pub use segment::Segment;
pub use swab::{swab as swab_segment, SwabConfig};
pub use trend::Trend;
