//! Outlier detection for branches α and β.
//!
//! The paper removes outliers before smoothing/segmentation and *merges them
//! back* afterwards as potential errors (Sec. 4.2, Sec. 4.4 bullet 1). Each
//! detector returns a boolean mask (`true` = outlier) so callers can split
//! and re-merge.

use crate::stats::{mad, mean, median, quantile, std_dev};

/// Marks values whose z-score magnitude exceeds `threshold`.
///
/// A (near-)constant series yields no outliers.
pub fn zscore_outliers(data: &[f64], threshold: f64) -> Vec<bool> {
    let m = mean(data);
    let s = std_dev(data);
    if s < 1e-12 {
        return vec![false; data.len()];
    }
    data.iter()
        .map(|&x| ((x - m) / s).abs() > threshold)
        .collect()
}

/// Hampel filter: marks values deviating more than `n_sigmas` robust sigmas
/// (MAD-based) from the rolling median of a centered window.
///
/// Robust against masking: a spike does not inflate the local scale
/// estimate the way it inflates a standard deviation.
///
/// # Examples
///
/// ```
/// use ivnt_series::outlier::hampel_outliers;
///
/// let mut speed = vec![50.0; 20];
/// speed[10] = 800.0; // sensor glitch
/// let mask = hampel_outliers(&speed, 5, 3.0);
/// assert!(mask[10]);
/// assert_eq!(mask.iter().filter(|&&m| m).count(), 1);
/// ```
pub fn hampel_outliers(data: &[f64], window: usize, n_sigmas: f64) -> Vec<bool> {
    if data.is_empty() {
        return Vec::new();
    }
    let half = (window / 2).max(1);
    (0..data.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(data.len());
            let win = &data[lo..hi];
            let med = median(win);
            let sigma = mad(win);
            if sigma < 1e-12 {
                // Constant neighbourhood: any deviation is an outlier.
                (data[i] - med).abs() > 1e-12
            } else {
                (data[i] - med).abs() > n_sigmas * sigma
            }
        })
        .collect()
}

/// Tukey's fences: marks values outside `[Q1 - k*IQR, Q3 + k*IQR]`.
pub fn iqr_outliers(data: &[f64], k: f64) -> Vec<bool> {
    if data.is_empty() {
        return Vec::new();
    }
    let q1 = quantile(data, 0.25);
    let q3 = quantile(data, 0.75);
    let iqr = q3 - q1;
    let lo = q1 - k * iqr;
    let hi = q3 + k * iqr;
    data.iter().map(|&x| x < lo || x > hi).collect()
}

/// Splits `values` by `mask` into `(marked, unmarked)` index lists.
///
/// # Panics
///
/// Panics in debug builds when lengths differ.
pub fn partition_by_mask(mask: &[bool]) -> (Vec<usize>, Vec<usize>) {
    let mut marked = Vec::new();
    let mut unmarked = Vec::new();
    for (i, &m) in mask.iter().enumerate() {
        if m {
            marked.push(i);
        } else {
            unmarked.push(i);
        }
    }
    (marked, unmarked)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_spike() -> Vec<f64> {
        let mut d: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        d[25] = 40.0;
        d
    }

    #[test]
    fn zscore_finds_spike() {
        let d = with_spike();
        let mask = zscore_outliers(&d, 3.0);
        assert!(mask[25]);
        assert_eq!(mask.iter().filter(|&&m| m).count(), 1);
    }

    #[test]
    fn zscore_constant_series_clean() {
        assert_eq!(zscore_outliers(&[2.0; 5], 3.0), vec![false; 5]);
        assert!(zscore_outliers(&[], 3.0).is_empty());
    }

    #[test]
    fn hampel_finds_spike_and_resists_masking() {
        let mut d = with_spike();
        d[26] = 40.0; // two adjacent spikes try to mask each other
        let mask = hampel_outliers(&d, 7, 3.0);
        assert!(mask[25] && mask[26]);
        assert!(mask.iter().filter(|&&m| m).count() <= 4);
    }

    #[test]
    fn hampel_constant_neighbourhood() {
        let mut d = vec![1.0; 9];
        d[4] = 2.0;
        let mask = hampel_outliers(&d, 5, 3.0);
        assert!(mask[4]);
        assert!(!mask[0]);
    }

    #[test]
    fn iqr_finds_spike() {
        let d = with_spike();
        let mask = iqr_outliers(&d, 1.5);
        assert!(mask[25]);
        assert!(iqr_outliers(&[], 1.5).is_empty());
    }

    #[test]
    fn partition_splits_indices() {
        let (out, inl) = partition_by_mask(&[true, false, false, true]);
        assert_eq!(out, vec![0, 3]);
        assert_eq!(inl, vec![1, 2]);
    }
}
