//! SAX — Symbolic Aggregate approXimation.
//!
//! Reimplementation of Lin, Keogh, Lonardi & Chiu, *"A symbolic
//! representation of time series, with implications for streaming
//! algorithms"* (DMKD 2003). The paper's branch α symbolizes each SWAB
//! segment with SAX, yielding the `(trend, symbol)` tuples of the
//! homogeneous state representation.

use crate::stats::znormalize;

/// Piecewise Aggregate Approximation: mean of each of `n_segments` equally
/// sized (up to rounding) windows.
///
/// Returns an empty vector for empty input; with fewer points than segments,
/// windows degrade gracefully (each point lands in the window
/// `i * n / len`).
pub fn paa(data: &[f64], n_segments: usize) -> Vec<f64> {
    if data.is_empty() || n_segments == 0 {
        return Vec::new();
    }
    let n = data.len();
    if n_segments >= n {
        return data.to_vec();
    }
    let mut sums = vec![0.0f64; n_segments];
    let mut counts = vec![0usize; n_segments];
    for (i, &x) in data.iter().enumerate() {
        let seg = i * n_segments / n;
        sums[seg] += x;
        counts[seg] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c == 0 { 0.0 } else { s / c as f64 })
        .collect()
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9).
///
/// # Panics
///
/// Panics in debug builds for `p` outside the open interval `(0, 1)`.
pub fn inverse_normal_cdf(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0, "p must be in (0, 1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

/// Gaussian breakpoints dividing N(0,1) into `alphabet_size` equiprobable
/// regions (`alphabet_size - 1` values, ascending).
///
/// # Panics
///
/// Panics if `alphabet_size < 2`.
pub fn breakpoints(alphabet_size: usize) -> Vec<f64> {
    assert!(alphabet_size >= 2, "SAX alphabet needs at least 2 symbols");
    (1..alphabet_size)
        .map(|i| inverse_normal_cdf(i as f64 / alphabet_size as f64))
        .collect()
}

/// Maps one z-normalized value to its SAX symbol (`'a'`, `'b'`, ...).
pub fn symbol_for(value: f64, breakpoints: &[f64]) -> char {
    let idx = breakpoints.partition_point(|&b| value >= b);
    (b'a' + idx as u8) as char
}

/// Full SAX transform: z-normalize, PAA to `word_len`, symbolize with an
/// `alphabet_size`-letter alphabet.
///
/// # Panics
///
/// Panics if `alphabet_size < 2`.
///
/// # Examples
///
/// ```
/// use ivnt_series::sax::sax_word;
///
/// let data: Vec<f64> = (0..64).map(|i| i as f64).collect();
/// let word = sax_word(&data, 8, 4);
/// assert_eq!(word.len(), 8);
/// // A ramp sweeps the alphabet from low to high symbols.
/// assert_eq!(word.first(), Some(&'a'));
/// assert_eq!(word.last(), Some(&'d'));
/// ```
pub fn sax_word(data: &[f64], word_len: usize, alphabet_size: usize) -> Vec<char> {
    if data.is_empty() || word_len == 0 {
        return Vec::new();
    }
    let z = znormalize(data);
    let approx = paa(&z, word_len);
    let bps = breakpoints(alphabet_size);
    approx.iter().map(|&v| symbol_for(v, &bps)).collect()
}

/// Symbolizes a single already-normalized value (used per SWAB segment).
pub fn sax_symbol(value: f64, alphabet_size: usize) -> char {
    symbol_for(value, &breakpoints(alphabet_size))
}

/// Minimum distance between two SAX words under the MINDIST lookup of the
/// SAX paper, scaled for original series length `n`.
///
/// # Panics
///
/// Panics if word lengths differ or a symbol is outside the alphabet.
pub fn mindist(word_a: &[char], word_b: &[char], alphabet_size: usize, n: usize) -> f64 {
    assert_eq!(word_a.len(), word_b.len(), "SAX words must align");
    if word_a.is_empty() {
        return 0.0;
    }
    let bps = breakpoints(alphabet_size);
    let cell = |c: char| -> usize {
        let idx = (c as u8 - b'a') as usize;
        assert!(idx < alphabet_size, "symbol outside alphabet");
        idx
    };
    let dist = |a: usize, b: usize| -> f64 {
        if a.abs_diff(b) <= 1 {
            0.0
        } else {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            bps[hi - 1] - bps[lo]
        }
    };
    let w = word_a.len();
    let sum: f64 = word_a
        .iter()
        .zip(word_b)
        .map(|(&a, &b)| {
            let d = dist(cell(a), cell(b));
            d * d
        })
        .sum();
    ((n as f64 / w as f64) * sum).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paa_means_windows() {
        let d = [1.0, 1.0, 3.0, 3.0];
        assert_eq!(paa(&d, 2), vec![1.0, 3.0]);
        assert_eq!(paa(&d, 4), vec![1.0, 1.0, 3.0, 3.0]);
        assert_eq!(paa(&d, 8), d.to_vec());
        assert!(paa(&[], 4).is_empty());
        assert!(paa(&d, 0).is_empty());
    }

    #[test]
    fn paa_uneven_split() {
        let d = [0.0, 0.0, 0.0, 6.0, 6.0];
        let p = paa(&d, 2);
        assert_eq!(p.len(), 2);
        // window assignment i*2/5: indices 0..=2 -> window 0, 3..=4 -> window 1
        assert_eq!(p[0], 0.0);
        assert_eq!(p[1], 6.0);
    }

    #[test]
    fn inverse_normal_known_values() {
        assert!(inverse_normal_cdf(0.5).abs() < 1e-9);
        assert!((inverse_normal_cdf(0.975) - 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.025) + 1.959964).abs() < 1e-5);
        assert!((inverse_normal_cdf(0.001) + 3.090232).abs() < 1e-5);
    }

    #[test]
    fn breakpoints_match_sax_table() {
        // Classic SAX table for alphabet size 4: -0.67, 0, 0.67.
        let bp = breakpoints(4);
        assert_eq!(bp.len(), 3);
        assert!((bp[0] + 0.6745).abs() < 1e-3);
        assert!(bp[1].abs() < 1e-9);
        assert!((bp[2] - 0.6745).abs() < 1e-3);
        // Size 3: -0.43, 0.43.
        let bp = breakpoints(3);
        assert!((bp[0] + 0.4307).abs() < 1e-3);
        assert!((bp[1] - 0.4307).abs() < 1e-3);
    }

    #[test]
    fn symbols_cover_alphabet() {
        let bps = breakpoints(3);
        assert_eq!(symbol_for(-10.0, &bps), 'a');
        assert_eq!(symbol_for(0.0, &bps), 'b');
        assert_eq!(symbol_for(10.0, &bps), 'c');
    }

    #[test]
    fn sax_word_of_sine_is_symmetric() {
        let data: Vec<f64> = (0..128)
            .map(|i| (i as f64 * std::f64::consts::TAU / 128.0).sin())
            .collect();
        let word = sax_word(&data, 8, 4);
        assert_eq!(word.len(), 8);
        // First half above mean, second half below.
        assert!(word[1] >= 'c');
        assert!(word[5] <= 'b');
    }

    #[test]
    fn constant_series_maps_to_middle_symbols() {
        let word = sax_word(&[5.0; 32], 4, 4);
        // z-normalized constant = 0 -> symbol 'c' (first cell >= 0 boundary).
        assert!(word.iter().all(|&c| c == 'c'));
    }

    #[test]
    fn mindist_properties() {
        let a: Vec<char> = "aabb".chars().collect();
        let b: Vec<char> = "aabb".chars().collect();
        let c: Vec<char> = "ddda".chars().collect();
        assert_eq!(mindist(&a, &b, 4, 64), 0.0);
        assert!(mindist(&a, &c, 4, 64) > 0.0);
        // Adjacent symbols have zero lower-bound distance.
        let d: Vec<char> = "bbcc".chars().collect();
        assert_eq!(mindist(&a, &d, 4, 64), 0.0);
    }

    #[test]
    #[should_panic]
    fn tiny_alphabet_panics() {
        let _ = breakpoints(1);
    }
}
