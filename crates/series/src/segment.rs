//! Linear segments fitted to time-series windows.

/// One linear segment over `data[start..end]` with its least-squares fit.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// First index (inclusive).
    pub start: usize,
    /// Last index (exclusive).
    pub end: usize,
    /// Fitted slope (per index step).
    pub slope: f64,
    /// Fitted value at `start`.
    pub intercept: f64,
    /// Residual sum of squares of the fit.
    pub error: f64,
}

impl Segment {
    /// Fits `data[start..end]` with least squares.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or out of bounds.
    pub fn fit(data: &[f64], start: usize, end: usize) -> Segment {
        assert!(start < end && end <= data.len(), "invalid segment range");
        let window = &data[start..end];
        let n = window.len() as f64;
        if window.len() == 1 {
            return Segment {
                start,
                end,
                slope: 0.0,
                intercept: window[0],
                error: 0.0,
            };
        }
        // x = 0..len within the window.
        let sum_x = (n - 1.0) * n / 2.0;
        let sum_x2 = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
        let sum_y: f64 = window.iter().sum();
        let sum_xy: f64 = window.iter().enumerate().map(|(i, y)| i as f64 * y).sum();
        let denom = n * sum_x2 - sum_x * sum_x;
        let slope = if denom.abs() < 1e-12 {
            0.0
        } else {
            (n * sum_xy - sum_x * sum_y) / denom
        };
        let intercept = (sum_y - slope * sum_x) / n;
        let error = window
            .iter()
            .enumerate()
            .map(|(i, y)| {
                let fit = intercept + slope * i as f64;
                (y - fit) * (y - fit)
            })
            .sum();
        Segment {
            start,
            end,
            slope,
            intercept,
            error,
        }
    }

    /// Number of points covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for zero-length segments (cannot be produced by [`Segment::fit`]).
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Fitted value at absolute index `i`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when `i` lies outside the segment.
    pub fn value_at(&self, i: usize) -> f64 {
        debug_assert!(i >= self.start && i < self.end);
        self.intercept + self.slope * (i - self.start) as f64
    }

    /// Mean fitted value over the segment.
    pub fn mean_value(&self) -> f64 {
        self.intercept + self.slope * (self.len() as f64 - 1.0) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_perfect_line_has_zero_error() {
        let data: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let s = Segment::fit(&data, 0, 10);
        assert!((s.slope - 2.0).abs() < 1e-9);
        assert!((s.intercept - 1.0).abs() < 1e-9);
        assert!(s.error < 1e-12);
        assert_eq!(s.len(), 10);
        assert!((s.value_at(3) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn fit_subrange_uses_local_x() {
        let data = [0.0, 0.0, 1.0, 2.0, 3.0];
        let s = Segment::fit(&data, 2, 5);
        assert!((s.slope - 1.0).abs() < 1e-9);
        assert!((s.intercept - 1.0).abs() < 1e-9);
        assert!((s.value_at(4) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn single_point_segment() {
        let s = Segment::fit(&[5.0, 9.0], 1, 2);
        assert_eq!(s.slope, 0.0);
        assert_eq!(s.intercept, 9.0);
        assert_eq!(s.error, 0.0);
    }

    #[test]
    fn constant_series_zero_slope() {
        let s = Segment::fit(&[4.0; 8], 0, 8);
        assert_eq!(s.slope, 0.0);
        assert_eq!(s.mean_value(), 4.0);
    }

    #[test]
    fn noisy_line_has_positive_error() {
        let data = [0.0, 1.2, 1.8, 3.1, 3.9];
        let s = Segment::fit(&data, 0, 5);
        assert!(s.error > 0.0);
        assert!(s.slope > 0.9 && s.slope < 1.1);
    }

    #[test]
    #[should_panic]
    fn invalid_range_panics() {
        let _ = Segment::fit(&[1.0], 1, 1);
    }
}
