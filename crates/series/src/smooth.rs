//! Smoothing filters applied before segmentation in branch α.

/// Centered moving average with the given odd-effective window.
///
/// Window edges shrink near the series boundaries so output length equals
/// input length. `window == 0` or `1` returns the input unchanged.
pub fn moving_average(data: &[f64], window: usize) -> Vec<f64> {
    if window <= 1 || data.is_empty() {
        return data.to_vec();
    }
    let half = window / 2;
    (0..data.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(data.len());
            data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect()
}

/// Exponential smoothing with factor `alpha` in `(0, 1]`.
///
/// `alpha == 1` returns the input unchanged; the first output equals the
/// first input.
///
/// # Panics
///
/// Panics in debug builds for `alpha` outside `(0, 1]`.
pub fn exponential(data: &[f64], alpha: f64) -> Vec<f64> {
    debug_assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
    let mut out = Vec::with_capacity(data.len());
    let mut state = None;
    for &x in data {
        let next = match state {
            None => x,
            Some(prev) => alpha * x + (1.0 - alpha) * prev,
        };
        out.push(next);
        state = Some(next);
    }
    out
}

/// Centered median filter; robust smoothing that preserves steps.
///
/// `window == 0` or `1` returns the input unchanged.
pub fn median_filter(data: &[f64], window: usize) -> Vec<f64> {
    if window <= 1 || data.is_empty() {
        return data.to_vec();
    }
    let half = window / 2;
    (0..data.len())
        .map(|i| {
            let lo = i.saturating_sub(half);
            let hi = (i + half + 1).min(data.len());
            crate::stats::median(&data[lo..hi])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moving_average_flattens_noise() {
        let data = [0.0, 2.0, 0.0, 2.0, 0.0, 2.0];
        let smoothed = moving_average(&data, 3);
        assert_eq!(smoothed.len(), data.len());
        // Interior points average to ~2/3..4/3 band.
        for &v in &smoothed[1..5] {
            assert!(v > 0.5 && v < 1.5);
        }
    }

    #[test]
    fn moving_average_window_one_is_identity() {
        let data = [1.0, 5.0, 9.0];
        assert_eq!(moving_average(&data, 1), data.to_vec());
        assert_eq!(moving_average(&data, 0), data.to_vec());
        assert!(moving_average(&[], 3).is_empty());
    }

    #[test]
    fn moving_average_preserves_constant() {
        assert_eq!(moving_average(&[4.0; 10], 5), vec![4.0; 10]);
    }

    #[test]
    fn exponential_tracks_level() {
        let out = exponential(&[10.0; 20], 0.3);
        assert!(out.iter().all(|&v| (v - 10.0).abs() < 1e-12));
        let out = exponential(&[0.0, 10.0], 0.5);
        assert_eq!(out, vec![0.0, 5.0]);
        let out = exponential(&[1.0, 2.0, 3.0], 1.0);
        assert_eq!(out, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn median_filter_removes_spike_keeps_step() {
        let mut data = vec![1.0; 11];
        data[5] = 100.0; // spike
        let out = median_filter(&data, 3);
        assert_eq!(out[5], 1.0);
        // Step preserved:
        let step: Vec<f64> = (0..10).map(|i| if i < 5 { 0.0 } else { 8.0 }).collect();
        let out = median_filter(&step, 3);
        assert_eq!(out[3], 0.0);
        assert_eq!(out[6], 8.0);
    }
}
