//! Basic descriptive statistics used by the other modules.

/// Arithmetic mean; `0.0` for empty input.
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    data.iter().sum::<f64>() / data.len() as f64
}

/// Population variance; `0.0` for fewer than two points.
pub fn variance(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    let m = mean(data);
    data.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64
}

/// Population standard deviation.
pub fn std_dev(data: &[f64]) -> f64 {
    variance(data).sqrt()
}

/// Median; `0.0` for empty input.
pub fn median(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        (sorted[n / 2 - 1] + sorted[n / 2]) / 2.0
    }
}

/// Linear-interpolated quantile `q` in `[0, 1]`; `0.0` for empty input.
///
/// # Panics
///
/// Panics in debug builds if `q` is outside `[0, 1]`.
pub fn quantile(data: &[f64], q: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&q), "quantile q must be in [0, 1]");
    if data.is_empty() {
        return 0.0;
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Median absolute deviation (scaled by 1.4826 to estimate σ under
/// normality).
pub fn mad(data: &[f64]) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let m = median(data);
    let deviations: Vec<f64> = data.iter().map(|x| (x - m).abs()).collect();
    1.4826 * median(&deviations)
}

/// Z-normalizes the series (mean 0, std 1); a constant series maps to zeros.
pub fn znormalize(data: &[f64]) -> Vec<f64> {
    let m = mean(data);
    let s = std_dev(data);
    if s < 1e-12 {
        return vec![0.0; data.len()];
    }
    data.iter().map(|x| (x - m) / s).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_std() {
        let d = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&d), 2.5);
        assert!((variance(&d) - 1.25).abs() < 1e-12);
        assert!((std_dev(&d) - 1.25f64.sqrt()).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[1.0]), 0.0);
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(median(&[]), 0.0);
    }

    #[test]
    fn quantiles() {
        let d = [0.0, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&d, 0.0), 0.0);
        assert_eq!(quantile(&d, 1.0), 4.0);
        assert_eq!(quantile(&d, 0.5), 2.0);
        assert_eq!(quantile(&d, 0.25), 1.0);
        assert_eq!(quantile(&d, 0.1), 0.4);
    }

    #[test]
    fn mad_robust_to_outlier() {
        let clean = [1.0, 2.0, 3.0, 4.0, 5.0];
        let dirty = [1.0, 2.0, 3.0, 4.0, 500.0];
        assert!((mad(&clean) - mad(&dirty)).abs() < 1e-9);
    }

    #[test]
    fn znormalize_properties() {
        let d = [1.0, 2.0, 3.0, 4.0, 5.0];
        let z = znormalize(&d);
        assert!(mean(&z).abs() < 1e-12);
        assert!((std_dev(&z) - 1.0).abs() < 1e-12);
        assert_eq!(znormalize(&[7.0, 7.0, 7.0]), vec![0.0, 0.0, 0.0]);
    }
}
