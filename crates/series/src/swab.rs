//! SWAB — Sliding-Window-And-Bottom-up time-series segmentation.
//!
//! Reimplementation of the online segmentation algorithm of Keogh, Chu,
//! Hart & Pazzani, *"An online algorithm for segmenting time series"*
//! (ICDM 2001), which the paper's branch α uses for trend estimation before
//! SAX symbolization.
//!
//! Bottom-up merging starts from fine 2-point segments and repeatedly merges
//! the pair whose merged least-squares fit is cheapest, while the merged
//! error stays under `max_error`. SWAB wraps bottom-up in a sliding buffer
//! so the algorithm works online over unbounded series while retaining
//! bottom-up's approximation quality.
//!
//! Two implementations share one arithmetic core:
//!
//! * [`bottom_up`] — O(n log n): incremental segment statistics (prefix sums
//!   of Σy, Σxy, Σy² make every candidate fit O(1)) and a lazy-deletion
//!   binary heap over merge costs, so each merge costs O(log n) instead of a
//!   full re-fit-and-rescan pass.
//! * [`bottom_up_naive`] — the retained O(n²) reference: the original
//!   fit-every-candidate / linear-min-scan structure.
//!
//! Both call the same [`FitTable`] for every candidate, so their costs are
//! bit-identical and they produce identical segment boundaries (asserted by
//! property tests in `tests/series_properties.rs`).

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::segment::Segment;

/// Prefix sums over a series enabling O(1) least-squares fits of any
/// sub-range. `x` is the absolute index; fits translate to the window-local
/// `x' = 0..len` frame used by [`Segment::fit`].
struct FitTable {
    /// `y[i]` = Σ data[..i].
    y: Vec<f64>,
    /// `xy[i]` = Σ j·data[j] for j < i.
    xy: Vec<f64>,
    /// `yy[i]` = Σ data[..i]².
    yy: Vec<f64>,
}

impl FitTable {
    fn new(data: &[f64]) -> FitTable {
        let n = data.len();
        let (mut y, mut xy, mut yy) = (
            Vec::with_capacity(n + 1),
            Vec::with_capacity(n + 1),
            Vec::with_capacity(n + 1),
        );
        let (mut sy, mut sxy, mut syy) = (0.0f64, 0.0f64, 0.0f64);
        y.push(0.0);
        xy.push(0.0);
        yy.push(0.0);
        for (i, &v) in data.iter().enumerate() {
            sy += v;
            sxy += i as f64 * v;
            syy += v * v;
            y.push(sy);
            xy.push(sxy);
            yy.push(syy);
        }
        FitTable { y, xy, yy }
    }

    /// Least-squares fit of `data[start..end]` in O(1).
    ///
    /// The residual error is canonicalized to `+0.0` when cancellation makes
    /// the closed form non-positive (or NaN), so the heap's `total_cmp`
    /// ordering and the naive scan's `<` comparison agree on ties.
    fn fit(&self, start: usize, end: usize) -> Segment {
        debug_assert!(start < end && end < self.y.len());
        let len = end - start;
        let sum_y = self.y[end] - self.y[start];
        if len == 1 {
            return Segment {
                start,
                end,
                slope: 0.0,
                intercept: sum_y,
                error: 0.0,
            };
        }
        let n = len as f64;
        // Translate absolute-x sums into the window-local frame x' = x - start.
        let sum_xy = (self.xy[end] - self.xy[start]) - start as f64 * sum_y;
        let sum_yy = self.yy[end] - self.yy[start];
        // x' = 0..len, so Σx' and Σx'² are closed-form.
        let sum_x = (n - 1.0) * n / 2.0;
        let sum_x2 = (n - 1.0) * n * (2.0 * n - 1.0) / 6.0;
        let denom = n * sum_x2 - sum_x * sum_x;
        let slope = if denom.abs() < 1e-12 {
            0.0
        } else {
            (n * sum_xy - sum_x * sum_y) / denom
        };
        let intercept = (sum_y - slope * sum_x) / n;
        // RSS = Σy² + n·a² + b²·Σx² − 2a·Σy − 2b·Σxy + 2ab·Σx  (a = intercept,
        // b = slope). Cancellation can push this a few ulps negative.
        let raw = sum_yy + n * intercept * intercept + slope * slope * sum_x2
            - 2.0 * intercept * sum_y
            - 2.0 * slope * sum_xy
            + 2.0 * intercept * slope * sum_x;
        let error = if raw > 0.0 { raw } else { 0.0 };
        Segment {
            start,
            end,
            slope,
            intercept,
            error,
        }
    }
}

/// Initial fine segmentation shared by both implementations: pairs, plus a
/// trailing singleton when the length is odd.
fn initial_pairs(fits: &FitTable, n: usize) -> Vec<Segment> {
    let mut segments: Vec<Segment> = (0..n / 2)
        .map(|i| fits.fit(2 * i, (2 * i + 2).min(n)))
        .collect();
    if n % 2 == 1 {
        segments.push(fits.fit(n - 1, n));
    }
    segments
}

/// One candidate merge in the heap: merging the node starting at `start`
/// with its current right neighbour would cost `cost`.
struct Cand {
    cost: f64,
    start: usize,
    /// Node ids of the pair, with the stamps they had at push time; a
    /// mismatch at pop time means the candidate is stale.
    left: usize,
    right: usize,
    stamp_left: u64,
    stamp_right: u64,
}

impl PartialEq for Cand {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Cand {}
impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Cand {
    /// Reversed so the std max-heap pops the *cheapest* candidate; ties
    /// break on the smaller start index — exactly the segment the naive
    /// left-to-right strict-`<` scan would select.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .cost
            .total_cmp(&self.cost)
            .then_with(|| other.start.cmp(&self.start))
    }
}

/// Bottom-up segmentation of an entire series in O(n log n).
///
/// Merges adjacent segments greedily while the merged segment's residual
/// error stays at or below `max_error`. Returns at least one segment for a
/// non-empty series; an empty series yields no segments.
///
/// Produces exactly the segments of [`bottom_up_naive`] (same boundaries,
/// same fits) — the two share their fit arithmetic, and the heap's
/// tie-breaking replicates the naive scan's leftmost-minimum selection.
pub fn bottom_up(data: &[f64], max_error: f64) -> Vec<Segment> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let fits = FitTable::new(data);
    if n == 1 {
        return vec![fits.fit(0, 1)];
    }
    let segments = initial_pairs(&fits, n);
    let m = segments.len();
    if m < 2 {
        return segments;
    }

    // Doubly-linked list over node ids 0..m; `stamp` bumps whenever a
    // node's extent changes or the node dies, invalidating older heap
    // entries lazily.
    let mut seg: Vec<Segment> = segments;
    let mut alive = vec![true; m];
    let mut stamp = vec![0u64; m];
    let mut prev: Vec<usize> = (0..m).map(|i| i.wrapping_sub(1)).collect();
    let mut next: Vec<usize> = (1..=m).collect();
    const NONE: usize = usize::MAX;
    prev[0] = NONE;
    next[m - 1] = NONE;

    let mut heap: BinaryHeap<Cand> = BinaryHeap::with_capacity(2 * m);
    let push =
        |heap: &mut BinaryHeap<Cand>, seg: &[Segment], stamp: &[u64], left: usize, right: usize| {
            let cost = fitted_cost(&fits, seg[left].start, seg[right].end);
            heap.push(Cand {
                cost,
                start: seg[left].start,
                left,
                right,
                stamp_left: stamp[left],
                stamp_right: stamp[right],
            });
        };
    for left in 0..m - 1 {
        push(&mut heap, &seg, &stamp, left, left + 1);
    }

    let mut remaining = m;
    while remaining > 1 {
        let Some(cand) = heap.pop() else { break };
        let (l, r) = (cand.left, cand.right);
        // Lazy deletion: skip candidates whose nodes changed since push.
        if !alive[l]
            || !alive[r]
            || stamp[l] != cand.stamp_left
            || stamp[r] != cand.stamp_right
            || next[l] != r
        {
            continue;
        }
        // The cheapest valid merge exceeds the budget, or the budget is
        // NaN: done (matches the naive loop's termination).
        if matches!(
            cand.cost.partial_cmp(&max_error),
            None | Some(std::cmp::Ordering::Greater)
        ) {
            break;
        }
        seg[l] = fits.fit(seg[l].start, seg[r].end);
        stamp[l] += 1;
        alive[r] = false;
        stamp[r] += 1;
        let rn = next[r];
        next[l] = rn;
        if rn != NONE {
            prev[rn] = l;
            push(&mut heap, &seg, &stamp, l, rn);
        }
        let lp = prev[l];
        if lp != NONE {
            push(&mut heap, &seg, &stamp, lp, l);
        }
        remaining -= 1;
    }

    (0..m)
        .filter(|&i| alive[i])
        .map(|i| seg[i].clone())
        .collect()
}

/// The cost of merging `[start, end)` — the merged fit's residual error.
/// One shared function so the heap and the naive scan compare identical
/// bits.
fn fitted_cost(fits: &FitTable, start: usize, end: usize) -> f64 {
    fits.fit(start, end).error
}

/// The retained O(n²) reference implementation of [`bottom_up`]: full
/// candidate re-fit and a linear minimum scan per merge, structurally the
/// original algorithm. It uses the same [`FitTable`] arithmetic as the heap
/// version, so both produce bit-identical segmentations; property tests
/// hold the fast path to this oracle.
pub fn bottom_up_naive(data: &[f64], max_error: f64) -> Vec<Segment> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let fits = FitTable::new(data);
    if n == 1 {
        return vec![fits.fit(0, 1)];
    }
    let mut segments = initial_pairs(&fits, n);
    loop {
        if segments.len() < 2 {
            break;
        }
        // Find the cheapest adjacent merge (leftmost wins ties).
        let mut best: Option<(usize, f64)> = None;
        for i in 0..segments.len() - 1 {
            let cost = fitted_cost(&fits, segments[i].start, segments[i + 1].end);
            if best.map(|(_, b)| cost < b).unwrap_or(true) {
                best = Some((i, cost));
            }
        }
        match best {
            Some((i, cost)) if cost <= max_error => {
                segments[i] = fits.fit(segments[i].start, segments[i + 1].end);
                segments.remove(i + 1);
            }
            _ => break,
        }
    }
    segments
}

/// Configuration for [`swab`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwabConfig {
    /// Maximum residual sum of squares allowed per merged segment.
    pub max_error: f64,
    /// Sliding buffer capacity in points (clamped to at least 4).
    pub buffer_len: usize,
}

impl Default for SwabConfig {
    fn default() -> Self {
        SwabConfig {
            max_error: 1.0,
            buffer_len: 64,
        }
    }
}

/// Shared SWAB driver, parameterized over the bottom-up kernel.
fn swab_with(
    data: &[f64],
    config: SwabConfig,
    bottom_up: impl Fn(&[f64], f64) -> Vec<Segment>,
) -> Vec<Segment> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let buffer_len = config.buffer_len.max(4);
    if n <= buffer_len {
        return bottom_up(data, config.max_error);
    }
    let mut out: Vec<Segment> = Vec::new();
    let mut lo = 0usize;
    loop {
        let hi = (lo + buffer_len).min(n);
        let window = &data[lo..hi];
        let mut segs = bottom_up(window, config.max_error);
        debug_assert!(!segs.is_empty());
        if hi == n {
            // Final buffer: emit everything.
            for s in segs {
                out.push(Segment {
                    start: s.start + lo,
                    end: s.end + lo,
                    ..s
                });
            }
            break;
        }
        // Emit only the leftmost segment, then slide past it.
        let first = segs.remove(0);
        let advance = first.len();
        out.push(Segment {
            start: first.start + lo,
            end: first.end + lo,
            ..first
        });
        lo += advance;
    }
    out
}

/// SWAB: online segmentation via a sliding buffer over [`bottom_up`].
///
/// Processes `data` through a buffer of `config.buffer_len` points: run
/// bottom-up on the buffer, emit its leftmost segment, slide the buffer past
/// it, refill, repeat. Segment indices refer to positions in `data`.
///
/// # Examples
///
/// ```
/// use ivnt_series::swab::{swab, SwabConfig};
///
/// // Two clear regimes: flat then rising.
/// let mut data = vec![0.0; 50];
/// data.extend((0..50).map(|i| i as f64));
/// let segments = swab(&data, SwabConfig { max_error: 2.0, buffer_len: 40 });
/// assert!(segments.len() >= 2);
/// // Segments tile the series exactly.
/// assert_eq!(segments.first().unwrap().start, 0);
/// assert_eq!(segments.last().unwrap().end, data.len());
/// ```
pub fn swab(data: &[f64], config: SwabConfig) -> Vec<Segment> {
    swab_with(data, config, bottom_up)
}

/// [`swab`] over the [`bottom_up_naive`] reference kernel — the oracle the
/// equivalence property tests and the `pipeline_e2e` bench compare against.
pub fn swab_naive(data: &[f64], config: SwabConfig) -> Vec<Segment> {
    swab_with(data, config, bottom_up_naive)
}

/// Verifies that segments tile `0..len` contiguously (test helper, also
/// used by property tests downstream).
pub fn is_contiguous(segments: &[Segment], len: usize) -> bool {
    if len == 0 {
        return segments.is_empty();
    }
    let mut expected = 0usize;
    for s in segments {
        if s.start != expected || s.end <= s.start {
            return false;
        }
        expected = s.end;
    }
    expected == len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(bottom_up(&[], 1.0).is_empty());
        let s = bottom_up(&[5.0], 1.0);
        assert_eq!(s.len(), 1);
        assert_eq!((s[0].start, s[0].end), (0, 1));
        assert!(swab(&[], SwabConfig::default()).is_empty());
        assert!(bottom_up_naive(&[], 1.0).is_empty());
        assert_eq!(bottom_up_naive(&[5.0], 1.0), s);
    }

    #[test]
    fn perfect_line_merges_to_one_segment() {
        let data: Vec<f64> = (0..40).map(|i| 0.5 * i as f64).collect();
        let segs = bottom_up(&data, 0.5);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].slope - 0.5).abs() < 1e-9);
    }

    #[test]
    fn step_function_splits_at_step() {
        let mut data = vec![0.0; 20];
        data.extend(vec![10.0; 20]);
        let segs = bottom_up(&data, 0.5);
        assert!(segs.len() >= 2);
        assert!(is_contiguous(&segs, data.len()));
        // Some boundary must fall exactly at the step.
        assert!(segs.iter().any(|s| s.end == 20 || s.start == 20));
    }

    #[test]
    fn zero_error_budget_keeps_fine_segments() {
        let data = [0.0, 5.0, 0.0, 5.0, 0.0, 5.0];
        let segs = bottom_up(&data, 0.0);
        assert!(is_contiguous(&segs, data.len()));
        assert!(segs.len() >= 3);
    }

    #[test]
    fn huge_error_budget_merges_everything() {
        let data: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let segs = bottom_up(&data, f64::INFINITY);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn swab_is_contiguous_and_matches_regimes() {
        let mut data = vec![1.0; 100];
        data.extend((0..100).map(|i| 1.0 + i as f64 * 0.8));
        data.extend(vec![81.0; 100]);
        let segs = swab(
            &data,
            SwabConfig {
                max_error: 2.0,
                buffer_len: 50,
            },
        );
        assert!(is_contiguous(&segs, data.len()));
        assert!(segs.len() >= 3);
    }

    #[test]
    fn swab_small_input_delegates_to_bottom_up() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = swab(
            &data,
            SwabConfig {
                max_error: 0.1,
                buffer_len: 64,
            },
        );
        let b = bottom_up(&data, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn segment_errors_within_budget_except_irreducible() {
        let data: Vec<f64> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    3.0
                } else {
                    (i as f64 * 0.1).sin()
                }
            })
            .collect();
        let budget = 0.8;
        let segs = swab(
            &data,
            SwabConfig {
                max_error: budget,
                buffer_len: 48,
            },
        );
        assert!(is_contiguous(&segs, data.len()));
        for s in &segs {
            // Merged segments obey the budget; irreducible 2-point pairs may not,
            // but a 2-point least-squares fit is exact, so all must comply except
            // possibly unmergeable minimal pieces, which are exact anyway.
            if s.len() > 2 {
                assert!(
                    s.error <= budget + 1e-9,
                    "segment error {} over budget",
                    s.error
                );
            }
        }
    }

    #[test]
    fn heap_matches_naive_reference() {
        let data: Vec<f64> = (0..257)
            .map(|i| (i as f64 * 0.13).sin() * 5.0 + if i % 11 == 0 { 2.0 } else { 0.0 })
            .collect();
        for budget in [0.0, 0.5, 3.0, f64::INFINITY] {
            assert_eq!(bottom_up(&data, budget), bottom_up_naive(&data, budget));
        }
        let cfg = SwabConfig {
            max_error: 1.5,
            buffer_len: 32,
        };
        assert_eq!(swab(&data, cfg), swab_naive(&data, cfg));
    }

    #[test]
    fn constant_series_matches_naive() {
        let data = vec![7.25; 97];
        assert_eq!(bottom_up(&data, 0.0), bottom_up_naive(&data, 0.0));
        assert_eq!(bottom_up(&data, 0.0).len(), 1);
    }

    #[test]
    fn tiny_inputs_match_naive() {
        for data in [
            vec![],
            vec![1.0],
            vec![1.0, 2.0],
            vec![1.0, 2.0, -4.0],
            vec![0.0, 0.0, 0.0],
        ] {
            for budget in [0.0, 1.0, f64::INFINITY] {
                assert_eq!(bottom_up(&data, budget), bottom_up_naive(&data, budget));
            }
        }
    }
}
