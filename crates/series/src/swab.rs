//! SWAB — Sliding-Window-And-Bottom-up time-series segmentation.
//!
//! Reimplementation of the online segmentation algorithm of Keogh, Chu,
//! Hart & Pazzani, *"An online algorithm for segmenting time series"*
//! (ICDM 2001), which the paper's branch α uses for trend estimation before
//! SAX symbolization.
//!
//! Bottom-up merging starts from fine 2-point segments and repeatedly merges
//! the pair whose merged least-squares fit is cheapest, while the merged
//! error stays under `max_error`. SWAB wraps bottom-up in a sliding buffer
//! so the algorithm works online over unbounded series while retaining
//! bottom-up's approximation quality.

use crate::segment::Segment;

/// Bottom-up segmentation of an entire series.
///
/// Merges adjacent segments greedily while the merged segment's residual
/// error stays at or below `max_error`. Returns at least one segment for a
/// non-empty series; an empty series yields no segments.
pub fn bottom_up(data: &[f64], max_error: f64) -> Vec<Segment> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    if n == 1 {
        return vec![Segment::fit(data, 0, 1)];
    }
    // Initial fine segmentation: pairs (last one may be a triple via merge).
    let mut segments: Vec<Segment> = (0..n / 2)
        .map(|i| Segment::fit(data, 2 * i, (2 * i + 2).min(n)))
        .collect();
    if n % 2 == 1 {
        segments.push(Segment::fit(data, n - 1, n));
    }

    loop {
        if segments.len() < 2 {
            break;
        }
        // Find the cheapest adjacent merge.
        let mut best: Option<(usize, Segment)> = None;
        for i in 0..segments.len() - 1 {
            let merged = Segment::fit(data, segments[i].start, segments[i + 1].end);
            if best
                .as_ref()
                .map(|(_, b)| merged.error < b.error)
                .unwrap_or(true)
            {
                best = Some((i, merged));
            }
        }
        match best {
            Some((i, merged)) if merged.error <= max_error => {
                segments[i] = merged;
                segments.remove(i + 1);
            }
            _ => break,
        }
    }
    segments
}

/// Configuration for [`swab`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwabConfig {
    /// Maximum residual sum of squares allowed per merged segment.
    pub max_error: f64,
    /// Sliding buffer capacity in points (clamped to at least 4).
    pub buffer_len: usize,
}

impl Default for SwabConfig {
    fn default() -> Self {
        SwabConfig {
            max_error: 1.0,
            buffer_len: 64,
        }
    }
}

/// SWAB: online segmentation via a sliding buffer over [`bottom_up`].
///
/// Processes `data` through a buffer of `config.buffer_len` points: run
/// bottom-up on the buffer, emit its leftmost segment, slide the buffer past
/// it, refill, repeat. Segment indices refer to positions in `data`.
///
/// # Examples
///
/// ```
/// use ivnt_series::swab::{swab, SwabConfig};
///
/// // Two clear regimes: flat then rising.
/// let mut data = vec![0.0; 50];
/// data.extend((0..50).map(|i| i as f64));
/// let segments = swab(&data, SwabConfig { max_error: 2.0, buffer_len: 40 });
/// assert!(segments.len() >= 2);
/// // Segments tile the series exactly.
/// assert_eq!(segments.first().unwrap().start, 0);
/// assert_eq!(segments.last().unwrap().end, data.len());
/// ```
pub fn swab(data: &[f64], config: SwabConfig) -> Vec<Segment> {
    let n = data.len();
    if n == 0 {
        return Vec::new();
    }
    let buffer_len = config.buffer_len.max(4);
    if n <= buffer_len {
        return bottom_up(data, config.max_error);
    }
    let mut out: Vec<Segment> = Vec::new();
    let mut lo = 0usize;
    loop {
        let hi = (lo + buffer_len).min(n);
        let window = &data[lo..hi];
        let mut segs = bottom_up(window, config.max_error);
        debug_assert!(!segs.is_empty());
        if hi == n {
            // Final buffer: emit everything.
            for s in segs {
                out.push(Segment {
                    start: s.start + lo,
                    end: s.end + lo,
                    ..s
                });
            }
            break;
        }
        // Emit only the leftmost segment, then slide past it.
        let first = segs.remove(0);
        let advance = first.len();
        out.push(Segment {
            start: first.start + lo,
            end: first.end + lo,
            ..first
        });
        lo += advance;
    }
    out
}

/// Verifies that segments tile `0..len` contiguously (test helper, also
/// used by property tests downstream).
pub fn is_contiguous(segments: &[Segment], len: usize) -> bool {
    if len == 0 {
        return segments.is_empty();
    }
    let mut expected = 0usize;
    for s in segments {
        if s.start != expected || s.end <= s.start {
            return false;
        }
        expected = s.end;
    }
    expected == len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton() {
        assert!(bottom_up(&[], 1.0).is_empty());
        let s = bottom_up(&[5.0], 1.0);
        assert_eq!(s.len(), 1);
        assert_eq!((s[0].start, s[0].end), (0, 1));
        assert!(swab(&[], SwabConfig::default()).is_empty());
    }

    #[test]
    fn perfect_line_merges_to_one_segment() {
        let data: Vec<f64> = (0..40).map(|i| 0.5 * i as f64).collect();
        let segs = bottom_up(&data, 0.5);
        assert_eq!(segs.len(), 1);
        assert!((segs[0].slope - 0.5).abs() < 1e-9);
    }

    #[test]
    fn step_function_splits_at_step() {
        let mut data = vec![0.0; 20];
        data.extend(vec![10.0; 20]);
        let segs = bottom_up(&data, 0.5);
        assert!(segs.len() >= 2);
        assert!(is_contiguous(&segs, data.len()));
        // Some boundary must fall exactly at the step.
        assert!(segs.iter().any(|s| s.end == 20 || s.start == 20));
    }

    #[test]
    fn zero_error_budget_keeps_fine_segments() {
        let data = [0.0, 5.0, 0.0, 5.0, 0.0, 5.0];
        let segs = bottom_up(&data, 0.0);
        assert!(is_contiguous(&segs, data.len()));
        assert!(segs.len() >= 3);
    }

    #[test]
    fn huge_error_budget_merges_everything() {
        let data: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let segs = bottom_up(&data, f64::INFINITY);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn swab_is_contiguous_and_matches_regimes() {
        let mut data = vec![1.0; 100];
        data.extend((0..100).map(|i| 1.0 + i as f64 * 0.8));
        data.extend(vec![81.0; 100]);
        let segs = swab(
            &data,
            SwabConfig {
                max_error: 2.0,
                buffer_len: 50,
            },
        );
        assert!(is_contiguous(&segs, data.len()));
        assert!(segs.len() >= 3);
    }

    #[test]
    fn swab_small_input_delegates_to_bottom_up() {
        let data: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let a = swab(
            &data,
            SwabConfig {
                max_error: 0.1,
                buffer_len: 64,
            },
        );
        let b = bottom_up(&data, 0.1);
        assert_eq!(a, b);
    }

    #[test]
    fn segment_errors_within_budget_except_irreducible() {
        let data: Vec<f64> = (0..200)
            .map(|i| {
                if i % 7 == 0 {
                    3.0
                } else {
                    (i as f64 * 0.1).sin()
                }
            })
            .collect();
        let budget = 0.8;
        let segs = swab(
            &data,
            SwabConfig {
                max_error: budget,
                buffer_len: 48,
            },
        );
        assert!(is_contiguous(&segs, data.len()));
        for s in &segs {
            // Merged segments obey the budget; irreducible 2-point pairs may not,
            // but a 2-point least-squares fit is exact, so all must comply except
            // possibly unmergeable minimal pieces, which are exact anyway.
            if s.len() > 2 {
                assert!(
                    s.error <= budget + 1e-9,
                    "segment error {} over budget",
                    s.error
                );
            }
        }
    }
}
