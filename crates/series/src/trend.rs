//! Trend classification (the gradient step of branch β, and the per-segment
//! trend labels of branch α).

use crate::segment::Segment;

/// Qualitative trend of a segment or series.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trend {
    /// Slope below `-threshold`.
    Decreasing,
    /// Slope within `±threshold`.
    Steady,
    /// Slope above `threshold`.
    Increasing,
}

impl std::fmt::Display for Trend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Trend::Decreasing => "decreasing",
            Trend::Steady => "steady",
            Trend::Increasing => "increasing",
        };
        f.write_str(s)
    }
}

/// Least-squares slope of the whole series (per index step); `0.0` for
/// fewer than two points.
pub fn gradient(data: &[f64]) -> f64 {
    if data.len() < 2 {
        return 0.0;
    }
    Segment::fit(data, 0, data.len()).slope
}

/// Classifies a slope against a non-negative threshold.
pub fn classify_slope(slope: f64, threshold: f64) -> Trend {
    if slope > threshold {
        Trend::Increasing
    } else if slope < -threshold {
        Trend::Decreasing
    } else {
        Trend::Steady
    }
}

/// Classifies a whole series by its least-squares gradient.
///
/// # Examples
///
/// ```
/// use ivnt_series::trend::{classify, Trend};
///
/// let accelerating: Vec<f64> = (0..50).map(|i| i as f64 * 0.8).collect();
/// assert_eq!(classify(&accelerating, 0.05), Trend::Increasing);
/// assert_eq!(classify(&[7.0; 50], 0.05), Trend::Steady);
/// ```
pub fn classify(data: &[f64], threshold: f64) -> Trend {
    classify_slope(gradient(data), threshold)
}

/// Classifies each fitted segment's slope.
pub fn classify_segments(segments: &[Segment], threshold: f64) -> Vec<Trend> {
    segments
        .iter()
        .map(|s| classify_slope(s.slope, threshold))
        .collect()
}

/// Point-wise discrete gradient (`x[i] - x[i-1]`; first element `0.0`).
pub fn point_gradient(data: &[f64]) -> Vec<f64> {
    if data.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(data.len());
    out.push(0.0);
    for w in data.windows(2) {
        out.push(w[1] - w[0]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gradient_of_ramp() {
        let data: Vec<f64> = (0..10).map(|i| 3.0 * i as f64).collect();
        assert!((gradient(&data) - 3.0).abs() < 1e-9);
        assert_eq!(gradient(&[5.0]), 0.0);
        assert_eq!(gradient(&[]), 0.0);
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(classify_slope(0.5, 0.1), Trend::Increasing);
        assert_eq!(classify_slope(-0.5, 0.1), Trend::Decreasing);
        assert_eq!(classify_slope(0.05, 0.1), Trend::Steady);
        assert_eq!(classify(&[1.0, 1.0, 1.0], 0.01), Trend::Steady);
        assert_eq!(
            classify(&(0..9).map(f64::from).collect::<Vec<_>>(), 0.1),
            Trend::Increasing
        );
    }

    #[test]
    fn segment_classification() {
        let data = [0.0, 1.0, 2.0, 2.0, 2.0, 2.0];
        let segs = vec![Segment::fit(&data, 0, 3), Segment::fit(&data, 3, 6)];
        let trends = classify_segments(&segs, 0.1);
        assert_eq!(trends, vec![Trend::Increasing, Trend::Steady]);
    }

    #[test]
    fn point_gradient_matches_diff() {
        assert_eq!(point_gradient(&[1.0, 3.0, 2.0]), vec![0.0, 2.0, -1.0]);
        assert!(point_gradient(&[]).is_empty());
    }

    #[test]
    fn display() {
        assert_eq!(Trend::Increasing.to_string(), "increasing");
    }
}
