//! Property tests for the time-series algorithms.

use ivnt_series::sax::{breakpoints, paa, sax_word, symbol_for};
use ivnt_series::segment::Segment;
use ivnt_series::smooth::{exponential, median_filter, moving_average};
use ivnt_series::stats;
use ivnt_series::swab::{bottom_up, bottom_up_naive, is_contiguous, swab, swab_naive, SwabConfig};
use ivnt_series::trend::{classify_slope, point_gradient, Trend};
use proptest::prelude::*;

fn arb_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1e3f64..1e3, 0..300)
}

/// Series drawn from a tiny integer alphabet, so equal merge costs (the
/// tie-breaking cases of the heap segmenter) occur constantly.
fn arb_tie_series() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-2i32..3, 0..200).prop_map(|v| v.into_iter().map(f64::from).collect())
}

proptest! {
    /// Segments always tile the series contiguously, for bottom-up and SWAB.
    #[test]
    fn segmentation_tiles_series(
        data in arb_series(),
        max_error in 0.0f64..100.0,
        buffer in 4usize..80,
    ) {
        let b = bottom_up(&data, max_error);
        prop_assert!(is_contiguous(&b, data.len()));
        let s = swab(&data, SwabConfig { max_error, buffer_len: buffer });
        prop_assert!(is_contiguous(&s, data.len()));
    }

    /// Merged (length > 2) segments never exceed the error budget.
    #[test]
    fn segments_respect_budget(data in arb_series(), max_error in 0.0f64..50.0) {
        for s in bottom_up(&data, max_error) {
            if s.len() > 2 {
                prop_assert!(s.error <= max_error + 1e-6);
            }
        }
    }

    /// A least-squares fit error never beats the fit of its own segment
    /// (regression sanity: recomputing gives the same error).
    #[test]
    fn segment_fit_is_deterministic(data in prop::collection::vec(-100f64..100.0, 2..50)) {
        let s1 = Segment::fit(&data, 0, data.len());
        let s2 = Segment::fit(&data, 0, data.len());
        prop_assert_eq!(s1, s2);
    }

    /// PAA output length is min(word_len, n) and preserves the global mean.
    #[test]
    fn paa_preserves_mean_for_divisible(
        word in 1usize..16,
        reps in 1usize..16,
        base in -100f64..100.0,
    ) {
        // Build a series whose length is word * reps so windows are equal.
        let data: Vec<f64> = (0..word * reps).map(|i| base + (i % 7) as f64).collect();
        let p = paa(&data, word);
        prop_assert_eq!(p.len(), word);
        let mean_p = stats::mean(&p);
        let mean_d = stats::mean(&data);
        prop_assert!((mean_p - mean_d).abs() < 1e-9);
    }

    /// SAX words only use the declared alphabet.
    #[test]
    fn sax_alphabet_respected(data in arb_series(), word in 1usize..12, alpha in 2usize..10) {
        let w = sax_word(&data, word, alpha);
        let max = (b'a' + alpha as u8 - 1) as char;
        prop_assert!(w.iter().all(|&c| c >= 'a' && c <= max));
    }

    /// Breakpoints are strictly increasing and symmetric.
    #[test]
    fn breakpoints_monotone_symmetric(alpha in 2usize..12) {
        let bp = breakpoints(alpha);
        prop_assert!(bp.windows(2).all(|w| w[0] < w[1]));
        for (lo, hi) in bp.iter().zip(bp.iter().rev()) {
            prop_assert!((lo + hi).abs() < 1e-9);
        }
    }

    /// symbol_for is monotone in its argument.
    #[test]
    fn symbols_monotone(a in -5f64..5.0, b in -5f64..5.0, alpha in 2usize..8) {
        let bp = breakpoints(alpha);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(symbol_for(lo, &bp) <= symbol_for(hi, &bp));
    }

    /// Smoothing preserves length and stays within data bounds.
    #[test]
    fn smoothing_bounded(data in prop::collection::vec(-100f64..100.0, 1..200), w in 0usize..9) {
        let lo = data.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = data.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        for out in [moving_average(&data, w), median_filter(&data, w), exponential(&data, 0.4)] {
            prop_assert_eq!(out.len(), data.len());
            prop_assert!(out.iter().all(|&v| v >= lo - 1e-9 && v <= hi + 1e-9));
        }
    }

    /// point_gradient sums to last - first.
    #[test]
    fn gradient_telescopes(data in prop::collection::vec(-100f64..100.0, 1..100)) {
        let g = point_gradient(&data);
        let sum: f64 = g.iter().sum();
        prop_assert!((sum - (data[data.len() - 1] - data[0])).abs() < 1e-6);
    }

    /// classify_slope partitions the real line.
    #[test]
    fn classification_total(slope in -10f64..10.0, thr in 0f64..5.0) {
        let t = classify_slope(slope, thr);
        match t {
            Trend::Increasing => prop_assert!(slope > thr),
            Trend::Decreasing => prop_assert!(slope < -thr),
            Trend::Steady => prop_assert!(slope.abs() <= thr),
        }
    }

    /// The heap bottom-up segmenter is bit-identical to the retained
    /// O(n²) reference — same segments, same fits, same errors — and its
    /// output is NaN-free for finite input.
    #[test]
    fn heap_bottom_up_matches_naive(data in arb_series(), max_error in 0.0f64..100.0) {
        let heap = bottom_up(&data, max_error);
        prop_assert_eq!(&heap, &bottom_up_naive(&data, max_error));
        let finite = heap
            .iter()
            .all(|s| s.slope.is_finite() && s.intercept.is_finite() && s.error.is_finite());
        prop_assert!(finite);
    }

    /// Same equivalence under heavy cost ties (tiny integer alphabet).
    #[test]
    fn heap_bottom_up_matches_naive_on_ties(
        data in arb_tie_series(),
        max_error in 0.0f64..5.0,
    ) {
        prop_assert_eq!(bottom_up(&data, max_error), bottom_up_naive(&data, max_error));
    }

    /// The windowed SWAB driver inherits the equivalence.
    #[test]
    fn heap_swab_matches_naive(
        data in arb_series(),
        max_error in 0.0f64..100.0,
        buffer in 4usize..80,
    ) {
        let config = SwabConfig { max_error, buffer_len: buffer };
        prop_assert_eq!(swab(&data, config), swab_naive(&data, config));
    }

    /// Constant series collapse identically on both paths, with exact
    /// zero-error fits.
    #[test]
    fn constant_series_matches_naive(
        v in -1e3f64..1e3,
        n in 0usize..200,
        max_error in 0.0f64..10.0,
    ) {
        let data = vec![v; n];
        let heap = bottom_up(&data, max_error);
        prop_assert_eq!(&heap, &bottom_up_naive(&data, max_error));
        prop_assert!(heap.iter().all(|s| s.error.is_finite()));
    }

    /// Degenerate inputs (n <= 3, below the first merge) agree too.
    #[test]
    fn tiny_inputs_match_naive(
        data in prop::collection::vec(-1e3f64..1e3, 0..4),
        max_error in 0.0f64..10.0,
    ) {
        prop_assert_eq!(bottom_up(&data, max_error), bottom_up_naive(&data, max_error));
    }

    /// Outlier masks have the series' length and all-clean data yields no
    /// z-score outliers at high threshold.
    #[test]
    fn outlier_mask_lengths(data in arb_series()) {
        use ivnt_series::outlier::*;
        prop_assert_eq!(zscore_outliers(&data, 3.0).len(), data.len());
        prop_assert_eq!(hampel_outliers(&data, 5, 3.0).len(), data.len());
        prop_assert_eq!(iqr_outliers(&data, 1.5).len(), data.len());
        prop_assert!(zscore_outliers(&data, 1e12).iter().all(|&m| !m));
    }
}
