//! ADAS object-list traffic: SOME/IP messages with presence-conditional
//! fields.
//!
//! Driver-assistance services publish detected objects over SOME/IP; the
//! payload carries a presence mask and only the fields that apply — the
//! "values of preceding bytes define the presence of a signal type in
//! succeeding bytes" case the paper calls out for interpretation rules
//! (Sec. 3.2).

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivnt_protocol::message::Protocol;
use ivnt_protocol::signal::SignalSpec;
use ivnt_protocol::someip::OptionalFieldLayout;

use crate::error::Result;
use crate::trace::{Trace, TraceRecord};

/// The object-list service description: layout plus per-field decode specs
/// (field-relative, i.e. bit positions within the field's bytes).
#[derive(Debug, Clone)]
pub struct ObjectListModel {
    /// Channel the service publishes on.
    pub bus: String,
    /// SOME/IP message id (plays `m_id`).
    pub message_id: u32,
    /// Optional-field layout: presence mask + field widths.
    pub layout: OptionalFieldLayout,
    /// One decode spec per field, rebased to the field's bytes.
    pub field_specs: Vec<SignalSpec>,
    /// Publication period in milliseconds.
    pub period_ms: u32,
}

/// The built-in object-detection service: three conditional fields.
///
/// | field | signal | width | coding |
/// |---|---|---|---|
/// | 0 | `obj_distance` | 2 B | `0.1 m/bit` — present while an object is tracked |
/// | 1 | `obj_rel_speed` | 2 B | signed, `0.05 m/s per bit` — present only while the object moves |
/// | 2 | `obj_class` | 1 B | enumeration — present while an object is tracked |
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn object_list() -> Result<ObjectListModel> {
    Ok(ObjectListModel {
        bus: "ETH".into(),
        message_id: 0x00D5_0001,
        layout: OptionalFieldLayout::new(vec![2, 2, 1]),
        field_specs: vec![
            SignalSpec::builder("obj_distance", 0, 16)
                .factor(0.1)
                .unit("m")
                .build()?,
            SignalSpec::builder("obj_rel_speed", 0, 16)
                .raw_kind(ivnt_protocol::signal::RawKind::Signed)
                .factor(0.05)
                .unit("m/s")
                .build()?,
            SignalSpec::builder("obj_class", 0, 8)
                .labels([
                    (0u64, "unknown"),
                    (1, "car"),
                    (2, "truck"),
                    (3, "pedestrian"),
                    (4, "cyclist"),
                ])
                .build()?,
        ],
        period_ms: 100,
    })
}

/// Generates the object-list trace for `duration_s` seconds.
///
/// Objects appear and disappear (tracked ~70% of the time); while tracked,
/// the distance and class fields are present, and the relative-speed field
/// is present only while the object actually moves — so field byte offsets
/// shift between instances, exactly the situation conditional rules handle.
///
/// # Errors
///
/// Propagates payload-encoding failures.
pub fn generate_object_trace(model: &ObjectListModel, duration_s: f64, seed: u64) -> Result<Trace> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0B1EC7);
    let mut trace = Trace::new();
    let bus: Arc<str> = Arc::from(model.bus.as_str());
    let period_us = model.period_ms as u64 * 1000;
    let duration_us = (duration_s * 1e6) as u64;

    let mut tracked = false;
    let mut next_toggle_us = 0u64;
    let mut distance = 50.0f64;
    let mut rel_speed = 0.0f64;
    let mut class_raw: u64 = 1;

    let mut t = 0u64;
    while t < duration_us {
        if t >= next_toggle_us {
            tracked = rng.gen_bool(0.7);
            next_toggle_us = t + rng.gen_range(2_000_000..8_000_000);
            if tracked {
                distance = rng.gen_range(5.0..120.0);
                rel_speed = rng.gen_range(-15.0..15.0);
                class_raw = rng.gen_range(0..5);
            }
        }
        let payload = if tracked {
            distance = (distance + rel_speed * model.period_ms as f64 / 1e3).clamp(1.0, 200.0);
            if rng.gen_bool(0.1) {
                rel_speed = rng.gen_range(-15.0..15.0);
            }
            let moving = rel_speed.abs() > 0.5;

            let mut dist_bytes = [0u8; 2];
            model.field_specs[0].encode(
                &mut dist_bytes,
                &ivnt_protocol::signal::PhysicalValue::Num((distance * 10.0).round() / 10.0),
            )?;
            let mut speed_bytes = [0u8; 2];
            model.field_specs[1].encode(
                &mut speed_bytes,
                &ivnt_protocol::signal::PhysicalValue::Num((rel_speed * 20.0).round() / 20.0),
            )?;
            let class_bytes = [class_raw as u8];

            let fields: Vec<Option<&[u8]>> = vec![
                Some(&dist_bytes[..]),
                moving.then_some(&speed_bytes[..]),
                Some(&class_bytes[..]),
            ];
            model.layout.encode(&fields)?
        } else {
            // No object: presence mask only.
            model.layout.encode(&[None, None, None])?
        };
        trace.push(TraceRecord {
            timestamp_us: t,
            bus: bus.clone(),
            message_id: model.message_id,
            payload,
            protocol: Protocol::SomeIp,
        });
        t += period_us;
    }
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_trace_has_shifting_offsets() {
        let model = object_list().unwrap();
        let trace = generate_object_trace(&model, 60.0, 9).unwrap();
        assert_eq!(trace.len(), 600);
        // All three presence patterns occur: empty, full, and no-speed.
        let masks: std::collections::HashSet<u8> = trace.iter().map(|r| r.payload[0]).collect();
        assert!(masks.contains(&0b000), "no-object instants missing");
        assert!(masks.contains(&0b111), "full instants missing");
        assert!(masks.contains(&0b101), "stationary-object instants missing");
    }

    #[test]
    fn fields_decode_at_dynamic_offsets() {
        let model = object_list().unwrap();
        let trace = generate_object_trace(&model, 30.0, 4).unwrap();
        let mut decoded_any = false;
        for r in trace.iter() {
            if let Some(bytes) = model.layout.decode_field(&r.payload, 2).unwrap() {
                let v = model.field_specs[2].decode(&bytes).unwrap();
                assert!(v.as_text().is_some());
                decoded_any = true;
            }
        }
        assert!(decoded_any);
    }

    #[test]
    fn deterministic_generation() {
        let model = object_list().unwrap();
        let a = generate_object_trace(&model, 10.0, 7).unwrap();
        let b = generate_object_trace(&model, 10.0, 7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn payload_sizes_vary_with_presence() {
        let model = object_list().unwrap();
        let trace = generate_object_trace(&model, 60.0, 9).unwrap();
        let sizes: std::collections::HashSet<usize> =
            trace.iter().map(|r| r.payload.len()).collect();
        // 1 (mask only), 4 (mask+dist+class), 6 (all fields).
        assert!(sizes.contains(&1));
        assert!(sizes.contains(&4));
        assert!(sizes.contains(&6));
    }
}
