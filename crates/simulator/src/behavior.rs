//! Signal behaviour models: what value a signal takes over time.
//!
//! Behaviours are deterministic given the master seed: each signal's random
//! state is derived from the scenario seed and the signal name, so
//! regenerating a scenario reproduces the identical trace (the paper's
//! "preserving determinism" requirement extends to the data substitute).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivnt_protocol::signal::PhysicalValue;

/// Time-dependent value generator for one signal.
#[derive(Debug, Clone, PartialEq)]
pub enum Behavior {
    /// Always the same value.
    Constant(PhysicalValue),
    /// `offset + amplitude * sin(2π t / period_s)` — fast numeric (α class).
    Sine {
        /// Peak deviation from `offset`.
        amplitude: f64,
        /// Period in seconds.
        period_s: f64,
        /// Mid-level.
        offset: f64,
    },
    /// Sawtooth ramp from `from` to `to` every `period_s` — fast numeric.
    Ramp {
        /// Start value of every period.
        from: f64,
        /// End value of every period.
        to: f64,
        /// Period in seconds.
        period_s: f64,
    },
    /// Bounded random walk — fast numeric with irregular shape.
    RandomWalk {
        /// Initial level.
        start: f64,
        /// Maximum per-emission step magnitude.
        step: f64,
        /// Lower clamp.
        min: f64,
        /// Upper clamp.
        max: f64,
    },
    /// Slow numeric level switching between a few discrete levels
    /// (ordinal / β class when levels > 2).
    SteppedLevel {
        /// The levels cycled through (pseudo-randomly).
        levels: Vec<f64>,
        /// Mean dwell time per level in seconds.
        mean_dwell_s: f64,
    },
    /// Labelled state machine dwelling in each state (γ nominal when
    /// labels > 2, binary when exactly 2; β ordinal when labels are ranked).
    StateMachine {
        /// State labels.
        labels: Vec<String>,
        /// Mean dwell time per state in seconds.
        mean_dwell_s: f64,
    },
    /// Monotone counter modulo `modulo` incrementing per emission
    /// (e.g. alive counters).
    Counter {
        /// Wrap-around value.
        modulo: u64,
    },
    /// A journey profile: cycles through `(duration_s, behaviour)` phases —
    /// e.g. city driving, highway cruising, parking — each with its own
    /// dynamics.
    Phased {
        /// The phases, visited in order and repeated.
        phases: Vec<(f64, Behavior)>,
    },
}

/// Mutable evaluation state for one signal's behaviour.
#[derive(Debug, Clone)]
pub struct BehaviorState {
    rng: StdRng,
    derived_seed: u64,
    emissions: u64,
    level_idx: usize,
    walk: f64,
    next_switch_s: f64,
    initialized: bool,
    /// Per-phase sub-states for [`Behavior::Phased`], created on demand.
    children: Vec<BehaviorState>,
}

impl BehaviorState {
    /// Creates the evaluation state for a signal, deriving its private RNG
    /// from `seed` and the signal name.
    pub fn new(seed: u64, signal_name: &str) -> BehaviorState {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in signal_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        BehaviorState::from_seed(seed ^ h)
    }

    fn from_seed(derived_seed: u64) -> BehaviorState {
        BehaviorState {
            rng: StdRng::seed_from_u64(derived_seed),
            derived_seed,
            emissions: 0,
            level_idx: 0,
            walk: f64::NAN,
            next_switch_s: 0.0,
            initialized: false,
            children: Vec::new(),
        }
    }

    /// Sub-state for phase `i`, derived deterministically.
    fn child(&mut self, i: usize) -> &mut BehaviorState {
        while self.children.len() <= i {
            let n = self.children.len() as u64;
            let child = BehaviorState::from_seed(
                self.derived_seed ^ (n + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            self.children.push(child);
        }
        &mut self.children[i]
    }
}

impl Behavior {
    /// Evaluates the behaviour at time `t_s`, advancing `state`.
    ///
    /// Callers must evaluate with non-decreasing timestamps per signal.
    pub fn value_at(&self, t_s: f64, state: &mut BehaviorState) -> PhysicalValue {
        state.emissions += 1;
        match self {
            Behavior::Constant(v) => v.clone(),
            Behavior::Sine {
                amplitude,
                period_s,
                offset,
            } => PhysicalValue::Num(
                offset + amplitude * (std::f64::consts::TAU * t_s / period_s).sin(),
            ),
            Behavior::Ramp { from, to, period_s } => {
                let phase = (t_s / period_s).fract();
                PhysicalValue::Num(from + (to - from) * phase)
            }
            Behavior::RandomWalk {
                start,
                step,
                min,
                max,
            } => {
                if !state.initialized {
                    state.walk = *start;
                    state.initialized = true;
                }
                let delta = state.rng.gen_range(-step..=*step);
                state.walk = (state.walk + delta).clamp(*min, *max);
                PhysicalValue::Num(state.walk)
            }
            Behavior::SteppedLevel {
                levels,
                mean_dwell_s,
            } => {
                debug_assert!(!levels.is_empty());
                self.maybe_switch(t_s, state, levels.len(), *mean_dwell_s);
                PhysicalValue::Num(levels[state.level_idx])
            }
            Behavior::StateMachine {
                labels,
                mean_dwell_s,
            } => {
                debug_assert!(!labels.is_empty());
                self.maybe_switch(t_s, state, labels.len(), *mean_dwell_s);
                PhysicalValue::Text(labels[state.level_idx].clone())
            }
            Behavior::Counter { modulo } => {
                PhysicalValue::Num(((state.emissions - 1) % (*modulo).max(1)) as f64)
            }
            Behavior::Phased { phases } => {
                debug_assert!(!phases.is_empty());
                let total: f64 = phases.iter().map(|(d, _)| d.max(1e-9)).sum();
                let mut offset = t_s % total;
                let mut idx = 0usize;
                for (i, (d, _)) in phases.iter().enumerate() {
                    let d = d.max(1e-9);
                    if offset < d {
                        idx = i;
                        break;
                    }
                    offset -= d;
                    idx = i;
                }
                let behavior = phases[idx].1.clone();
                behavior.value_at(t_s, state.child(idx))
            }
        }
    }

    fn maybe_switch(&self, t_s: f64, state: &mut BehaviorState, n: usize, mean_dwell_s: f64) {
        if !state.initialized {
            state.initialized = true;
            state.level_idx = state.rng.gen_range(0..n);
            state.next_switch_s = t_s + sample_dwell(&mut state.rng, mean_dwell_s);
        }
        while t_s >= state.next_switch_s {
            if n > 1 {
                // Move to a different state (uniform over the others).
                let offset = state.rng.gen_range(1..n);
                state.level_idx = (state.level_idx + offset) % n;
            }
            state.next_switch_s += sample_dwell(&mut state.rng, mean_dwell_s);
        }
    }

    /// `true` when the behaviour produces text labels.
    pub fn is_textual(&self) -> bool {
        match self {
            Behavior::StateMachine { .. } => true,
            Behavior::Constant(PhysicalValue::Text(_)) => true,
            Behavior::Phased { phases } => phases.iter().any(|(_, b)| b.is_textual()),
            _ => false,
        }
    }
}

fn sample_dwell(rng: &mut StdRng, mean_s: f64) -> f64 {
    // Exponential dwell with the given mean, floored to avoid zero-length dwells.
    let u: f64 = rng.gen_range(1e-6..1.0);
    (-u.ln() * mean_s).max(mean_s * 0.05)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(name: &str) -> BehaviorState {
        BehaviorState::new(42, name)
    }

    #[test]
    fn constant_and_sine() {
        let b = Behavior::Constant(PhysicalValue::Num(5.0));
        assert_eq!(b.value_at(0.0, &mut state("c")), PhysicalValue::Num(5.0));
        let b = Behavior::Sine {
            amplitude: 2.0,
            period_s: 1.0,
            offset: 10.0,
        };
        assert_eq!(b.value_at(0.0, &mut state("s")), PhysicalValue::Num(10.0));
        let v = b.value_at(0.25, &mut state("s")).as_num().unwrap();
        assert!((v - 12.0).abs() < 1e-9);
    }

    #[test]
    fn ramp_wraps() {
        let b = Behavior::Ramp {
            from: 0.0,
            to: 100.0,
            period_s: 10.0,
        };
        let mut s = state("r");
        assert_eq!(b.value_at(5.0, &mut s).as_num(), Some(50.0));
        assert_eq!(b.value_at(15.0, &mut s).as_num(), Some(50.0));
    }

    #[test]
    fn random_walk_stays_bounded_and_deterministic() {
        let b = Behavior::RandomWalk {
            start: 50.0,
            step: 5.0,
            min: 0.0,
            max: 100.0,
        };
        let mut s1 = state("w");
        let mut s2 = state("w");
        for i in 0..500 {
            let t = i as f64 * 0.01;
            let v1 = b.value_at(t, &mut s1).as_num().unwrap();
            let v2 = b.value_at(t, &mut s2).as_num().unwrap();
            assert_eq!(v1, v2);
            assert!((0.0..=100.0).contains(&v1));
        }
    }

    #[test]
    fn different_signals_get_different_streams() {
        let b = Behavior::RandomWalk {
            start: 50.0,
            step: 5.0,
            min: 0.0,
            max: 100.0,
        };
        let mut sa = state("a");
        let mut sb = state("b");
        let va: Vec<f64> = (0..20)
            .map(|i| b.value_at(i as f64, &mut sa).as_num().unwrap())
            .collect();
        let vb: Vec<f64> = (0..20)
            .map(|i| b.value_at(i as f64, &mut sb).as_num().unwrap())
            .collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn state_machine_dwells_and_switches() {
        let b = Behavior::StateMachine {
            labels: vec!["driving".into(), "parking".into()],
            mean_dwell_s: 1.0,
        };
        let mut s = state("st");
        let labels: Vec<String> = (0..200)
            .map(|i| {
                b.value_at(i as f64 * 0.1, &mut s)
                    .as_text()
                    .unwrap()
                    .to_string()
            })
            .collect();
        // Both states visited over 20 s with 1 s dwell.
        assert!(labels.iter().any(|l| l == "driving"));
        assert!(labels.iter().any(|l| l == "parking"));
        // Runs exist (not flipping every sample).
        let flips = labels.windows(2).filter(|w| w[0] != w[1]).count();
        assert!(flips < 100, "too many flips: {flips}");
    }

    #[test]
    fn stepped_level_uses_given_levels() {
        let levels = vec![0.0, 2.0, 4.0, 6.0];
        let b = Behavior::SteppedLevel {
            levels: levels.clone(),
            mean_dwell_s: 0.5,
        };
        let mut s = state("lvl");
        for i in 0..100 {
            let v = b.value_at(i as f64 * 0.1, &mut s).as_num().unwrap();
            assert!(levels.contains(&v));
        }
    }

    #[test]
    fn counter_wraps() {
        let b = Behavior::Counter { modulo: 4 };
        let mut s = state("cnt");
        let vals: Vec<f64> = (0..6)
            .map(|i| b.value_at(i as f64, &mut s).as_num().unwrap())
            .collect();
        assert_eq!(vals, vec![0.0, 1.0, 2.0, 3.0, 0.0, 1.0]);
    }

    #[test]
    fn textual_flag() {
        assert!(Behavior::StateMachine {
            labels: vec!["a".into()],
            mean_dwell_s: 1.0
        }
        .is_textual());
        assert!(!Behavior::Counter { modulo: 2 }.is_textual());
    }
}

#[cfg(test)]
mod phased_tests {
    use super::*;

    #[test]
    fn phases_switch_dynamics() {
        // City (slow walk around 30) for 10 s, then highway (walk around
        // 120) for 10 s, repeating.
        let b = Behavior::Phased {
            phases: vec![
                (
                    10.0,
                    Behavior::RandomWalk {
                        start: 30.0,
                        step: 0.5,
                        min: 0.0,
                        max: 60.0,
                    },
                ),
                (
                    10.0,
                    Behavior::RandomWalk {
                        start: 120.0,
                        step: 0.5,
                        min: 80.0,
                        max: 160.0,
                    },
                ),
            ],
        };
        let mut s = BehaviorState::new(9, "speed");
        let city: Vec<f64> = (0..50)
            .map(|i| b.value_at(i as f64 * 0.1, &mut s).as_num().unwrap())
            .collect();
        let highway: Vec<f64> = (0..50)
            .map(|i| b.value_at(10.0 + i as f64 * 0.1, &mut s).as_num().unwrap())
            .collect();
        assert!(city.iter().all(|&v| v <= 60.0));
        assert!(highway.iter().all(|&v| v >= 80.0));
    }

    #[test]
    fn phases_cycle() {
        let b = Behavior::Phased {
            phases: vec![
                (1.0, Behavior::Constant(PhysicalValue::Num(1.0))),
                (1.0, Behavior::Constant(PhysicalValue::Num(2.0))),
            ],
        };
        let mut s = BehaviorState::new(1, "x");
        assert_eq!(b.value_at(0.5, &mut s).as_num(), Some(1.0));
        assert_eq!(b.value_at(1.5, &mut s).as_num(), Some(2.0));
        assert_eq!(b.value_at(2.5, &mut s).as_num(), Some(1.0)); // wrapped
        assert_eq!(b.value_at(3.5, &mut s).as_num(), Some(2.0));
    }

    #[test]
    fn phased_is_deterministic() {
        let b = Behavior::Phased {
            phases: vec![
                (
                    5.0,
                    Behavior::RandomWalk {
                        start: 0.0,
                        step: 1.0,
                        min: -10.0,
                        max: 10.0,
                    },
                ),
                (
                    5.0,
                    Behavior::StateMachine {
                        labels: vec!["a".into(), "b".into()],
                        mean_dwell_s: 1.0,
                    },
                ),
            ],
        };
        let run = || {
            let mut s = BehaviorState::new(3, "sig");
            (0..100)
                .map(|i| format!("{}", b.value_at(i as f64 * 0.2, &mut s)))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn phased_textual_flag() {
        let textual = Behavior::Phased {
            phases: vec![(
                1.0,
                Behavior::StateMachine {
                    labels: vec!["x".into()],
                    mean_dwell_s: 1.0,
                },
            )],
        };
        assert!(textual.is_textual());
        let numeric = Behavior::Phased {
            phases: vec![(1.0, Behavior::Counter { modulo: 4 })],
        };
        assert!(!numeric.is_textual());
    }
}
