//! Error type for the simulator.

use std::fmt;

/// Result alias used throughout [`ivnt_simulator`](crate).
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by trace generation and (de)serialization.
#[derive(Debug)]
pub enum Error {
    /// Protocol-level failure while encoding a payload.
    Protocol(ivnt_protocol::Error),
    /// Trace I/O failure.
    Io(std::io::Error),
    /// Malformed trace file.
    Format(String),
    /// Inconsistent simulation setup.
    InvalidScenario(String),
    /// Failure in the chunked columnar journey store.
    Store(ivnt_store::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Protocol(e) => write!(f, "protocol error: {e}"),
            Error::Io(e) => write!(f, "trace i/o error: {e}"),
            Error::Format(msg) => write!(f, "malformed trace: {msg}"),
            Error::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            Error::Store(e) => write!(f, "journey store error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Protocol(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ivnt_protocol::Error> for Error {
    fn from(e: ivnt_protocol::Error) -> Self {
        Error::Protocol(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<ivnt_store::Error> for Error {
    fn from(e: ivnt_store::Error) -> Self {
        Error::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        let e = Error::Format("bad magic".into());
        assert_eq!(e.to_string(), "malformed trace: bad magic");
        assert!(e.source().is_none());
        let e = Error::from(ivnt_protocol::Error::InvalidBitLength(0));
        assert!(e.source().is_some());
    }
}
