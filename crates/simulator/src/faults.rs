//! Fault injection.
//!
//! The paper's downstream applications hunt for exactly these anomalies:
//! outliers as potential errors, violations of expected cycle times, and
//! invalid/validity-flag events. The simulator plants them at known
//! positions so tests and experiments can assert they are found.

use ivnt_protocol::signal::PhysicalValue;

/// One planted fault.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// Suppresses the cyclic emissions of a message within a time window,
    /// producing a temporal gap larger than the nominal cycle time.
    CycleViolation {
        /// Channel of the affected message.
        bus: String,
        /// Message identifier.
        message_id: u32,
        /// Window start (seconds).
        from_s: f64,
        /// Window end (seconds).
        to_s: f64,
    },
    /// Forces a numeric signal to an implausible spike value for a window.
    OutlierSpike {
        /// Affected signal.
        signal: String,
        /// Window start (seconds).
        at_s: f64,
        /// Window length (seconds).
        duration_s: f64,
        /// Spike value.
        value: f64,
    },
    /// Freezes a numeric signal at a constant value for a window.
    StuckSignal {
        /// Affected signal.
        signal: String,
        /// Window start (seconds).
        from_s: f64,
        /// Window end (seconds).
        to_s: f64,
        /// Frozen value.
        value: f64,
    },
    /// Forces an enumerated signal to a given label (e.g. `"invalid"`).
    ForcedLabel {
        /// Affected signal.
        signal: String,
        /// Window start (seconds).
        at_s: f64,
        /// Window length (seconds).
        duration_s: f64,
        /// Forced label.
        label: String,
    },
}

/// The set of faults planted into one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Creates an empty (fault-free) plan.
    pub fn new() -> FaultPlan {
        FaultPlan::default()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: Fault) -> FaultPlan {
        self.faults.push(fault);
        self
    }

    /// The planted faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }

    /// `true` if an emission of `(bus, message_id)` at `t_s` must be
    /// suppressed by a [`Fault::CycleViolation`].
    pub fn suppresses(&self, bus: &str, message_id: u32, t_s: f64) -> bool {
        self.faults.iter().any(|f| match f {
            Fault::CycleViolation {
                bus: b,
                message_id: id,
                from_s,
                to_s,
            } => b == bus && *id == message_id && t_s >= *from_s && t_s < *to_s,
            _ => false,
        })
    }

    /// Applies value-level faults to a freshly generated signal value.
    pub fn apply(&self, signal: &str, t_s: f64, value: PhysicalValue) -> PhysicalValue {
        let mut out = value;
        for f in &self.faults {
            match f {
                Fault::OutlierSpike {
                    signal: s,
                    at_s,
                    duration_s,
                    value: v,
                } if s == signal && t_s >= *at_s && t_s < at_s + duration_s => {
                    out = PhysicalValue::Num(*v);
                }
                Fault::StuckSignal {
                    signal: s,
                    from_s,
                    to_s,
                    value: v,
                } if s == signal && t_s >= *from_s && t_s < *to_s => {
                    out = PhysicalValue::Num(*v);
                }
                Fault::ForcedLabel {
                    signal: s,
                    at_s,
                    duration_s,
                    label,
                } if s == signal && t_s >= *at_s && t_s < at_s + duration_s => {
                    out = PhysicalValue::Text(label.clone());
                }
                _ => {}
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_violation_window() {
        let plan = FaultPlan::new().with(Fault::CycleViolation {
            bus: "FC".into(),
            message_id: 3,
            from_s: 1.0,
            to_s: 2.0,
        });
        assert!(!plan.suppresses("FC", 3, 0.5));
        assert!(plan.suppresses("FC", 3, 1.5));
        assert!(!plan.suppresses("FC", 3, 2.0));
        assert!(!plan.suppresses("FC", 4, 1.5));
        assert!(!plan.suppresses("DC", 3, 1.5));
    }

    #[test]
    fn spike_and_stuck_override() {
        let plan = FaultPlan::new()
            .with(Fault::OutlierSpike {
                signal: "speed".into(),
                at_s: 10.0,
                duration_s: 0.1,
                value: 800.0,
            })
            .with(Fault::StuckSignal {
                signal: "speed".into(),
                from_s: 20.0,
                to_s: 25.0,
                value: 42.0,
            });
        assert_eq!(
            plan.apply("speed", 10.05, PhysicalValue::Num(50.0)),
            PhysicalValue::Num(800.0)
        );
        assert_eq!(
            plan.apply("speed", 22.0, PhysicalValue::Num(50.0)),
            PhysicalValue::Num(42.0)
        );
        assert_eq!(
            plan.apply("speed", 5.0, PhysicalValue::Num(50.0)),
            PhysicalValue::Num(50.0)
        );
        assert_eq!(
            plan.apply("rpm", 10.05, PhysicalValue::Num(1.0)),
            PhysicalValue::Num(1.0)
        );
    }

    #[test]
    fn forced_label() {
        let plan = FaultPlan::new().with(Fault::ForcedLabel {
            signal: "belt".into(),
            at_s: 3.0,
            duration_s: 1.0,
            label: "invalid".into(),
        });
        assert_eq!(
            plan.apply("belt", 3.5, PhysicalValue::Text("ON".into())),
            PhysicalValue::Text("invalid".into())
        );
        assert_eq!(
            plan.apply("belt", 4.5, PhysicalValue::Text("ON".into())),
            PhysicalValue::Text("ON".into())
        );
    }

    #[test]
    fn later_faults_win() {
        let plan = FaultPlan::new()
            .with(Fault::StuckSignal {
                signal: "x".into(),
                from_s: 0.0,
                to_s: 10.0,
                value: 1.0,
            })
            .with(Fault::OutlierSpike {
                signal: "x".into(),
                at_s: 5.0,
                duration_s: 1.0,
                value: 999.0,
            });
        assert_eq!(
            plan.apply("x", 5.5, PhysicalValue::Num(0.0)),
            PhysicalValue::Num(999.0)
        );
    }
}
