//! Vehicle function models: realistic message/signal sets with behaviours.
//!
//! Each model bundles the messages a function exchanges (as they would be
//! documented in the vehicle's communication matrix) with behaviours
//! generating realistic trajectories. The wiper and lights models mirror
//! the paper's running examples (Fig. 2 and Table 4).

use ivnt_protocol::bits::ByteOrder;
use ivnt_protocol::message::{MessageSpec, Protocol};
use ivnt_protocol::signal::{PhysicalValue, SignalSpec};

use crate::behavior::Behavior;
use crate::error::Result;
use crate::network::NetworkModel;

/// A function's contribution to the network: message specs plus signal
/// behaviours.
#[derive(Debug, Clone)]
pub struct FunctionModel {
    /// Function name (for documentation/grouping).
    pub name: String,
    /// Messages the function sends.
    pub messages: Vec<MessageSpec>,
    /// Behaviour per signal name.
    pub behaviors: Vec<(String, Behavior)>,
}

impl NetworkModel {
    /// Installs a function model: registers its messages in the catalog and
    /// its behaviours in the network.
    ///
    /// # Errors
    ///
    /// Propagates catalog conflicts (duplicate message ids or signal names).
    pub fn add_function(&mut self, function: FunctionModel) -> Result<()> {
        for m in function.messages {
            self.catalog_mut().add_message(m)?;
        }
        for (signal, behavior) in function.behaviors {
            self.set_behavior(signal, behavior);
        }
        Ok(())
    }
}

/// The wiper function (the paper's Fig. 2 example): position and velocity
/// on FA-CAN, wiper type on LIN, wiper status on SOME/IP.
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn wiper() -> Result<FunctionModel> {
    let status = MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
        .dlc(4)
        .cycle_time_ms(100)
        .signal(
            SignalSpec::builder("wpos", 0, 16)
                .factor(0.5)
                .unit("deg")
                .build()?,
        )
        .signal(
            SignalSpec::builder("wvel", 16, 16)
                .unit("rad/min")
                .build()?,
        )
        .build()?;
    let kind = MessageSpec::builder(11, "WiperType", "K-LIN", Protocol::Lin)
        .dlc(1)
        .cycle_time_ms(1000)
        .signal(
            SignalSpec::builder("wtype", 0, 4)
                .labels([(0u64, "front"), (1, "rear"), (2, "combined")])
                .build()?,
        )
        .build()?;
    let stat = MessageSpec::builder(212, "WiperService", "ETH", Protocol::SomeIp)
        .dlc(24)
        .cycle_time_ms(200)
        .signal(
            SignalSpec::builder("wstat", 80, 8)
                .labels([
                    (0u64, "idle"),
                    (1, "wiping"),
                    (2, "interval"),
                    (3, "washing"),
                    (255, "invalid"),
                ])
                .build()?,
        )
        .build()?;
    Ok(FunctionModel {
        name: "wiper".into(),
        messages: vec![status, kind, stat],
        behaviors: vec![
            (
                "wpos".into(),
                Behavior::Sine {
                    amplitude: 60.0,
                    period_s: 3.0,
                    offset: 90.0,
                },
            ),
            (
                "wvel".into(),
                Behavior::SteppedLevel {
                    levels: vec![0.0, 1.0, 2.0],
                    mean_dwell_s: 15.0,
                },
            ),
            (
                "wtype".into(),
                Behavior::Constant(PhysicalValue::Text("front".into())),
            ),
            (
                "wstat".into(),
                Behavior::StateMachine {
                    labels: vec![
                        "idle".into(),
                        "wiping".into(),
                        "interval".into(),
                        "washing".into(),
                    ],
                    mean_dwell_s: 20.0,
                },
            ),
        ],
    })
}

/// The lights function (the paper's Table 4 state-representation example).
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn lights() -> Result<FunctionModel> {
    let state = MessageSpec::builder(40, "LightState", "DC", Protocol::Can)
        .dlc(8)
        .cycle_time_ms(200)
        .signal(
            SignalSpec::builder("headlight", 0, 2)
                .labels([(0u64, "off"), (1, "parklight on"), (2, "headlight on")])
                .build()?,
        )
        .signal(
            SignalSpec::builder("indicatorlight", 2, 2)
                .labels([(0u64, "off"), (1, "left on"), (2, "right on")])
                .build()?,
        )
        .signal(
            SignalSpec::builder("brightness", 8, 8)
                .factor(0.5)
                .unit("%")
                .build()?,
        )
        .build()?;
    let controls = MessageSpec::builder(41, "LightControls", "DC", Protocol::Can)
        .dlc(2)
        .cycle_time_ms(100)
        .signal(
            SignalSpec::builder("levercontrol", 0, 2)
                .labels([(0u64, "default"), (1, "pushed up"), (2, "pushed down")])
                .build()?,
        )
        .signal(
            SignalSpec::builder("lightswitch", 2, 2)
                .labels([(0u64, "default"), (1, "turned halfway"), (2, "turned full")])
                .build()?,
        )
        .build()?;
    Ok(FunctionModel {
        name: "lights".into(),
        messages: vec![state, controls],
        behaviors: vec![
            (
                "headlight".into(),
                Behavior::StateMachine {
                    labels: vec!["off".into(), "parklight on".into(), "headlight on".into()],
                    mean_dwell_s: 30.0,
                },
            ),
            (
                "indicatorlight".into(),
                Behavior::StateMachine {
                    labels: vec!["off".into(), "left on".into(), "right on".into()],
                    mean_dwell_s: 8.0,
                },
            ),
            (
                "brightness".into(),
                Behavior::RandomWalk {
                    start: 60.0,
                    step: 1.0,
                    min: 0.0,
                    max: 100.0,
                },
            ),
            (
                "levercontrol".into(),
                Behavior::StateMachine {
                    labels: vec!["default".into(), "pushed up".into(), "pushed down".into()],
                    mean_dwell_s: 10.0,
                },
            ),
            (
                "lightswitch".into(),
                Behavior::StateMachine {
                    labels: vec![
                        "default".into(),
                        "turned halfway".into(),
                        "turned full".into(),
                    ],
                    mean_dwell_s: 25.0,
                },
            ),
        ],
    })
}

/// The drivetrain: fast numeric signals (speed, rpm, pedal) plus the gear.
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn drivetrain() -> Result<FunctionModel> {
    let dynamics = MessageSpec::builder(80, "Dynamics", "PT", Protocol::Can)
        .dlc(8)
        .cycle_time_ms(20)
        .signal(
            SignalSpec::builder("speed", 0, 16)
                .factor(0.01)
                .unit("km/h")
                .build()?,
        )
        .signal(
            SignalSpec::builder("rpm", 16, 16)
                .factor(0.25)
                .unit("1/min")
                .build()?,
        )
        .signal(
            SignalSpec::builder("pedal", 32, 8)
                .factor(0.4)
                .unit("%")
                .build()?,
        )
        .build()?;
    let gearbox = MessageSpec::builder(81, "Gearbox", "PT", Protocol::Can)
        .dlc(1)
        .cycle_time_ms(500)
        .signal(SignalSpec::builder("gear", 0, 4).build()?)
        .build()?;
    Ok(FunctionModel {
        name: "drivetrain".into(),
        messages: vec![dynamics, gearbox],
        behaviors: vec![
            (
                "speed".into(),
                Behavior::RandomWalk {
                    start: 50.0,
                    step: 0.8,
                    min: 0.0,
                    max: 250.0,
                },
            ),
            (
                "rpm".into(),
                Behavior::Sine {
                    amplitude: 1500.0,
                    period_s: 60.0,
                    offset: 2500.0,
                },
            ),
            (
                "pedal".into(),
                Behavior::RandomWalk {
                    start: 20.0,
                    step: 2.0,
                    min: 0.0,
                    max: 100.0,
                },
            ),
            (
                "gear".into(),
                Behavior::SteppedLevel {
                    levels: (0..=8).map(f64::from).collect(),
                    mean_dwell_s: 12.0,
                },
            ),
        ],
    })
}

/// Body and car-state signals: belt, doors, driving state, alive counter.
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn body() -> Result<FunctionModel> {
    let state = MessageSpec::builder(120, "CarState", "BC", Protocol::Can)
        .dlc(4)
        .cycle_time_ms(250)
        .signal(
            SignalSpec::builder("state", 0, 2)
                .labels([(0u64, "parking"), (1, "standby"), (2, "driving")])
                .build()?,
        )
        .signal(
            SignalSpec::builder("belt", 2, 1)
                .labels([(0u64, "OFF"), (1, "ON")])
                .build()?,
        )
        .signal(
            SignalSpec::builder("door_fl", 3, 1)
                .labels([(0u64, "closed"), (1, "open")])
                .build()?,
        )
        .signal(
            SignalSpec::builder("alive", 8, 8)
                .byte_order(ByteOrder::Intel)
                .build()?,
        )
        .build()?;
    Ok(FunctionModel {
        name: "body".into(),
        messages: vec![state],
        behaviors: vec![
            (
                "state".into(),
                Behavior::StateMachine {
                    labels: vec!["parking".into(), "standby".into(), "driving".into()],
                    mean_dwell_s: 60.0,
                },
            ),
            (
                "belt".into(),
                Behavior::StateMachine {
                    labels: vec!["OFF".into(), "ON".into()],
                    mean_dwell_s: 90.0,
                },
            ),
            (
                "door_fl".into(),
                Behavior::StateMachine {
                    labels: vec!["closed".into(), "open".into()],
                    mean_dwell_s: 120.0,
                },
            ),
            ("alive".into(), Behavior::Counter { modulo: 256 }),
        ],
    })
}

/// Climate signals on LIN: ordinal heat level, fan stage, cabin temperature.
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn climate() -> Result<FunctionModel> {
    let clima = MessageSpec::builder(20, "Climate", "K-LIN", Protocol::Lin)
        .dlc(4)
        .cycle_time_ms(500)
        .signal(
            SignalSpec::builder("heat", 0, 2)
                .labels([(0u64, "low"), (1, "medium"), (2, "high")])
                .build()?,
        )
        .signal(SignalSpec::builder("fan_stage", 2, 3).build()?)
        .signal(
            SignalSpec::builder("temp_inside", 8, 8)
                .factor(0.5)
                .offset(-20.0)
                .unit("C")
                .build()?,
        )
        .build()?;
    Ok(FunctionModel {
        name: "climate".into(),
        messages: vec![clima],
        behaviors: vec![
            (
                "heat".into(),
                Behavior::StateMachine {
                    labels: vec!["low".into(), "medium".into(), "high".into()],
                    mean_dwell_s: 45.0,
                },
            ),
            (
                "fan_stage".into(),
                Behavior::SteppedLevel {
                    levels: (0..=5).map(f64::from).collect(),
                    mean_dwell_s: 30.0,
                },
            ),
            (
                "temp_inside".into(),
                Behavior::RandomWalk {
                    start: 21.0,
                    step: 0.1,
                    min: 15.0,
                    max: 30.0,
                },
            ),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlan;
    use ivnt_protocol::catalog::Catalog;

    fn full_vehicle() -> NetworkModel {
        let mut n = NetworkModel::new(Catalog::new());
        for f in [wiper(), lights(), drivetrain(), body(), climate()] {
            n.add_function(f.unwrap()).unwrap();
        }
        n.auto_senders();
        n
    }

    #[test]
    fn all_functions_install_cleanly() {
        let n = full_vehicle();
        assert_eq!(n.catalog().num_messages(), 9);
        assert!(n.catalog().num_signals() >= 18);
    }

    #[test]
    fn full_vehicle_simulates() {
        let n = full_vehicle();
        let trace = n.simulate(5.0, 3, &FaultPlan::new()).unwrap();
        assert!(trace.len() > 300, "got {} records", trace.len());
        // Every record decodes through the catalog.
        for r in trace.iter().take(500) {
            let spec = n.resolve(&r.bus, r.message_id).unwrap();
            spec.decode_all(&r.payload).unwrap();
        }
    }

    #[test]
    fn wiper_signals_behave_physically() {
        let n = full_vehicle();
        let trace = n.simulate(6.0, 3, &FaultPlan::new()).unwrap();
        let spec = n.catalog().message("FC", 3).unwrap();
        let wpos = spec.signal("wpos").unwrap();
        let positions: Vec<f64> = trace
            .iter()
            .filter(|r| r.bus.as_ref() == "FC" && r.message_id == 3)
            .map(|r| wpos.decode(&r.payload).unwrap().as_num().unwrap())
            .collect();
        assert!(positions.len() > 50);
        assert!(positions.iter().all(|&p| (0.0..=180.0).contains(&p)));
        let spread = positions.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - positions.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(spread > 60.0, "wiper should sweep, spread {spread}");
    }

    #[test]
    fn function_duplicate_rejected() {
        let mut n = NetworkModel::new(Catalog::new());
        n.add_function(wiper().unwrap()).unwrap();
        assert!(n.add_function(wiper().unwrap()).is_err());
    }

    #[test]
    fn someip_signal_decodes_with_labels() {
        let n = full_vehicle();
        let trace = n.simulate(2.0, 3, &FaultPlan::new()).unwrap();
        let rec = trace
            .iter()
            .find(|r| r.bus.as_ref() == "ETH")
            .expect("SOME/IP records present");
        let spec = n.resolve("ETH", 212).unwrap();
        let v = spec.signal("wstat").unwrap().decode(&rec.payload).unwrap();
        assert!(v.as_text().is_some());
    }
}

/// A camera ECU publishing lane data on CAN FD (32-byte payload): exercises
/// the FD frame path end to end.
///
/// # Errors
///
/// Propagates spec-building failures (none for the built-in geometry).
pub fn camera() -> Result<FunctionModel> {
    let lanes = MessageSpec::builder(200, "LaneData", "FD", Protocol::CanFd)
        .dlc(32)
        .cycle_time_ms(50)
        .signal(
            SignalSpec::builder("lane_offset", 0, 16)
                .raw_kind(ivnt_protocol::signal::RawKind::Signed)
                .factor(0.001)
                .unit("m")
                .build()?,
        )
        .signal(
            SignalSpec::builder("lane_curvature", 16, 16)
                .raw_kind(ivnt_protocol::signal::RawKind::Signed)
                .factor(0.0001)
                .unit("1/m")
                .build()?,
        )
        .signal(
            SignalSpec::builder("lane_quality", 32, 8)
                .labels([(0u64, "none"), (1, "low"), (2, "medium"), (3, "high")])
                .build()?,
        )
        .signal(SignalSpec::builder("lane_count", 40, 4).build()?)
        // Wide diagnostic blob occupying the FD-only payload region.
        .signal(
            SignalSpec::builder("cam_exposure", 128, 16)
                .factor(0.01)
                .unit("ms")
                .build()?,
        )
        .build()?;
    Ok(FunctionModel {
        name: "camera".into(),
        messages: vec![lanes],
        behaviors: vec![
            (
                "lane_offset".into(),
                Behavior::Sine {
                    amplitude: 0.8,
                    period_s: 12.0,
                    offset: 0.0,
                },
            ),
            (
                "lane_curvature".into(),
                Behavior::RandomWalk {
                    start: 0.0,
                    step: 0.002,
                    min: -1.0,
                    max: 1.0,
                },
            ),
            (
                "lane_quality".into(),
                Behavior::StateMachine {
                    labels: vec!["none".into(), "low".into(), "medium".into(), "high".into()],
                    mean_dwell_s: 25.0,
                },
            ),
            (
                "lane_count".into(),
                Behavior::SteppedLevel {
                    levels: vec![1.0, 2.0, 3.0],
                    mean_dwell_s: 40.0,
                },
            ),
            (
                "cam_exposure".into(),
                Behavior::RandomWalk {
                    start: 16.0,
                    step: 0.3,
                    min: 1.0,
                    max: 60.0,
                },
            ),
        ],
    })
}

#[cfg(test)]
mod camera_tests {
    use super::*;
    use crate::faults::FaultPlan;
    use ivnt_protocol::catalog::Catalog;

    #[test]
    fn camera_runs_on_can_fd() {
        let mut n = NetworkModel::new(Catalog::new());
        n.add_function(camera().unwrap()).unwrap();
        n.auto_senders();
        let trace = n.simulate(2.0, 6, &FaultPlan::new()).unwrap();
        assert!(trace.len() >= 38);
        let rec = trace.iter().next().unwrap();
        assert_eq!(rec.protocol, ivnt_protocol::message::Protocol::CanFd);
        assert_eq!(rec.payload.len(), 32);
        let spec = n.catalog().message("FD", 200).unwrap();
        let decoded = spec.decode_all(&rec.payload).unwrap();
        assert_eq!(decoded.len(), 5);
    }

    #[test]
    fn signed_fd_signals_roundtrip_negative_values() {
        let mut n = NetworkModel::new(Catalog::new());
        n.add_function(camera().unwrap()).unwrap();
        n.auto_senders();
        let trace = n.simulate(15.0, 6, &FaultPlan::new()).unwrap();
        let spec = n.catalog().message("FD", 200).unwrap();
        let offset = spec.signal("lane_offset").unwrap();
        let values: Vec<f64> = trace
            .iter()
            .map(|r| offset.decode(&r.payload).unwrap().as_num().unwrap())
            .collect();
        assert!(values.iter().any(|&v| v < -0.1), "sine should go negative");
        assert!(values.iter().any(|&v| v > 0.1));
    }
}
