//! # ivnt-simulator — in-vehicle network and trace simulator
//!
//! The data substitute of the DAC'18 reproduction. The paper evaluates on
//! proprietary BMW fleet recordings (20 h of driving, 1.5 TB/day across 500
//! cars); this crate synthesizes traces with the same observable structure:
//!
//! * ECUs emitting **cyclic and event-driven messages** on CAN / LIN /
//!   SOME/IP channels ([`network`]),
//! * signal trajectories from realistic [`behavior`] models (sine sweeps,
//!   bounded random walks, dwelling state machines, counters),
//! * **gateways** re-transmitting messages across channels — the source of
//!   the duplicate signal instances Algorithm 1's dedup step exploits,
//! * **fault injection** ([`faults`]): cycle-time violations, outlier
//!   spikes, stuck signals, forced invalid labels,
//! * the recorded byte sequence `K_b` as a [`trace::Trace`] with a compact
//!   binary format,
//! * [`scenario`] generators reproducing the *shape* of the paper's
//!   SYN / LIG / STA data sets (Table 5) and multi-journey workloads
//!   (Table 6), plus hand-modelled [`functions`] (wiper, lights,
//!   drivetrain, body, climate) for the qualitative examples.
//!
//! Everything is deterministic under a fixed seed.
//!
//! # Examples
//!
//! ```
//! use ivnt_simulator::scenario::{generate, DataSetSpec};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let data = generate(&DataSetSpec::syn().with_duration_s(2.0))?;
//! assert_eq!(data.signal_classes.len(), 13); // Table 5: SYN has 13 signal types
//! assert!(!data.trace.is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod adas;
pub mod behavior;
pub mod error;
pub mod faults;
pub mod functions;
pub mod network;
pub mod scenario;
pub mod stats;
pub mod store;
pub mod trace;

pub use behavior::{Behavior, BehaviorState};
pub use error::{Error, Result};
pub use faults::{Fault, FaultPlan};
pub use network::{GatewayRoute, NetworkModel, Sender};
pub use scenario::{generate, journeys, BranchHint, DataSetSpec, GeneratedDataSet};
pub use trace::{Trace, TraceRecord};

/// Convenient glob import of the simulator's common types.
pub mod prelude {
    pub use crate::behavior::Behavior;
    pub use crate::faults::{Fault, FaultPlan};
    pub use crate::network::{GatewayRoute, NetworkModel, Sender};
    pub use crate::scenario::{generate, journeys, BranchHint, DataSetSpec, GeneratedDataSet};
    pub use crate::trace::{Trace, TraceRecord};
}
