//! The simulated in-vehicle network: ECUs, buses, gateways.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ivnt_protocol::catalog::Catalog;
use ivnt_protocol::message::MessageSpec;
use ivnt_protocol::signal::PhysicalValue;

use crate::behavior::{Behavior, BehaviorState};
use crate::error::{Error, Result};
use crate::faults::FaultPlan;
use crate::trace::{Trace, TraceRecord};

/// A gateway forwarding rule: selected messages of one channel are
/// re-transmitted on another channel (with a small forwarding delay).
///
/// Forwarding is what makes identical signal instances appear on multiple
/// channels in the trace — the redundancy exploited by Algorithm 1's
/// equality check `e` (line 9).
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayRoute {
    /// Source channel.
    pub from_bus: String,
    /// Destination channel.
    pub to_bus: String,
    /// Forwarded message identifiers.
    pub message_ids: Vec<u32>,
    /// Forwarding latency in microseconds.
    pub delay_us: u64,
}

/// Emission schedule for one message type.
#[derive(Debug, Clone, PartialEq)]
pub struct Sender {
    /// Channel the message is sent on.
    pub bus: String,
    /// Message identifier.
    pub message_id: u32,
    /// Nominal period in microseconds.
    pub period_us: u64,
    /// Uniform jitter magnitude in microseconds (`± jitter_us`).
    pub jitter_us: u64,
    /// First emission offset in microseconds.
    pub phase_us: u64,
}

/// The complete simulated vehicle network: communication catalog, signal
/// behaviours, emission schedules and gateway topology.
///
/// # Examples
///
/// ```
/// use ivnt_simulator::prelude::*;
/// use ivnt_protocol::prelude::*;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut catalog = Catalog::new();
/// catalog.add_message(
///     MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
///         .dlc(4)
///         .cycle_time_ms(500)
///         .signal(SignalSpec::builder("wpos", 0, 16).factor(0.5).build()?)
///         .build()?,
/// )?;
/// let mut network = NetworkModel::new(catalog);
/// network.set_behavior("wpos", Behavior::Sine { amplitude: 45.0, period_s: 4.0, offset: 90.0 });
/// network.auto_senders();
/// let trace = network.simulate(10.0, 7, &FaultPlan::new())?;
/// assert!(trace.len() >= 19); // ~20 emissions in 10 s at 500 ms
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    catalog: Catalog,
    behaviors: HashMap<String, Behavior>,
    senders: Vec<Sender>,
    gateways: Vec<GatewayRoute>,
}

impl NetworkModel {
    /// Creates a network over the given communication catalog.
    pub fn new(catalog: Catalog) -> NetworkModel {
        NetworkModel {
            catalog,
            behaviors: HashMap::new(),
            senders: Vec::new(),
            gateways: Vec::new(),
        }
    }

    /// The communication catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog (for installing function models).
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The gateway topology.
    pub fn gateways(&self) -> &[GatewayRoute] {
        &self.gateways
    }

    /// The emission schedules.
    pub fn senders(&self) -> &[Sender] {
        &self.senders
    }

    /// Assigns the behaviour generating a signal's values.
    pub fn set_behavior(&mut self, signal: impl Into<String>, behavior: Behavior) {
        self.behaviors.insert(signal.into(), behavior);
    }

    /// Behaviour of a signal, if assigned.
    pub fn behavior(&self, signal: &str) -> Option<&Behavior> {
        self.behaviors.get(signal)
    }

    /// Adds a gateway forwarding route.
    pub fn add_gateway(&mut self, route: GatewayRoute) {
        self.gateways.push(route);
    }

    /// Adds an explicit emission schedule.
    pub fn add_sender(&mut self, sender: Sender) {
        self.senders.push(sender);
    }

    /// Creates one cyclic sender per catalog message from its declared
    /// cycle time (messages without one get a 1 s default), with phases
    /// staggered so buses do not burst at t = 0.
    pub fn auto_senders(&mut self) {
        for (i, m) in self.catalog.messages().iter().enumerate() {
            let period_ms = m.cycle_time_ms().unwrap_or(1000);
            let period_us = period_ms as u64 * 1000;
            self.senders.push(Sender {
                bus: m.bus().to_string(),
                message_id: m.id(),
                period_us,
                jitter_us: period_us / 50,
                phase_us: (i as u64 * 137) % period_us.max(1),
            });
        }
    }

    /// Channels a message is observable on: its home bus plus every gateway
    /// destination forwarding it.
    pub fn channels_of(&self, message: &MessageSpec) -> Vec<String> {
        let mut out = vec![message.bus().to_string()];
        for g in &self.gateways {
            if g.from_bus == message.bus() && g.message_ids.contains(&message.id()) {
                out.push(g.to_bus.clone());
            }
        }
        out
    }

    /// Resolves a recorded `(bus, id)` pair to its defining message spec,
    /// following gateway routes for forwarded copies.
    pub fn resolve(&self, bus: &str, message_id: u32) -> Option<&MessageSpec> {
        if let Ok(m) = self.catalog.message(bus, message_id) {
            return Some(m);
        }
        for g in &self.gateways {
            if g.to_bus == bus && g.message_ids.contains(&message_id) {
                if let Ok(m) = self.catalog.message(&g.from_bus, message_id) {
                    return Some(m);
                }
            }
        }
        None
    }

    /// Runs the simulation for `duration_s` seconds with the given seed and
    /// fault plan, producing the recorded trace `K_b` (time-sorted).
    ///
    /// The same `(model, duration, seed, faults)` always produces the
    /// identical trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] when a sender references an
    /// unknown message or a signal lacks a behaviour, and propagates payload
    /// encoding failures.
    pub fn simulate(&self, duration_s: f64, seed: u64, faults: &FaultPlan) -> Result<Trace> {
        let duration_us = (duration_s * 1e6) as u64;
        let mut trace = Trace::new();
        let mut bus_cache: HashMap<String, Arc<str>> = HashMap::new();
        let intern = |name: &str, cache: &mut HashMap<String, Arc<str>>| -> Arc<str> {
            cache
                .entry(name.to_string())
                .or_insert_with(|| Arc::from(name))
                .clone()
        };

        for (si, sender) in self.senders.iter().enumerate() {
            let spec = self
                .catalog
                .message(&sender.bus, sender.message_id)
                .map_err(|_| {
                    Error::InvalidScenario(format!(
                        "sender {} references unknown message {} on {}",
                        si, sender.message_id, sender.bus
                    ))
                })?;
            let mut states: Vec<(&str, &Behavior, BehaviorState)> = Vec::new();
            for s in spec.signals() {
                let behavior = self.behaviors.get(s.name()).ok_or_else(|| {
                    Error::InvalidScenario(format!("signal {} has no behaviour", s.name()))
                })?;
                states.push((s.name(), behavior, BehaviorState::new(seed, s.name())));
            }
            let mut jitter_rng = StdRng::seed_from_u64(
                seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(si as u64 + 1)),
            );
            let bus: Arc<str> = intern(&sender.bus, &mut bus_cache);
            let routes: Vec<(Arc<str>, u64)> = self
                .gateways
                .iter()
                .filter(|g| g.from_bus == sender.bus && g.message_ids.contains(&sender.message_id))
                .map(|g| (intern(&g.to_bus, &mut bus_cache), g.delay_us))
                .collect();

            let mut t = sender.phase_us;
            while t < duration_us {
                let jitter: i64 = if sender.jitter_us > 0 {
                    jitter_rng.gen_range(-(sender.jitter_us as i64)..=sender.jitter_us as i64)
                } else {
                    0
                };
                let t_emit = t.saturating_add_signed(jitter);
                let t_s = t_emit as f64 / 1e6;
                // Behaviours advance even for suppressed emissions so a
                // cycle violation leaves a gap, not a time shift.
                let mut values: Vec<(&str, PhysicalValue)> = Vec::with_capacity(states.len());
                for (name, behavior, state) in states.iter_mut() {
                    let v = behavior.value_at(t_s, state);
                    values.push((name, faults.apply(name, t_s, v)));
                }
                if !faults.suppresses(&sender.bus, sender.message_id, t_s) {
                    let payload = spec.encode(&values)?;
                    trace.push(TraceRecord {
                        timestamp_us: t_emit,
                        bus: bus.clone(),
                        message_id: sender.message_id,
                        payload: payload.clone(),
                        protocol: spec.protocol(),
                    });
                    for (to_bus, delay) in &routes {
                        trace.push(TraceRecord {
                            timestamp_us: t_emit + delay,
                            bus: to_bus.clone(),
                            message_id: sender.message_id,
                            payload: payload.clone(),
                            protocol: spec.protocol(),
                        });
                    }
                }
                t += sender.period_us.max(1);
            }
        }
        trace.sort_by_time();
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::Fault;
    use ivnt_protocol::message::Protocol;
    use ivnt_protocol::signal::SignalSpec;

    fn wiper_network() -> NetworkModel {
        let mut catalog = Catalog::new();
        catalog
            .add_message(
                MessageSpec::builder(3, "WiperStatus", "FC", Protocol::Can)
                    .dlc(4)
                    .cycle_time_ms(100)
                    .signal(
                        SignalSpec::builder("wpos", 0, 16)
                            .factor(0.5)
                            .build()
                            .unwrap(),
                    )
                    .signal(SignalSpec::builder("wvel", 16, 16).build().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let mut n = NetworkModel::new(catalog);
        n.set_behavior(
            "wpos",
            Behavior::Sine {
                amplitude: 45.0,
                period_s: 2.0,
                offset: 90.0,
            },
        );
        n.set_behavior("wvel", Behavior::Constant(PhysicalValue::Num(1.0)));
        n.auto_senders();
        n
    }

    #[test]
    fn simulate_emits_cyclically() {
        let n = wiper_network();
        let trace = n.simulate(1.0, 1, &FaultPlan::new()).unwrap();
        // 100 ms cycle over 1 s -> ~10 emissions.
        assert!(trace.len() >= 9 && trace.len() <= 11, "got {}", trace.len());
        // Time sorted.
        let times: Vec<u64> = trace.iter().map(|r| r.timestamp_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn simulation_is_deterministic() {
        let n = wiper_network();
        let a = n.simulate(2.0, 99, &FaultPlan::new()).unwrap();
        let b = n.simulate(2.0, 99, &FaultPlan::new()).unwrap();
        assert_eq!(a, b);
        let c = n.simulate(2.0, 100, &FaultPlan::new()).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn gateway_duplicates_records() {
        let mut n = wiper_network();
        n.add_gateway(GatewayRoute {
            from_bus: "FC".into(),
            to_bus: "DC".into(),
            message_ids: vec![3],
            delay_us: 50,
        });
        let trace = n.simulate(1.0, 1, &FaultPlan::new()).unwrap();
        let fc = trace.iter().filter(|r| r.bus.as_ref() == "FC").count();
        let dc = trace.iter().filter(|r| r.bus.as_ref() == "DC").count();
        assert_eq!(fc, dc);
        // Forwarded copies carry the identical payload.
        let first_fc = trace.iter().find(|r| r.bus.as_ref() == "FC").unwrap();
        let twin = trace
            .iter()
            .find(|r| r.bus.as_ref() == "DC" && r.timestamp_us == first_fc.timestamp_us + 50)
            .unwrap();
        assert_eq!(twin.payload, first_fc.payload);
    }

    #[test]
    fn resolve_follows_gateways() {
        let mut n = wiper_network();
        n.add_gateway(GatewayRoute {
            from_bus: "FC".into(),
            to_bus: "DC".into(),
            message_ids: vec![3],
            delay_us: 50,
        });
        assert!(n.resolve("FC", 3).is_some());
        assert_eq!(n.resolve("DC", 3).unwrap().name(), "WiperStatus");
        assert!(n.resolve("DC", 4).is_none());
        assert_eq!(
            n.channels_of(n.catalog().message("FC", 3).unwrap()),
            vec!["FC".to_string(), "DC".to_string()]
        );
    }

    #[test]
    fn cycle_violation_leaves_gap() {
        let n = wiper_network();
        let faults = FaultPlan::new().with(Fault::CycleViolation {
            bus: "FC".into(),
            message_id: 3,
            from_s: 0.4,
            to_s: 0.7,
        });
        let full = n.simulate(1.0, 1, &FaultPlan::new()).unwrap();
        let gapped = n.simulate(1.0, 1, &faults).unwrap();
        assert!(gapped.len() < full.len());
        let max_gap = gapped
            .records()
            .windows(2)
            .map(|w| w[1].timestamp_us - w[0].timestamp_us)
            .max()
            .unwrap();
        assert!(
            max_gap >= 250_000,
            "expected a >=250 ms gap, got {max_gap} us"
        );
    }

    #[test]
    fn missing_behavior_is_error() {
        let mut catalog = Catalog::new();
        catalog
            .add_message(
                MessageSpec::builder(1, "M", "B", Protocol::Can)
                    .signal(SignalSpec::builder("orphan", 0, 8).build().unwrap())
                    .build()
                    .unwrap(),
            )
            .unwrap();
        let mut n = NetworkModel::new(catalog);
        n.auto_senders();
        assert!(matches!(
            n.simulate(1.0, 1, &FaultPlan::new()),
            Err(Error::InvalidScenario(_))
        ));
    }

    #[test]
    fn unknown_sender_is_error() {
        let n0 = wiper_network();
        let mut n = NetworkModel::new(n0.catalog().clone());
        n.add_sender(Sender {
            bus: "XX".into(),
            message_id: 9,
            period_us: 1000,
            jitter_us: 0,
            phase_us: 0,
        });
        assert!(matches!(
            n.simulate(0.1, 1, &FaultPlan::new()),
            Err(Error::InvalidScenario(_))
        ));
    }

    #[test]
    fn spike_fault_reaches_payload() {
        let n = wiper_network();
        let faults = FaultPlan::new().with(Fault::OutlierSpike {
            signal: "wpos".into(),
            at_s: 0.5,
            duration_s: 0.15,
            value: 170.0,
        });
        let trace = n.simulate(1.0, 1, &faults).unwrap();
        let spec = n.catalog().message("FC", 3).unwrap();
        let spiked = trace.iter().any(|r| {
            spec.signal("wpos")
                .unwrap()
                .decode(&r.payload)
                .unwrap()
                .as_num()
                .unwrap()
                > 160.0
        });
        assert!(spiked);
    }
}
