//! Scenario generators reproducing the paper's data sets.
//!
//! Table 5 of the paper describes three data sets recorded from one premium
//! vehicle during 20 h of driving: **SYN** (13 signal types), **LIG** (180,
//! all light functions) and **STA** (78, car state). The table reports how
//! many signal types fall into each processing branch (α/β/γ) and the mean
//! number of signal types per message. These generators synthesize
//! networks with exactly those *shape* statistics at configurable scale.

use std::collections::HashMap;

use ivnt_protocol::catalog::Catalog;
use ivnt_protocol::message::{MessageSpecBuilder, Protocol};
use ivnt_protocol::signal::SignalSpec;

use crate::behavior::Behavior;
use crate::error::Result;
use crate::faults::FaultPlan;
use crate::network::{GatewayRoute, NetworkModel};
use crate::trace::Trace;

/// Which of the paper's processing branches a generated signal is designed
/// to classify into (the ground truth for classifier tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BranchHint {
    /// Fast-changing numeric (Table 3 row 1).
    Alpha,
    /// Ordinal: slow numeric or comparable string (rows 2–3).
    Beta,
    /// Nominal or binary (rows 4–6).
    Gamma,
}

/// Shape parameters of a generated data set.
#[derive(Debug, Clone, PartialEq)]
pub struct DataSetSpec {
    /// Data-set name (`SYN`, `LIG`, `STA`, ...).
    pub name: String,
    /// Number of fast numeric signal types (branch α).
    pub n_alpha: usize,
    /// Number of ordinal signal types (branch β).
    pub n_beta: usize,
    /// Number of nominal/binary signal types (branch γ).
    pub n_gamma: usize,
    /// Mean signal types per message (Table 5 row "∅ signal types per message").
    pub signals_per_message: f64,
    /// Recording length in seconds.
    pub duration_s: f64,
    /// Master seed.
    pub seed: u64,
    /// Whether a gateway mirrors one bus onto another (creates the
    /// duplicated channels exploited by dedup).
    pub with_gateway: bool,
}

impl DataSetSpec {
    /// The paper's SYN set: 13 signal types (6 α, 4 β, 3 γ), 1.47
    /// signals/message.
    pub fn syn() -> DataSetSpec {
        DataSetSpec {
            name: "SYN".into(),
            n_alpha: 6,
            n_beta: 4,
            n_gamma: 3,
            signals_per_message: 1.47,
            duration_s: 60.0,
            seed: 0x5e7_a11,
            with_gateway: true,
        }
    }

    /// The paper's LIG set: 180 signal types (27 α, 71 β, 82 γ), 5.11
    /// signals/message.
    pub fn lig() -> DataSetSpec {
        DataSetSpec {
            name: "LIG".into(),
            n_alpha: 27,
            n_beta: 71,
            n_gamma: 82,
            signals_per_message: 5.11,
            duration_s: 60.0,
            seed: 0x11_614,
            with_gateway: true,
        }
    }

    /// The paper's STA set: 78 signal types (6 α, 1 β, 71 γ), 3.66
    /// signals/message.
    pub fn sta() -> DataSetSpec {
        DataSetSpec {
            name: "STA".into(),
            n_alpha: 6,
            n_beta: 1,
            n_gamma: 71,
            signals_per_message: 3.66,
            duration_s: 60.0,
            seed: 0x57A,
            with_gateway: true,
        }
    }

    /// Total signal types.
    pub fn total_signals(&self) -> usize {
        self.n_alpha + self.n_beta + self.n_gamma
    }

    /// Returns a copy with a different duration.
    pub fn with_duration_s(mut self, duration_s: f64) -> DataSetSpec {
        self.duration_s = duration_s;
        self
    }

    /// Returns a copy with a different seed (used per journey).
    pub fn with_seed(mut self, seed: u64) -> DataSetSpec {
        self.seed = seed;
        self
    }

    /// Returns a copy whose duration is scaled so that simulation produces
    /// roughly `examples` trace records.
    pub fn with_target_examples(self, examples: usize) -> DataSetSpec {
        let per_second = self.estimated_records_per_second();
        let duration = (examples as f64 / per_second).max(1.0);
        self.with_duration_s(duration)
    }

    /// Estimated trace records per simulated second (before gateway copies).
    pub fn estimated_records_per_second(&self) -> f64 {
        // Mirrors the cycle times assigned in `generate`: α messages at
        // 20 ms, β at 200 ms, γ at 500 ms, multiplied by gateway fan-out.
        let spm = self.signals_per_message.max(1.0);
        let n_alpha_msgs = (self.n_alpha as f64 / spm).ceil();
        let n_beta_msgs = (self.n_beta as f64 / spm).ceil();
        let n_gamma_msgs = (self.n_gamma as f64 / spm).ceil();
        let base = n_alpha_msgs * 50.0 + n_beta_msgs * 5.0 + n_gamma_msgs * 2.0;
        if self.with_gateway {
            base * 2.0
        } else {
            base
        }
    }
}

/// Ground-truth packing of one generated signal occurrence — the reference
/// DBC-less boundary inference is scored against (its precision/recall
/// denominators).
#[derive(Debug, Clone, PartialEq)]
pub struct TruthSignal {
    /// Channel the occurrence is observable on.
    pub bus: String,
    /// Message carrying the signal.
    pub message_id: u32,
    /// Signal name.
    pub signal: String,
    /// Payload-absolute start bit (convention per `byte_order`).
    pub start_bit: u16,
    /// Packed width in bits.
    pub bit_len: u16,
    /// Packing convention.
    pub byte_order: ivnt_protocol::bits::ByteOrder,
}

/// A generated data set: the network model, the recorded trace and the
/// designed branch per signal.
#[derive(Debug, Clone)]
pub struct GeneratedDataSet {
    /// Shape parameters used.
    pub spec: DataSetSpec,
    /// The network (catalog + behaviours + gateways).
    pub network: NetworkModel,
    /// The recorded trace `K_b`.
    pub trace: Trace,
    /// Ground-truth branch and comparability per signal name.
    pub signal_classes: HashMap<String, (BranchHint, bool)>,
}

impl GeneratedDataSet {
    /// Signal names, sorted (deterministic iteration order for tests).
    pub fn signal_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.signal_classes.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of signals designed for the given branch.
    pub fn count_branch(&self, branch: BranchHint) -> usize {
        self.signal_classes
            .values()
            .filter(|(b, _)| *b == branch)
            .count()
    }

    /// The ground-truth signal packings of this data set, one entry per
    /// signal per observable channel (home channel plus gateway copies),
    /// sorted by `(bus, message id, start bit)`. Boundary inference is
    /// evaluated against exactly this table.
    pub fn ground_truth(&self) -> Vec<TruthSignal> {
        let mut out = Vec::new();
        for m in self.network.catalog().messages() {
            for bus in self.network.channels_of(m) {
                for s in m.signals() {
                    out.push(TruthSignal {
                        bus: bus.clone(),
                        message_id: m.id(),
                        signal: s.name().to_string(),
                        start_bit: s.start_bit(),
                        bit_len: s.bit_len(),
                        byte_order: s.byte_order(),
                    });
                }
            }
        }
        out.sort_by(|a, b| {
            (&a.bus, a.message_id, a.start_bit).cmp(&(&b.bus, b.message_id, b.start_bit))
        });
        out
    }
}

/// Generates the network and trace for a [`DataSetSpec`].
///
/// Signals are grouped into messages class-by-class with the spec's
/// signals-per-message density; α messages cycle at 20 ms, β at 200 ms and
/// γ at 500 ms, and (when enabled) a gateway mirrors the main bus so every
/// record appears on two channels.
///
/// # Errors
///
/// Propagates spec-building and simulation failures.
pub fn generate(spec: &DataSetSpec) -> Result<GeneratedDataSet> {
    let prefix = spec.name.to_lowercase();
    let mut network = NetworkModel::new(Catalog::new());
    let mut signal_classes = HashMap::new();

    let spm = spec.signals_per_message.max(1.0);
    let mut message_id = 100u32;
    let bus = format!("{}-CAN", spec.name);

    let mut plan: Vec<(BranchHint, usize)> = vec![
        (BranchHint::Alpha, spec.n_alpha),
        (BranchHint::Beta, spec.n_beta),
        (BranchHint::Gamma, spec.n_gamma),
    ];
    // Keep deterministic message grouping: consume each class in order.
    let mut signal_counter = 0usize;
    for (branch, count) in plan.drain(..) {
        let mut remaining = count;
        while remaining > 0 {
            // Alternate message sizes around the target density.
            let take = if signal_counter.is_multiple_of(2) {
                spm.floor() as usize
            } else {
                spm.ceil() as usize
            }
            .clamp(1, remaining.max(1))
            .min(remaining);
            let cycle_ms = match branch {
                BranchHint::Alpha => 20,
                BranchHint::Beta => 200,
                BranchHint::Gamma => 500,
            };
            let mut builder: MessageSpecBuilder = ivnt_protocol::message::MessageSpec::builder(
                message_id,
                format!("{}Msg{}", spec.name, message_id),
                &bus,
                Protocol::Can,
            )
            .dlc(8)
            .cycle_time_ms(cycle_ms);
            let mut behaviors = Vec::new();
            for slot in 0..take {
                let name = format!("{prefix}_s{signal_counter:04}");
                let start_bit = (slot * (64 / take.max(1))) as u16;
                let width = ((64 / take.max(1)) as u16).clamp(2, 16);
                let (sig, behavior, comparable) =
                    build_signal(&name, start_bit, width, branch, signal_counter)?;
                builder = builder.signal(sig);
                behaviors.push((name.clone(), behavior));
                signal_classes.insert(name, (branch, comparable));
                signal_counter += 1;
            }
            network.catalog_mut().add_message(builder.build()?)?;
            for (name, behavior) in behaviors {
                network.set_behavior(name, behavior);
            }
            message_id += 1;
            remaining -= take;
        }
    }

    if spec.with_gateway {
        let all_ids: Vec<u32> = network
            .catalog()
            .messages()
            .iter()
            .map(|m| m.id())
            .collect();
        network.add_gateway(GatewayRoute {
            from_bus: bus.clone(),
            to_bus: format!("{}-GW", spec.name),
            message_ids: all_ids,
            delay_us: 150,
        });
    }
    network.auto_senders();
    let trace = network.simulate(spec.duration_s, spec.seed, &FaultPlan::new())?;
    Ok(GeneratedDataSet {
        spec: spec.clone(),
        network,
        trace,
        signal_classes,
    })
}

fn build_signal(
    name: &str,
    start_bit: u16,
    width: u16,
    branch: BranchHint,
    index: usize,
) -> Result<(SignalSpec, Behavior, bool)> {
    Ok(match branch {
        BranchHint::Alpha => {
            // Fast numeric: sine or random walk, full width.
            let sig = SignalSpec::builder(name, start_bit, width)
                .factor(0.1)
                .build()?;
            let max_phys = 0.1 * ((1u64 << width) - 1) as f64;
            let behavior = if index.is_multiple_of(2) {
                Behavior::Sine {
                    amplitude: max_phys * 0.4,
                    period_s: 3.0 + (index % 7) as f64,
                    offset: max_phys * 0.5,
                }
            } else {
                Behavior::RandomWalk {
                    start: max_phys * 0.5,
                    step: max_phys * 0.01,
                    min: 0.0,
                    max: max_phys,
                }
            };
            (sig, behavior, true)
        }
        BranchHint::Beta => {
            if index.is_multiple_of(3) {
                // String ordinal: ranked labels, declared comparable.
                let sig = SignalSpec::builder(name, start_bit, width.clamp(2, 3))
                    .labels([(0u64, "low"), (1, "medium"), (2, "high"), (3, "max")])
                    .build()?;
                let behavior = Behavior::StateMachine {
                    labels: vec!["low".into(), "medium".into(), "high".into(), "max".into()],
                    mean_dwell_s: 8.0,
                };
                (sig, behavior, true)
            } else {
                // Slow numeric with a handful of levels.
                let sig = SignalSpec::builder(name, start_bit, width.clamp(3, 4)).build()?;
                let levels: Vec<f64> = (0..6).map(f64::from).collect();
                let behavior = Behavior::SteppedLevel {
                    levels,
                    mean_dwell_s: 10.0,
                };
                (sig, behavior, true)
            }
        }
        BranchHint::Gamma => match index % 3 {
            0 => {
                // String binary.
                let sig = SignalSpec::builder(name, start_bit, width.clamp(1, 2))
                    .labels([(0u64, "OFF"), (1, "ON")])
                    .build()?;
                let behavior = Behavior::StateMachine {
                    labels: vec!["OFF".into(), "ON".into()],
                    mean_dwell_s: 12.0,
                };
                (sig, behavior, true)
            }
            1 => {
                // String nominal: unordered labels, not comparable.
                let sig = SignalSpec::builder(name, start_bit, width.clamp(2, 3))
                    .labels([
                        (0u64, "parking"),
                        (1, "driving"),
                        (2, "standby"),
                        (3, "towing"),
                    ])
                    .build()?;
                let behavior = Behavior::StateMachine {
                    labels: vec![
                        "parking".into(),
                        "driving".into(),
                        "standby".into(),
                        "towing".into(),
                    ],
                    mean_dwell_s: 15.0,
                };
                (sig, behavior, false)
            }
            _ => {
                // Numeric binary.
                let sig = SignalSpec::builder(name, start_bit, width.clamp(1, 2)).build()?;
                let behavior = Behavior::SteppedLevel {
                    levels: vec![0.0, 1.0],
                    mean_dwell_s: 12.0,
                };
                (sig, behavior, true)
            }
        },
    })
}

/// Generates `n` journeys of the same data set with distinct seeds — the
/// multi-journey workloads of Table 6.
///
/// # Errors
///
/// Propagates generation failures.
pub fn journeys(spec: &DataSetSpec, n: usize) -> Result<Vec<GeneratedDataSet>> {
    (0..n)
        .map(|i| generate(&spec.clone().with_seed(spec.seed.wrapping_add(i as u64 + 1))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(spec: DataSetSpec) -> GeneratedDataSet {
        generate(&spec.with_duration_s(5.0)).unwrap()
    }

    #[test]
    fn syn_shape_matches_table5() {
        let d = small(DataSetSpec::syn());
        assert_eq!(d.count_branch(BranchHint::Alpha), 6);
        assert_eq!(d.count_branch(BranchHint::Beta), 4);
        assert_eq!(d.count_branch(BranchHint::Gamma), 3);
        assert_eq!(d.signal_classes.len(), 13);
        assert!(!d.trace.is_empty());
    }

    #[test]
    fn lig_and_sta_shapes() {
        let d = small(DataSetSpec::lig());
        assert_eq!(d.signal_classes.len(), 180);
        assert_eq!(d.count_branch(BranchHint::Beta), 71);
        let d = small(DataSetSpec::sta());
        assert_eq!(d.signal_classes.len(), 78);
        assert_eq!(d.count_branch(BranchHint::Gamma), 71);
    }

    #[test]
    fn density_close_to_target() {
        let d = small(DataSetSpec::lig());
        let n_signals: usize = d
            .network
            .catalog()
            .messages()
            .iter()
            .map(|m| m.signals().len())
            .sum();
        let density = n_signals as f64 / d.network.catalog().num_messages() as f64;
        assert!(
            (density - 5.11).abs() < 1.0,
            "density {density} too far from 5.11"
        );
    }

    #[test]
    fn gateway_doubles_channels() {
        let d = small(DataSetSpec::syn());
        let buses: std::collections::HashSet<&str> =
            d.trace.iter().map(|r| r.bus.as_ref()).collect();
        assert_eq!(buses.len(), 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(DataSetSpec::syn());
        let b = small(DataSetSpec::syn());
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn every_record_decodes() {
        let d = small(DataSetSpec::syn());
        for r in d.trace.iter() {
            let spec = d.network.resolve(&r.bus, r.message_id).unwrap();
            spec.decode_all(&r.payload).unwrap();
        }
    }

    #[test]
    fn target_examples_scales_duration() {
        let spec = DataSetSpec::syn().with_target_examples(20_000);
        let d = generate(&spec).unwrap();
        let got = d.trace.len() as f64;
        assert!(got > 10_000.0 && got < 40_000.0, "target 20k, got {got}");
    }

    #[test]
    fn journeys_differ_by_seed() {
        let js = journeys(&DataSetSpec::syn().with_duration_s(2.0), 3).unwrap();
        assert_eq!(js.len(), 3);
        assert_ne!(js[0].trace, js[1].trace);
        assert_ne!(js[1].trace, js[2].trace);
    }

    #[test]
    fn signal_names_sorted() {
        let d = small(DataSetSpec::syn());
        let names = d.signal_names();
        assert_eq!(names.len(), 13);
        assert!(names.windows(2).all(|w| w[0] < w[1]));
    }
}
