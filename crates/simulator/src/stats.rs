//! Structural trace statistics.
//!
//! The quantities the paper's Table 5 reports (example counts, densities)
//! plus the timing characteristics the reduction exploits (cyclic repeats,
//! inter-arrival jitter, busload per channel). Used by the CLI's `inspect`
//! command, the bench harness and tests validating generated workloads.

use std::collections::BTreeMap;

use crate::trace::Trace;

/// Statistics for one `(bus, message id)` stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MessageStats {
    /// Channel identifier.
    pub bus: String,
    /// Message identifier.
    pub message_id: u32,
    /// Instances recorded.
    pub count: usize,
    /// Mean inter-arrival time in seconds (NaN for fewer than 2 instances).
    pub mean_gap_s: f64,
    /// Largest inter-arrival gap in seconds.
    pub max_gap_s: f64,
    /// Standard deviation of the inter-arrival time (jitter).
    pub jitter_s: f64,
    /// Payload bytes carried in total.
    pub payload_bytes: usize,
}

/// Statistics for a whole trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceStats {
    /// Total records.
    pub records: usize,
    /// Recording duration in seconds.
    pub duration_s: f64,
    /// Records per second over the whole recording.
    pub rate_hz: f64,
    /// Total payload bytes.
    pub payload_bytes: usize,
    /// Distinct channels.
    pub channels: Vec<String>,
    /// Per-message-stream statistics, keyed by `(bus, message id)`.
    pub messages: Vec<MessageStats>,
}

impl TraceStats {
    /// Stats for one stream, if present.
    pub fn message(&self, bus: &str, message_id: u32) -> Option<&MessageStats> {
        self.messages
            .iter()
            .find(|m| m.bus == bus && m.message_id == message_id)
    }

    /// Streams sorted by instance count, descending (the "top talkers").
    pub fn top_talkers(&self, n: usize) -> Vec<&MessageStats> {
        let mut sorted: Vec<&MessageStats> = self.messages.iter().collect();
        sorted.sort_by(|a, b| {
            b.count
                .cmp(&a.count)
                .then_with(|| a.message_id.cmp(&b.message_id))
        });
        sorted.truncate(n);
        sorted
    }
}

/// Computes [`TraceStats`] in one pass (plus one pass per stream for gaps).
pub fn trace_stats(trace: &Trace) -> TraceStats {
    let mut per_message: BTreeMap<(String, u32), (Vec<f64>, usize)> = BTreeMap::new();
    let mut channels: Vec<String> = Vec::new();
    let mut payload_bytes = 0usize;
    for r in trace.iter() {
        payload_bytes += r.payload.len();
        let key = (r.bus.to_string(), r.message_id);
        let entry = per_message.entry(key).or_default();
        entry.0.push(r.timestamp_s());
        entry.1 += r.payload.len();
        if !channels.iter().any(|c| c.as_str() == r.bus.as_ref()) {
            channels.push(r.bus.to_string());
        }
    }
    channels.sort();

    let messages = per_message
        .into_iter()
        .map(|((bus, message_id), (mut times, bytes))| {
            times.sort_by(|a, b| a.total_cmp(b));
            let gaps: Vec<f64> = times.windows(2).map(|w| w[1] - w[0]).collect();
            let (mean_gap_s, max_gap_s, jitter_s) = if gaps.is_empty() {
                (f64::NAN, 0.0, 0.0)
            } else {
                let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
                let max = gaps.iter().cloned().fold(0.0f64, f64::max);
                let var =
                    gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
                (mean, max, var.sqrt())
            };
            MessageStats {
                bus,
                message_id,
                count: times.len(),
                mean_gap_s,
                max_gap_s,
                jitter_s,
                payload_bytes: bytes,
            }
        })
        .collect();

    let duration_s = trace.duration_s();
    TraceStats {
        records: trace.len(),
        duration_s,
        rate_hz: if duration_s > 0.0 {
            trace.len() as f64 / duration_s
        } else {
            0.0
        },
        payload_bytes,
        channels,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{Fault, FaultPlan};
    use crate::functions;
    use crate::network::NetworkModel;
    use ivnt_protocol::catalog::Catalog;

    fn trace_with(faults: &FaultPlan) -> (NetworkModel, Trace) {
        let mut n = NetworkModel::new(Catalog::new());
        n.add_function(functions::wiper().unwrap()).unwrap();
        n.auto_senders();
        let t = n.simulate(10.0, 9, faults).unwrap();
        (n, t)
    }

    #[test]
    fn counts_and_channels() {
        let (_, trace) = trace_with(&FaultPlan::new());
        let stats = trace_stats(&trace);
        assert_eq!(stats.records, trace.len());
        assert_eq!(stats.channels, vec!["ETH", "FC", "K-LIN"]);
        assert!(stats.rate_hz > 10.0);
        assert!(stats.payload_bytes > 0);
    }

    #[test]
    fn cyclic_message_has_low_jitter() {
        let (_, trace) = trace_with(&FaultPlan::new());
        let stats = trace_stats(&trace);
        let wiper = stats.message("FC", 3).expect("wiper stream");
        assert!(
            (wiper.mean_gap_s - 0.1).abs() < 0.01,
            "mean {}",
            wiper.mean_gap_s
        );
        assert!(wiper.jitter_s < 0.01, "jitter {}", wiper.jitter_s);
    }

    #[test]
    fn cycle_violation_visible_in_max_gap() {
        let faults = FaultPlan::new().with(Fault::CycleViolation {
            bus: "FC".into(),
            message_id: 3,
            from_s: 4.0,
            to_s: 5.0,
        });
        let (_, trace) = trace_with(&faults);
        let stats = trace_stats(&trace);
        let wiper = stats.message("FC", 3).expect("wiper stream");
        assert!(wiper.max_gap_s > 0.9, "max gap {}", wiper.max_gap_s);
    }

    #[test]
    fn top_talkers_ordered() {
        let (_, trace) = trace_with(&FaultPlan::new());
        let stats = trace_stats(&trace);
        let top = stats.top_talkers(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].count >= top[1].count);
        // The 100 ms wiper message talks most.
        assert_eq!(top[0].message_id, 3);
    }

    #[test]
    fn empty_trace() {
        let stats = trace_stats(&Trace::new());
        assert_eq!(stats.records, 0);
        assert_eq!(stats.rate_hz, 0.0);
        assert!(stats.messages.is_empty());
    }
}
