//! The off-board trace repository.
//!
//! Fig. 1 of the paper: traces recorded on-board are stored in a common
//! repository and analyzed off-board, journey by journey (Table 6 processes
//! 1/7/12 journeys). This module is that repository at laptop scale: a
//! directory of binary journey files plus a plain-text index.

use std::fs::{self, File};
use std::io::{BufReader, BufWriter};
use std::path::{Path, PathBuf};

use crate::error::{Error, Result};
use crate::trace::Trace;

/// Metadata of one stored journey.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyMeta {
    /// Journey name (unique within the store).
    pub name: String,
    /// Records in the trace.
    pub records: usize,
    /// Recording duration in seconds.
    pub duration_s: f64,
    /// File name within the store directory.
    pub file: String,
}

/// A directory-backed store of journey traces with a text index.
///
/// # Examples
///
/// ```no_run
/// use ivnt_simulator::store::TraceStore;
/// use ivnt_simulator::trace::Trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = TraceStore::open("/tmp/fleet")?;
/// store.add_journey("monday-commute", &Trace::new())?;
/// for meta in store.journeys() {
///     println!("{}: {} records", meta.name, meta.records);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceStore {
    root: PathBuf,
    index: Vec<JourneyMeta>,
}

const INDEX_FILE: &str = "index.txt";

impl TraceStore {
    /// Opens (or creates) a store at `root`, loading its index.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed index lines.
    pub fn open(root: impl AsRef<Path>) -> Result<TraceStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let index_path = root.join(INDEX_FILE);
        let mut index = Vec::new();
        if index_path.exists() {
            for (i, line) in fs::read_to_string(&index_path)?.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.split('|');
                let parse = |p: Option<&str>| {
                    p.map(str::to_string)
                        .ok_or_else(|| Error::Format(format!("index line {} malformed", i + 1)))
                };
                let name = parse(parts.next())?;
                let records: usize = parse(parts.next())?
                    .parse()
                    .map_err(|_| Error::Format(format!("index line {} malformed", i + 1)))?;
                let duration_us: u64 = parse(parts.next())?
                    .parse()
                    .map_err(|_| Error::Format(format!("index line {} malformed", i + 1)))?;
                let file = parse(parts.next())?;
                index.push(JourneyMeta {
                    name,
                    records,
                    duration_s: duration_us as f64 / 1e6,
                    file,
                });
            }
        }
        Ok(TraceStore { root, index })
    }

    /// The store's directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All stored journeys, in insertion order.
    pub fn journeys(&self) -> &[JourneyMeta] {
        &self.index
    }

    /// Metadata for one journey.
    pub fn journey(&self, name: &str) -> Option<&JourneyMeta> {
        self.index.iter().find(|j| j.name == name)
    }

    /// Stores a journey under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for duplicate names or names with
    /// path separators, and propagates I/O failures.
    pub fn add_journey(&mut self, name: &str, trace: &Trace) -> Result<()> {
        if name.is_empty() || name.contains('/') || name.contains('|') || name.contains('\\') {
            return Err(Error::InvalidScenario(format!(
                "journey name {name:?} must be non-empty without '/', '\\\\' or '|'"
            )));
        }
        if self.journey(name).is_some() {
            return Err(Error::InvalidScenario(format!(
                "journey {name:?} already stored"
            )));
        }
        let file = format!("{name}.ivnt");
        let f = File::create(self.root.join(&file))?;
        trace.write_to(BufWriter::new(f))?;
        self.index.push(JourneyMeta {
            name: name.to_string(),
            records: trace.len(),
            duration_s: trace.duration_s(),
            file,
        });
        self.write_index()
    }

    /// Loads one journey's full trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for unknown names and propagates
    /// I/O/format failures.
    pub fn load(&self, name: &str) -> Result<Trace> {
        let meta = self
            .journey(name)
            .ok_or_else(|| Error::InvalidScenario(format!("unknown journey {name:?}")))?;
        let f = File::open(self.root.join(&meta.file))?;
        Trace::read_from(BufReader::new(f))
    }

    /// Loads the records of a journey within `[from_s, to_s)`.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceStore::load`].
    pub fn load_range(&self, name: &str, from_s: f64, to_s: f64) -> Result<Trace> {
        let full = self.load(name)?;
        Ok(full
            .into_iter()
            .filter(|r| {
                let t = r.timestamp_s();
                t >= from_s && t < to_s
            })
            .collect())
    }

    /// Loads several journeys merged into one time-sorted trace (the
    /// multi-journey workloads of Table 6 — timestamps are per-journey
    /// relative, so merging interleaves; use [`TraceStore::load`] per
    /// journey when journeys must stay separate).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceStore::load`].
    pub fn load_merged(&self, names: &[&str]) -> Result<Trace> {
        let mut merged = Trace::new();
        for name in names {
            merged.merge(self.load(name)?);
        }
        Ok(merged)
    }

    /// Removes a journey and its file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for unknown names and propagates
    /// I/O failures.
    pub fn remove(&mut self, name: &str) -> Result<()> {
        let pos = self
            .index
            .iter()
            .position(|j| j.name == name)
            .ok_or_else(|| Error::InvalidScenario(format!("unknown journey {name:?}")))?;
        let meta = self.index.remove(pos);
        let path = self.root.join(&meta.file);
        if path.exists() {
            fs::remove_file(path)?;
        }
        self.write_index()
    }

    fn write_index(&self) -> Result<()> {
        let mut text = String::new();
        for j in &self.index {
            text.push_str(&format!(
                "{}|{}|{}|{}\n",
                j.name,
                j.records,
                (j.duration_s * 1e6) as u64,
                j.file
            ));
        }
        fs::write(self.root.join(INDEX_FILE), text)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, DataSetSpec};

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ivnt-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace(seed: u64) -> Trace {
        generate(&DataSetSpec::syn().with_duration_s(1.0).with_seed(seed))
            .unwrap()
            .trace
    }

    #[test]
    fn add_load_roundtrip() {
        let root = temp_store("roundtrip");
        let mut store = TraceStore::open(&root).unwrap();
        let trace = sample_trace(1);
        store.add_journey("j1", &trace).unwrap();
        assert_eq!(store.journeys().len(), 1);
        assert_eq!(store.journey("j1").unwrap().records, trace.len());
        let loaded = store.load("j1").unwrap();
        assert_eq!(loaded, trace);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn index_survives_reopen() {
        let root = temp_store("reopen");
        {
            let mut store = TraceStore::open(&root).unwrap();
            store.add_journey("a", &sample_trace(1)).unwrap();
            store.add_journey("b", &sample_trace(2)).unwrap();
        }
        let store = TraceStore::open(&root).unwrap();
        assert_eq!(store.journeys().len(), 2);
        assert!(store.load("b").is_ok());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn duplicate_and_bad_names_rejected() {
        let root = temp_store("names");
        let mut store = TraceStore::open(&root).unwrap();
        store.add_journey("j", &Trace::new()).unwrap();
        assert!(store.add_journey("j", &Trace::new()).is_err());
        assert!(store.add_journey("a/b", &Trace::new()).is_err());
        assert!(store.add_journey("a|b", &Trace::new()).is_err());
        assert!(store.add_journey("", &Trace::new()).is_err());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn load_range_filters_by_time() {
        let root = temp_store("range");
        let mut store = TraceStore::open(&root).unwrap();
        let trace = sample_trace(3);
        store.add_journey("j", &trace).unwrap();
        let slice = store.load_range("j", 0.2, 0.4).unwrap();
        assert!(!slice.is_empty());
        assert!(slice.len() < trace.len());
        for r in slice.iter() {
            assert!((0.2..0.4).contains(&r.timestamp_s()));
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn merged_load_is_time_sorted() {
        let root = temp_store("merge");
        let mut store = TraceStore::open(&root).unwrap();
        store.add_journey("a", &sample_trace(1)).unwrap();
        store.add_journey("b", &sample_trace(2)).unwrap();
        let merged = store.load_merged(&["a", "b"]).unwrap();
        assert_eq!(
            merged.len(),
            store.journey("a").unwrap().records + store.journey("b").unwrap().records
        );
        let times: Vec<u64> = merged.iter().map(|r| r.timestamp_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn remove_deletes_file_and_index() {
        let root = temp_store("remove");
        let mut store = TraceStore::open(&root).unwrap();
        store.add_journey("gone", &sample_trace(4)).unwrap();
        store.remove("gone").unwrap();
        assert!(store.journeys().is_empty());
        assert!(store.load("gone").is_err());
        assert!(store.remove("gone").is_err());
        // Reopen shows the removal persisted.
        let store = TraceStore::open(&root).unwrap();
        assert!(store.journeys().is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn simulated_fleet_workflow() {
        // Record journeys from different seeds into the store, then process
        // them like Table 6's multi-journey extraction.
        let root = temp_store("fleet");
        let mut store = TraceStore::open(&root).unwrap();
        for i in 0..3u64 {
            let data =
                generate(&DataSetSpec::syn().with_duration_s(0.5).with_seed(100 + i)).unwrap();
            store
                .add_journey(&format!("journey-{i}"), &data.trace)
                .unwrap();
        }
        assert_eq!(store.journeys().len(), 3);
        let total: usize = store.journeys().iter().map(|j| j.records).sum();
        assert!(total > 0);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn malformed_index_reported() {
        let root = temp_store("badindex");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(INDEX_FILE), "only|two\n").unwrap();
        assert!(TraceStore::open(&root).is_err());
        let _ = fs::remove_dir_all(root);
    }
}
