//! The off-board trace repository.
//!
//! Fig. 1 of the paper: traces recorded on-board are stored in a common
//! repository and analyzed off-board, journey by journey (Table 6 processes
//! 1/7/12 journeys). This module is that repository at laptop scale: a
//! directory of journey files plus a plain-text index.
//!
//! New journeys are written in the chunked columnar `.ivns` format
//! ([`ivnt_store`]) so downstream extraction can push predicates into the
//! storage layer. Existing repositories keep working: `.ivnt` files use
//! the legacy sequential binary format, and `.csv` files are imported
//! through the raw-trace CSV schema — [`TraceStore::load`] dispatches on
//! the file extension.

use std::fs::{self, File};
use std::io::{BufReader, Read};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::trace::{Trace, TraceRecord};

/// Metadata of one stored journey.
#[derive(Debug, Clone, PartialEq)]
pub struct JourneyMeta {
    /// Journey name (unique within the store).
    pub name: String,
    /// Records in the trace.
    pub records: usize,
    /// Recording duration in seconds.
    pub duration_s: f64,
    /// File name within the store directory.
    pub file: String,
}

/// A directory-backed store of journey traces with a text index.
///
/// # Examples
///
/// ```no_run
/// use ivnt_simulator::store::TraceStore;
/// use ivnt_simulator::trace::Trace;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut store = TraceStore::open("/tmp/fleet")?;
/// store.add_journey("monday-commute", &Trace::new())?;
/// for meta in store.journeys() {
///     println!("{}: {} records", meta.name, meta.records);
/// }
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct TraceStore {
    root: PathBuf,
    index: Vec<JourneyMeta>,
}

const INDEX_FILE: &str = "index.txt";

impl TraceStore {
    /// Opens (or creates) a store at `root`, loading its index.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and malformed index lines.
    pub fn open(root: impl AsRef<Path>) -> Result<TraceStore> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        let index_path = root.join(INDEX_FILE);
        let mut index = Vec::new();
        if index_path.exists() {
            for (i, line) in fs::read_to_string(&index_path)?.lines().enumerate() {
                if line.is_empty() {
                    continue;
                }
                let mut parts = line.split('|');
                let parse = |p: Option<&str>| {
                    p.map(str::to_string)
                        .ok_or_else(|| Error::Format(format!("index line {} malformed", i + 1)))
                };
                let name = parse(parts.next())?;
                let records: usize = parse(parts.next())?
                    .parse()
                    .map_err(|_| Error::Format(format!("index line {} malformed", i + 1)))?;
                let duration_us: u64 = parse(parts.next())?
                    .parse()
                    .map_err(|_| Error::Format(format!("index line {} malformed", i + 1)))?;
                let file = parse(parts.next())?;
                index.push(JourneyMeta {
                    name,
                    records,
                    duration_s: duration_us as f64 / 1e6,
                    file,
                });
            }
        }
        Ok(TraceStore { root, index })
    }

    /// The store's directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// All stored journeys, in insertion order.
    pub fn journeys(&self) -> &[JourneyMeta] {
        &self.index
    }

    /// Metadata for one journey.
    pub fn journey(&self, name: &str) -> Option<&JourneyMeta> {
        self.index.iter().find(|j| j.name == name)
    }

    /// Stores a journey under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for duplicate names or names with
    /// path separators, and propagates I/O failures.
    pub fn add_journey(&mut self, name: &str, trace: &Trace) -> Result<()> {
        if name.is_empty() || name.contains('/') || name.contains('|') || name.contains('\\') {
            return Err(Error::InvalidScenario(format!(
                "journey name {name:?} must be non-empty without '/', '\\\\' or '|'"
            )));
        }
        if self.journey(name).is_some() {
            return Err(Error::InvalidScenario(format!(
                "journey {name:?} already stored"
            )));
        }
        let file = format!("{name}.{}", ivnt_store::FILE_EXTENSION);
        let mut writer = ivnt_store::StoreWriter::create(
            self.root.join(&file),
            ivnt_store::WriterOptions::default(),
        )
        .map_err(Error::from)?;
        for r in trace.records() {
            writer.append(&to_store_record(r)).map_err(Error::from)?;
        }
        writer.finish().map_err(Error::from)?;
        self.index.push(JourneyMeta {
            name: name.to_string(),
            records: trace.len(),
            duration_s: trace.duration_s(),
            file,
        });
        self.write_index()
    }

    /// Imports a raw-trace CSV (columns `t,l,b_id,m_id,m_info`, as written
    /// by the tabular engine's CSV export) as a journey. The journey is
    /// stored in the native `.ivns` format; CSV is the interchange
    /// fallback for traces produced by external capture tooling.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Format`] for unparsable CSV and the same
    /// conditions as [`TraceStore::add_journey`].
    pub fn import_csv_journey<R: Read>(&mut self, name: &str, reader: R) -> Result<()> {
        let trace = read_csv_trace(reader)?;
        self.add_journey(name, &trace)
    }

    /// Loads one journey's full trace.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for unknown names and propagates
    /// I/O/format failures.
    pub fn load(&self, name: &str) -> Result<Trace> {
        let meta = self
            .journey(name)
            .ok_or_else(|| Error::InvalidScenario(format!("unknown journey {name:?}")))?;
        let path = self.root.join(&meta.file);
        let ext = extension(&meta.file);
        if ext.eq_ignore_ascii_case(ivnt_store::FILE_EXTENSION) {
            let mut reader = ivnt_store::StoreReader::open(&path).map_err(Error::from)?;
            let records = reader.read_all().map_err(Error::from)?;
            Ok(Trace::from_records(
                records.into_iter().map(from_store_record).collect(),
            ))
        } else if ext.eq_ignore_ascii_case("csv") {
            read_csv_trace(BufReader::new(File::open(&path)?))
        } else if ext.eq_ignore_ascii_case(LEGACY_EXTENSION) {
            // Legacy sequential binary journeys keep loading unchanged.
            Trace::read_from(BufReader::new(File::open(&path)?))
        } else {
            // Refusing beats feeding an arbitrary file to the legacy binary
            // decoder and surfacing its malformed-trace error.
            Err(Error::Format(format!(
                "journey file {:?} has unsupported extension {ext:?} \
                 (expected .{}, .csv or .{LEGACY_EXTENSION})",
                meta.file,
                ivnt_store::FILE_EXTENSION
            )))
        }
    }

    /// Loads the records of a journey within `[from_s, to_s)`.
    ///
    /// For `.ivns` journeys the window is pushed into the store scan as a
    /// zone-map predicate, so chunks outside the window are skipped
    /// without being read; other formats fall back to load-then-filter.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceStore::load`].
    pub fn load_range(&self, name: &str, from_s: f64, to_s: f64) -> Result<Trace> {
        let meta = self
            .journey(name)
            .ok_or_else(|| Error::InvalidScenario(format!("unknown journey {name:?}")))?;
        let in_window = |r: &TraceRecord| {
            let t = r.timestamp_s();
            t >= from_s && t < to_s
        };
        if is_store_file(&meta.file) && to_s > from_s {
            // Conservative µs bounds around the f64-second window; the
            // exact boundary condition is re-checked per row.
            let from_us = (from_s.max(0.0) * 1e6).floor() as u64;
            let to_us = (to_s.max(0.0) * 1e6).ceil() as u64;
            let mut reader =
                ivnt_store::StoreReader::open(self.root.join(&meta.file)).map_err(Error::from)?;
            let pred = ivnt_store::Predicate::all().with_time_range_us(from_us, to_us);
            let mut records = Vec::new();
            reader.scan::<Error, _>(&pred, |group| {
                records.extend(group.into_iter().map(from_store_record).filter(&in_window));
                Ok(())
            })?;
            return Ok(Trace::from_records(records));
        }
        let full = self.load(name)?;
        Ok(full.into_iter().filter(in_window).collect())
    }

    /// Loads several journeys merged into one time-sorted trace (the
    /// multi-journey workloads of Table 6 — timestamps are per-journey
    /// relative, so merging interleaves; use [`TraceStore::load`] per
    /// journey when journeys must stay separate).
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceStore::load`].
    pub fn load_merged(&self, names: &[&str]) -> Result<Trace> {
        let mut merged = Trace::new();
        for name in names {
            merged.merge(self.load(name)?);
        }
        Ok(merged)
    }

    /// Removes a journey and its file.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidScenario`] for unknown names and propagates
    /// I/O failures.
    pub fn remove(&mut self, name: &str) -> Result<()> {
        let pos = self
            .index
            .iter()
            .position(|j| j.name == name)
            .ok_or_else(|| Error::InvalidScenario(format!("unknown journey {name:?}")))?;
        let meta = self.index.remove(pos);
        let path = self.root.join(&meta.file);
        if path.exists() {
            fs::remove_file(path)?;
        }
        self.write_index()
    }

    /// Scan statistics for one `.ivns` journey under a time window — how
    /// many chunks the zone maps pruned. Returns `None` for legacy
    /// formats, which have no chunk index.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TraceStore::load`].
    pub fn range_scan_stats(
        &self,
        name: &str,
        from_s: f64,
        to_s: f64,
    ) -> Result<Option<ivnt_store::ScanStats>> {
        let meta = self
            .journey(name)
            .ok_or_else(|| Error::InvalidScenario(format!("unknown journey {name:?}")))?;
        if !is_store_file(&meta.file) {
            return Ok(None);
        }
        let from_us = (from_s.max(0.0) * 1e6).floor() as u64;
        let to_us = (to_s.max(0.0) * 1e6).ceil() as u64;
        let mut reader =
            ivnt_store::StoreReader::open(self.root.join(&meta.file)).map_err(Error::from)?;
        let pred = ivnt_store::Predicate::all().with_time_range_us(from_us, to_us);
        let stats = reader.scan::<Error, _>(&pred, |_| Ok(()))?;
        Ok(Some(stats))
    }

    fn write_index(&self) -> Result<()> {
        let mut text = String::new();
        for j in &self.index {
            text.push_str(&format!(
                "{}|{}|{}|{}\n",
                j.name,
                j.records,
                (j.duration_s * 1e6) as u64,
                j.file
            ));
        }
        fs::write(self.root.join(INDEX_FILE), text)?;
        Ok(())
    }
}

/// Extension of the legacy sequential binary trace format.
const LEGACY_EXTENSION: &str = "ivnt";

fn extension(file: &str) -> &str {
    file.rsplit_once('.').map(|(_, ext)| ext).unwrap_or("")
}

/// Whether `file` is a chunked columnar store file. Extensions compare
/// case-insensitively: capture tooling on case-preserving filesystems
/// produces `TRIP.IVNS` as readily as `trip.ivns`.
fn is_store_file(file: &str) -> bool {
    extension(file).eq_ignore_ascii_case(ivnt_store::FILE_EXTENSION)
}

/// Converts a simulator trace record into its store-layer twin.
pub fn to_store_record(r: &TraceRecord) -> ivnt_store::Record {
    ivnt_store::Record {
        timestamp_us: r.timestamp_us,
        bus: r.bus.clone(),
        message_id: r.message_id,
        payload: r.payload.clone(),
        protocol: r.protocol,
    }
}

fn from_store_record(r: ivnt_store::Record) -> TraceRecord {
    TraceRecord {
        timestamp_us: r.timestamp_us,
        bus: r.bus,
        message_id: r.message_id,
        payload: r.payload,
        protocol: r.protocol,
    }
}

/// Parses a raw-trace CSV (`t,l,b_id,m_id,m_info`) into a [`Trace`].
///
/// # Errors
///
/// Returns [`Error::Format`] for unparsable CSV, unknown protocol names,
/// or out-of-range timestamps/message ids.
pub fn read_csv_trace<R: Read>(reader: R) -> Result<Trace> {
    use ivnt_protocol::message::Protocol;
    use ivnt_store::schema::columns as c;

    let frame = ivnt_frame::csv::read_csv(reader, ivnt_store::schema::raw_trace_schema())
        .map_err(|e| Error::Format(format!("csv trace import failed: {e}")))?;
    // Intern bus names so repeated channels share one allocation, as the
    // simulator's own traces do.
    let mut buses: Vec<Arc<str>> = Vec::new();
    let mut records = Vec::with_capacity(frame.num_rows());
    for row in frame
        .collect_rows()
        .map_err(|e| Error::Format(format!("csv trace import failed: {e}")))?
    {
        let cell = |i: usize| &row[i];
        let t = cell(0)
            .as_float()
            .ok_or_else(|| Error::Format(format!("csv {} cell is not a number", c::T)))?;
        if !t.is_finite() || t < 0.0 {
            return Err(Error::Format(format!("csv {} cell {t} out of range", c::T)));
        }
        let payload = match cell(1) {
            ivnt_frame::value::Value::Bytes(b) => b.to_vec(),
            ivnt_frame::value::Value::Null => Vec::new(),
            other => {
                return Err(Error::Format(format!(
                    "csv {} cell {other:?} is not bytes",
                    c::PAYLOAD
                )))
            }
        };
        let bus_name = match cell(2) {
            ivnt_frame::value::Value::Str(s) => s.clone(),
            other => {
                return Err(Error::Format(format!(
                    "csv {} cell {other:?} is not a string",
                    c::BUS
                )))
            }
        };
        let bus = match buses.iter().find(|b| b.as_ref() == bus_name.as_ref()) {
            Some(b) => b.clone(),
            None => {
                buses.push(bus_name.clone());
                bus_name
            }
        };
        let mid = cell(3)
            .as_int()
            .and_then(|m| u32::try_from(m).ok())
            .ok_or_else(|| {
                Error::Format(format!("csv {} cell is not a message id", c::MESSAGE_ID))
            })?;
        let protocol = match cell(4) {
            ivnt_frame::value::Value::Str(s) => match s.as_ref() {
                "CAN" => Protocol::Can,
                "CAN FD" => Protocol::CanFd,
                "LIN" => Protocol::Lin,
                "SOME/IP" => Protocol::SomeIp,
                other => return Err(Error::Format(format!("csv unknown protocol {other:?}"))),
            },
            other => {
                return Err(Error::Format(format!(
                    "csv {} cell {other:?} is not a string",
                    c::INFO
                )))
            }
        };
        records.push(TraceRecord {
            timestamp_us: (t * 1e6).round() as u64,
            bus,
            message_id: mid,
            payload,
            protocol,
        });
    }
    Ok(Trace::from_records(records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{generate, DataSetSpec};

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ivnt-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_trace(seed: u64) -> Trace {
        generate(&DataSetSpec::syn().with_duration_s(1.0).with_seed(seed))
            .unwrap()
            .trace
    }

    #[test]
    fn add_load_roundtrip() {
        let root = temp_store("roundtrip");
        let mut store = TraceStore::open(&root).unwrap();
        let trace = sample_trace(1);
        store.add_journey("j1", &trace).unwrap();
        assert_eq!(store.journeys().len(), 1);
        assert_eq!(store.journey("j1").unwrap().records, trace.len());
        let loaded = store.load("j1").unwrap();
        assert_eq!(loaded, trace);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn index_survives_reopen() {
        let root = temp_store("reopen");
        {
            let mut store = TraceStore::open(&root).unwrap();
            store.add_journey("a", &sample_trace(1)).unwrap();
            store.add_journey("b", &sample_trace(2)).unwrap();
        }
        let store = TraceStore::open(&root).unwrap();
        assert_eq!(store.journeys().len(), 2);
        assert!(store.load("b").is_ok());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn duplicate_and_bad_names_rejected() {
        let root = temp_store("names");
        let mut store = TraceStore::open(&root).unwrap();
        store.add_journey("j", &Trace::new()).unwrap();
        assert!(store.add_journey("j", &Trace::new()).is_err());
        assert!(store.add_journey("a/b", &Trace::new()).is_err());
        assert!(store.add_journey("a|b", &Trace::new()).is_err());
        assert!(store.add_journey("", &Trace::new()).is_err());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn load_range_filters_by_time() {
        let root = temp_store("range");
        let mut store = TraceStore::open(&root).unwrap();
        let trace = sample_trace(3);
        store.add_journey("j", &trace).unwrap();
        let slice = store.load_range("j", 0.2, 0.4).unwrap();
        assert!(!slice.is_empty());
        assert!(slice.len() < trace.len());
        for r in slice.iter() {
            assert!((0.2..0.4).contains(&r.timestamp_s()));
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn merged_load_is_time_sorted() {
        let root = temp_store("merge");
        let mut store = TraceStore::open(&root).unwrap();
        store.add_journey("a", &sample_trace(1)).unwrap();
        store.add_journey("b", &sample_trace(2)).unwrap();
        let merged = store.load_merged(&["a", "b"]).unwrap();
        assert_eq!(
            merged.len(),
            store.journey("a").unwrap().records + store.journey("b").unwrap().records
        );
        let times: Vec<u64> = merged.iter().map(|r| r.timestamp_us).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn remove_deletes_file_and_index() {
        let root = temp_store("remove");
        let mut store = TraceStore::open(&root).unwrap();
        store.add_journey("gone", &sample_trace(4)).unwrap();
        store.remove("gone").unwrap();
        assert!(store.journeys().is_empty());
        assert!(store.load("gone").is_err());
        assert!(store.remove("gone").is_err());
        // Reopen shows the removal persisted.
        let store = TraceStore::open(&root).unwrap();
        assert!(store.journeys().is_empty());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn simulated_fleet_workflow() {
        // Record journeys from different seeds into the store, then process
        // them like Table 6's multi-journey extraction.
        let root = temp_store("fleet");
        let mut store = TraceStore::open(&root).unwrap();
        for i in 0..3u64 {
            let data =
                generate(&DataSetSpec::syn().with_duration_s(0.5).with_seed(100 + i)).unwrap();
            store
                .add_journey(&format!("journey-{i}"), &data.trace)
                .unwrap();
        }
        assert_eq!(store.journeys().len(), 3);
        let total: usize = store.journeys().iter().map(|j| j.records).sum();
        assert!(total > 0);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn journeys_are_written_in_store_format() {
        let root = temp_store("native-format");
        let mut store = TraceStore::open(&root).unwrap();
        let trace = sample_trace(7);
        store.add_journey("j", &trace).unwrap();
        let meta = store.journey("j").unwrap();
        assert!(meta.file.ends_with(".ivns"), "{}", meta.file);
        // The file really is a chunked store, readable directly.
        let mut reader = ivnt_store::StoreReader::open(root.join(&meta.file)).unwrap();
        assert_eq!(reader.footer().rows, trace.len() as u64);
        assert_eq!(reader.read_all().unwrap().len(), trace.len());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn legacy_binary_journeys_still_load() {
        let root = temp_store("legacy");
        let trace = sample_trace(9);
        fs::create_dir_all(&root).unwrap();
        // A repository written before the columnar format: .ivnt file plus
        // a hand-rolled index line.
        let f = File::create(root.join("old.ivnt")).unwrap();
        trace.write_to(std::io::BufWriter::new(f)).unwrap();
        fs::write(
            root.join(INDEX_FILE),
            format!(
                "old|{}|{}|old.ivnt\n",
                trace.len(),
                (trace.duration_s() * 1e6) as u64
            ),
        )
        .unwrap();
        let store = TraceStore::open(&root).unwrap();
        assert_eq!(store.load("old").unwrap(), trace);
        let slice = store.load_range("old", 0.2, 0.4).unwrap();
        assert!(slice.iter().all(|r| (0.2..0.4).contains(&r.timestamp_s())));
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn csv_journeys_import_and_load() {
        let root = temp_store("csv");
        let trace = sample_trace(5);
        // Render the trace as a raw-trace CSV, as external tooling would.
        let schema = ivnt_store::schema::raw_trace_schema();
        let batch = ivnt_store::schema::records_to_batch(
            schema.clone(),
            &trace
                .records()
                .iter()
                .map(to_store_record)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let frame = ivnt_frame::frame::DataFrame::from_partitions(schema, vec![batch]).unwrap();
        let mut csv = Vec::new();
        ivnt_frame::csv::write_csv(&frame, &mut csv).unwrap();

        // Import path: parse + store natively.
        let mut store = TraceStore::open(&root).unwrap();
        store
            .import_csv_journey("imported", csv.as_slice())
            .unwrap();
        assert_eq!(store.load("imported").unwrap(), trace);

        // Fallback path: a .csv file referenced directly by the index.
        fs::write(root.join("raw.csv"), &csv).unwrap();
        fs::write(
            root.join(INDEX_FILE),
            format!(
                "imported|{}|{}|imported.ivns\nraw|{}|{}|raw.csv\n",
                trace.len(),
                (trace.duration_s() * 1e6) as u64,
                trace.len(),
                (trace.duration_s() * 1e6) as u64
            ),
        )
        .unwrap();
        let store = TraceStore::open(&root).unwrap();
        assert_eq!(store.load("raw").unwrap(), trace);
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn uppercase_store_extension_loads() {
        // Case-preserving filesystems hand back `TRIP.IVNS` as readily as
        // `trip.ivns`; the dispatcher must not fall through to the legacy
        // binary decoder.
        let root = temp_store("upper-ext");
        fs::create_dir_all(&root).unwrap();
        let trace = sample_trace(11);
        let mut writer = ivnt_store::StoreWriter::create(
            root.join("TRIP.IVNS"),
            ivnt_store::WriterOptions::default(),
        )
        .unwrap();
        for r in trace.records() {
            writer.append(&to_store_record(r)).unwrap();
        }
        writer.finish().unwrap();
        fs::write(
            root.join(INDEX_FILE),
            format!(
                "trip|{}|{}|TRIP.IVNS\n",
                trace.len(),
                (trace.duration_s() * 1e6) as u64
            ),
        )
        .unwrap();
        let store = TraceStore::open(&root).unwrap();
        assert_eq!(store.load("trip").unwrap(), trace);
        assert!(store.range_scan_stats("trip", 0.0, 0.1).unwrap().is_some());
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn unknown_extension_is_a_typed_error() {
        let root = temp_store("unknown-ext");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join("trip.bin"), b"not a trace").unwrap();
        fs::write(root.join(INDEX_FILE), "trip|1|1000000|trip.bin\n").unwrap();
        let store = TraceStore::open(&root).unwrap();
        let err = store.load("trip").unwrap_err();
        assert!(
            matches!(err, Error::Format(ref m) if m.contains("extension")),
            "{err}"
        );
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn range_loads_skip_chunks_on_new_format() {
        let root = temp_store("range-stats");
        let mut store = TraceStore::open(&root).unwrap();
        let trace = sample_trace(12);
        store.add_journey("j", &trace).unwrap();
        let stats = store.range_scan_stats("j", 0.0, 0.05).unwrap();
        if trace.len() > 2 * 1024 * 32 {
            // Only multi-group traces can skip on a time window (groups
            // are clustered internally but laid out in time order).
            assert!(stats.unwrap().chunks_skipped > 0);
        } else {
            assert!(stats.is_some());
        }
        let _ = fs::remove_dir_all(root);
    }

    #[test]
    fn malformed_index_reported() {
        let root = temp_store("badindex");
        fs::create_dir_all(&root).unwrap();
        fs::write(root.join(INDEX_FILE), "only|two\n").unwrap();
        assert!(TraceStore::open(&root).is_err());
        let _ = fs::remove_dir_all(root);
    }
}
