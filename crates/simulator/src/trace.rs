//! The recorded trace: the paper's byte sequence `K_b`.

use std::io::{Read, Write};
use std::sync::Arc;

use ivnt_protocol::message::Protocol;

use crate::error::{Error, Result};

/// One recorded byte tuple `k_b = (t, l, b_id, m_id, m_info)`.
///
/// `info` carries the protocol-specific message fields the paper calls
/// `m_info` (protocol family and DLC — enough for protocol-specific
/// translation).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Timestamp in microseconds since recording start (`t`).
    pub timestamp_us: u64,
    /// Channel identifier (`b_id`), shared across records.
    pub bus: Arc<str>,
    /// Message identifier on that channel (`m_id`).
    pub message_id: u32,
    /// Raw payload bytes (`l`).
    pub payload: Vec<u8>,
    /// Protocol family the frame used (`m_info`).
    pub protocol: Protocol,
}

impl TraceRecord {
    /// Timestamp in seconds.
    pub fn timestamp_s(&self) -> f64 {
        self.timestamp_us as f64 / 1e6
    }
}

/// An ordered sequence of [`TraceRecord`]s — the raw trace `K_b`.
///
/// # Examples
///
/// ```
/// use ivnt_simulator::trace::{Trace, TraceRecord};
/// use ivnt_protocol::message::Protocol;
/// use std::sync::Arc;
///
/// let mut trace = Trace::new();
/// trace.push(TraceRecord {
///     timestamp_us: 2_000_000,
///     bus: Arc::from("FC"),
///     message_id: 3,
///     payload: vec![0x5A, 0x00, 0x01, 0x00],
///     protocol: Protocol::Can,
/// });
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    records: Vec<TraceRecord>,
}

const MAGIC: &[u8; 5] = b"IVNT1";

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Creates a trace from records (kept in the given order).
    pub fn from_records(records: Vec<TraceRecord>) -> Trace {
        Trace { records }
    }

    /// Appends a record.
    pub fn push(&mut self, record: TraceRecord) {
        self.records.push(record);
    }

    /// The records.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Number of records (`|K_b| = w`).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when no records were captured.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Iterates over the records.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceRecord> {
        self.records.iter()
    }

    /// Stably sorts records by timestamp (monitoring devices on several
    /// buses log asynchronously; analysis assumes time order).
    pub fn sort_by_time(&mut self) {
        self.records.sort_by_key(|r| r.timestamp_us);
    }

    /// Merges another trace into this one, keeping time order.
    pub fn merge(&mut self, other: Trace) {
        self.records.extend(other.records);
        self.sort_by_time();
    }

    /// Keeps only the first `n` records.
    pub fn truncate(&mut self, n: usize) {
        self.records.truncate(n);
    }

    /// Returns a prefix copy with at most `n` records — used by the Fig. 5
    /// experiment's step-wise growing subsets.
    pub fn prefix(&self, n: usize) -> Trace {
        Trace {
            records: self.records[..n.min(self.records.len())].to_vec(),
        }
    }

    /// Recording duration in seconds (last minus first timestamp).
    pub fn duration_s(&self) -> f64 {
        match (self.records.first(), self.records.last()) {
            (Some(a), Some(b)) => (b.timestamp_us.saturating_sub(a.timestamp_us)) as f64 / 1e6,
            _ => 0.0,
        }
    }

    /// Serializes the trace to a compact binary stream.
    ///
    /// Layout: magic `IVNT1`, record count (u64 LE), then per record:
    /// `t(u64) | proto(u8) | bus_len(u8) bus | m_id(u32) | payload_len(u16) payload`.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; remind: a `&mut` reference to any writer can
    /// be passed.
    pub fn write_to<W: Write>(&self, mut writer: W) -> Result<()> {
        writer.write_all(MAGIC)?;
        writer.write_all(&(self.records.len() as u64).to_le_bytes())?;
        for r in &self.records {
            writer.write_all(&r.timestamp_us.to_le_bytes())?;
            writer.write_all(&[protocol_tag(r.protocol)])?;
            let bus = r.bus.as_bytes();
            if bus.len() > u8::MAX as usize {
                return Err(Error::Format("bus id longer than 255 bytes".into()));
            }
            writer.write_all(&[bus.len() as u8])?;
            writer.write_all(bus)?;
            writer.write_all(&r.message_id.to_le_bytes())?;
            if r.payload.len() > u16::MAX as usize {
                return Err(Error::Format("payload longer than 65535 bytes".into()));
            }
            writer.write_all(&(r.payload.len() as u16).to_le_bytes())?;
            writer.write_all(&r.payload)?;
        }
        Ok(())
    }

    /// Deserializes a trace written by [`Trace::write_to`].
    ///
    /// # Errors
    ///
    /// Returns [`Error::Format`] for bad magic or malformed records and
    /// propagates I/O failures. A `&mut` reference to any reader can be
    /// passed.
    pub fn read_from<R: Read>(mut reader: R) -> Result<Trace> {
        let mut magic = [0u8; 5];
        reader.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::Format("bad magic".into()));
        }
        let mut u64buf = [0u8; 8];
        reader.read_exact(&mut u64buf)?;
        let count = u64::from_le_bytes(u64buf) as usize;
        let mut records = Vec::with_capacity(count.min(1 << 20));
        let mut bus_cache: std::collections::HashMap<Vec<u8>, Arc<str>> = Default::default();
        for _ in 0..count {
            reader.read_exact(&mut u64buf)?;
            let timestamp_us = u64::from_le_bytes(u64buf);
            let mut b1 = [0u8; 1];
            reader.read_exact(&mut b1)?;
            let protocol = protocol_from_tag(b1[0])?;
            reader.read_exact(&mut b1)?;
            let mut bus_bytes = vec![0u8; b1[0] as usize];
            reader.read_exact(&mut bus_bytes)?;
            let bus = match bus_cache.get(&bus_bytes) {
                Some(b) => b.clone(),
                None => {
                    let s: Arc<str> = Arc::from(
                        std::str::from_utf8(&bus_bytes)
                            .map_err(|_| Error::Format("bus id not UTF-8".into()))?,
                    );
                    bus_cache.insert(bus_bytes.clone(), s.clone());
                    s
                }
            };
            let mut u32buf = [0u8; 4];
            reader.read_exact(&mut u32buf)?;
            let message_id = u32::from_le_bytes(u32buf);
            let mut u16buf = [0u8; 2];
            reader.read_exact(&mut u16buf)?;
            let len = u16::from_le_bytes(u16buf) as usize;
            let mut payload = vec![0u8; len];
            reader.read_exact(&mut payload)?;
            records.push(TraceRecord {
                timestamp_us,
                bus,
                message_id,
                payload,
                protocol,
            });
        }
        Ok(Trace { records })
    }
}

impl IntoIterator for Trace {
    type Item = TraceRecord;
    type IntoIter = std::vec::IntoIter<TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.into_iter()
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceRecord;
    type IntoIter = std::slice::Iter<'a, TraceRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

impl FromIterator<TraceRecord> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        Trace {
            records: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceRecord> for Trace {
    fn extend<I: IntoIterator<Item = TraceRecord>>(&mut self, iter: I) {
        self.records.extend(iter);
    }
}

fn protocol_tag(p: Protocol) -> u8 {
    match p {
        Protocol::Can => 0,
        Protocol::Lin => 1,
        Protocol::SomeIp => 2,
        Protocol::CanFd => 3,
    }
}

fn protocol_from_tag(tag: u8) -> Result<Protocol> {
    Ok(match tag {
        0 => Protocol::Can,
        1 => Protocol::Lin,
        2 => Protocol::SomeIp,
        3 => Protocol::CanFd,
        other => return Err(Error::Format(format!("unknown protocol tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(t: u64, bus: &str, id: u32) -> TraceRecord {
        TraceRecord {
            timestamp_us: t,
            bus: Arc::from(bus),
            message_id: id,
            payload: vec![t as u8, id as u8],
            protocol: Protocol::Can,
        }
    }

    #[test]
    fn push_sort_merge() {
        let mut t = Trace::new();
        t.push(record(30, "FC", 1));
        t.push(record(10, "FC", 2));
        t.sort_by_time();
        assert_eq!(t.records()[0].timestamp_us, 10);
        let mut other = Trace::from_records(vec![record(20, "DC", 3)]);
        other.merge(t);
        let times: Vec<u64> = other.iter().map(|r| r.timestamp_us).collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn prefix_and_duration() {
        let t = Trace::from_records(vec![record(0, "A", 1), record(1_500_000, "A", 1)]);
        assert_eq!(t.duration_s(), 1.5);
        assert_eq!(t.prefix(1).len(), 1);
        assert_eq!(t.prefix(10).len(), 2);
        assert_eq!(Trace::new().duration_s(), 0.0);
    }

    #[test]
    fn binary_roundtrip() {
        let t = Trace::from_records(vec![
            record(5, "FC", 3),
            TraceRecord {
                timestamp_us: 9,
                bus: Arc::from("K-LIN"),
                message_id: 11,
                payload: vec![],
                protocol: Protocol::Lin,
            },
            TraceRecord {
                timestamp_us: 12,
                bus: Arc::from("ETH"),
                message_id: 0x00D4_0001,
                payload: vec![1; 40],
                protocol: Protocol::SomeIp,
            },
        ]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        let parsed = Trace::read_from(buf.as_slice()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = Trace::read_from(&b"NOPE!"[..]).unwrap_err();
        assert!(matches!(err, Error::Io(_) | Error::Format(_)));
        let err = Trace::read_from(&b"XXXXX\0\0\0\0\0\0\0\0"[..]).unwrap_err();
        assert!(matches!(err, Error::Format(_)));
    }

    #[test]
    fn truncated_stream_rejected() {
        let t = Trace::from_records(vec![record(5, "FC", 3)]);
        let mut buf = Vec::new();
        t.write_to(&mut buf).unwrap();
        assert!(Trace::read_from(&buf[..buf.len() - 1]).is_err());
    }

    #[test]
    fn collection_traits() {
        let t: Trace = vec![record(1, "A", 1)].into_iter().collect();
        assert_eq!(t.len(), 1);
        let mut t2 = Trace::new();
        t2.extend(t.clone());
        assert_eq!(t2.len(), 1);
        assert_eq!((&t2).into_iter().count(), 1);
        assert_eq!(t2.into_iter().count(), 1);
    }

    #[test]
    fn timestamp_seconds() {
        assert_eq!(record(2_500_000, "A", 1).timestamp_s(), 2.5);
    }
}
