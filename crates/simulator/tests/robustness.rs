//! Robustness: hostile or corrupt input must produce errors, never panics.
//! Recorded traces come from real vehicles through flaky capture hardware —
//! the reader is the first line of defence.

use ivnt_simulator::trace::Trace;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes never panic the trace reader.
    #[test]
    fn trace_reader_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let _ = Trace::read_from(bytes.as_slice());
    }

    /// A valid stream with a flipped byte either still parses or errors —
    /// never panics, and never produces more records than declared.
    #[test]
    fn corrupted_valid_stream_is_safe(
        seed in 0u64..50,
        flip_at in 0usize..200,
        flip_bit in 0u8..8,
    ) {
        let data = ivnt_simulator::scenario::generate(
            &ivnt_simulator::scenario::DataSetSpec::syn()
                .with_duration_s(0.2)
                .with_seed(seed),
        )
        .expect("generate");
        let mut buf = Vec::new();
        data.trace.write_to(&mut buf).expect("write");
        let idx = flip_at % buf.len();
        buf[idx] ^= 1 << flip_bit;
        if let Ok(parsed) = Trace::read_from(buf.as_slice()) {
            prop_assert!(parsed.len() <= data.trace.len() * 2 + 1);
        }
    }

    /// Truncation at any point either errors or returns a prefix.
    #[test]
    fn truncated_stream_is_safe(cut in 0usize..2000) {
        let data = ivnt_simulator::scenario::generate(
            &ivnt_simulator::scenario::DataSetSpec::syn().with_duration_s(0.2),
        )
        .expect("generate");
        let mut buf = Vec::new();
        data.trace.write_to(&mut buf).expect("write");
        let cut = cut.min(buf.len());
        let _ = Trace::read_from(&buf[..cut]);
    }
}
