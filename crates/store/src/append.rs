//! Append-mode `.ivns`: live ingest with crash-recoverable group frames.
//!
//! The batch [`StoreWriter`](crate::StoreWriter) places its entire index in
//! a footer written at `finish()`; kill the process mid-trace and the file
//! is unreadable. Live-session ingest needs the opposite durability shape:
//! every flushed micro-batch must survive a crash, and a concurrent reader
//! must be able to tail the file while it grows.
//!
//! [`AppendWriter`] keeps the chunk encoding, clustering and zone maps of
//! the batch writer but makes the file *self-describing as it grows*: each
//! flushed row group is preceded by a checksummed **group frame header**
//! ([`GROUP_MAGIC`], varint-encoded chunk index for just that group, newly
//! interned bus names) followed by the ordinary chunk bytes. Flushes are
//! triggered by row count ([`AppendOptions::flush_rows`]), by record-time
//! advance ([`AppendOptions::flush_interval_us`]) or explicitly.
//!
//! * [`AppendWriter::seal`] appends the standard footer + trailer, so a
//!   cleanly closed append file is read by [`StoreReader`] unchanged — the
//!   interleaved frame headers are simply never consulted (chunk offsets in
//!   the footer are absolute and skip over them).
//! * [`recover`] walks the frames of a torn (unsealed) file, validating
//!   header and chunk checksums, truncating the torn tail group and
//!   rebuilding the footer index — at most the unflushed tail is lost.
//! * [`seal_recovered`] turns a recovered file back into a standard sealed
//!   store in place.
//! * [`StoreFollower`] tails a growing file, emitting each newly completed
//!   group's records in trace order — the reader half of a live session.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use crate::error::{Error, Result};
use crate::layout::{
    checksum, decode_chunk, encode_chunk, encode_footer, ChunkMeta, EncodedRow, Footer,
    IndexedRecord, ZoneMap, END_MAGIC, MAGIC, TRAILER_LEN,
};
use crate::reader::StoreReader;
use crate::record::{protocol_tag, Record};
use crate::varint;
use crate::writer::WriterOptions;

/// Marker opening every appended group frame.
pub const GROUP_MAGIC: &[u8; 8] = b"IVNSGRP\0";

/// Upper bound on one frame header (sanity cap while walking; a header
/// indexes at most one group's chunks and bus names).
const MAX_HEADER_LEN: u32 = 16 << 20;

/// Tuning knobs for [`AppendWriter`].
#[derive(Debug, Clone, Copy, Default)]
pub struct AppendOptions {
    /// Chunk layout of each flushed group (clustering, chunk rows).
    pub writer: WriterOptions,
    /// Row-count flush trigger: a group is flushed once this many rows are
    /// buffered. `0` falls back to [`WriterOptions::group_rows`].
    pub flush_rows: usize,
    /// Record-time flush trigger in microseconds: a group is flushed when
    /// the newest buffered record's timestamp is this far past the oldest's.
    /// `0` disables the time trigger.
    pub flush_interval_us: u64,
}

impl AppendOptions {
    /// Effective row-count trigger.
    pub fn effective_flush_rows(&self) -> usize {
        if self.flush_rows == 0 {
            self.writer.group_rows()
        } else {
            self.flush_rows
        }
    }
}

/// Report of one flushed group frame, for flush-latency accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GroupFlush {
    /// Flushed group id.
    pub group: u32,
    /// Rows in the group.
    pub rows: usize,
    /// Frame bytes written (header + chunks).
    pub bytes: u64,
    /// Wall-clock seconds spent encoding and writing the frame.
    pub seconds: f64,
}

/// Streaming append-mode writer for the `.ivns` format.
pub struct AppendWriter<W: Write> {
    out: W,
    options: AppendOptions,
    /// Bytes written so far == offset of the next write.
    offset: u64,
    /// Bus dictionary in first-seen order.
    buses: Vec<Arc<str>>,
    /// Buses already persisted in earlier frame headers.
    buses_written: usize,
    /// Buffered rows of the current (unflushed) group, in append order.
    group: Vec<PendingRow>,
    /// Chunk index accumulated for the seal-time footer.
    chunks: Vec<ChunkMeta>,
    rows_total: u64,
    groups: u32,
    /// Oldest buffered record timestamp (time-trigger anchor).
    oldest_buffered_us: u64,
}

struct PendingRow {
    index: u64,
    timestamp_us: u64,
    bus_id: u32,
    message_id: u32,
    protocol: u8,
    payload: Vec<u8>,
}

impl AppendWriter<BufWriter<File>> {
    /// Creates `path` and writes the store header.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failure.
    pub fn create<P: AsRef<Path>>(path: P, options: AppendOptions) -> Result<Self> {
        AppendWriter::new(BufWriter::new(File::create(path)?), options)
    }
}

impl<W: Write> AppendWriter<W> {
    /// Wraps `out` and writes the store header.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if the header write fails.
    pub fn new(mut out: W, options: AppendOptions) -> Result<Self> {
        out.write_all(MAGIC)?;
        out.flush()?;
        Ok(AppendWriter {
            out,
            options,
            offset: MAGIC.len() as u64,
            buses: Vec::new(),
            buses_written: 0,
            group: Vec::new(),
            chunks: Vec::new(),
            rows_total: 0,
            groups: 0,
            oldest_buffered_us: 0,
        })
    }

    /// Appends one record, flushing a micro-batched group frame when the
    /// row-count or record-time trigger fires. Returns the flush report
    /// when a frame was written.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] if a frame flush fails.
    pub fn append(&mut self, record: &Record) -> Result<Option<GroupFlush>> {
        let bus_id = self.intern_bus(&record.bus);
        if self.group.is_empty() {
            self.oldest_buffered_us = record.timestamp_us;
        }
        self.group.push(PendingRow {
            index: self.rows_total,
            timestamp_us: record.timestamp_us,
            bus_id,
            message_id: record.message_id,
            protocol: protocol_tag(record.protocol),
            payload: record.payload.clone(),
        });
        self.rows_total += 1;
        let rows_due = self.group.len() >= self.options.effective_flush_rows();
        let time_due = self.options.flush_interval_us > 0
            && record.timestamp_us.saturating_sub(self.oldest_buffered_us)
                >= self.options.flush_interval_us;
        if rows_due || time_due {
            return self.flush();
        }
        Ok(None)
    }

    /// Flushes the buffered rows as one group frame (no-op when empty).
    ///
    /// After this returns, the frame is recoverable: the inner writer has
    /// been flushed through to its sink.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on write failure.
    pub fn flush(&mut self) -> Result<Option<GroupFlush>> {
        if self.group.is_empty() {
            return Ok(None);
        }
        let started = Instant::now();
        let mut rows = std::mem::take(&mut self.group);
        if self.options.writer.cluster {
            rows.sort_by_key(|r| (r.bus_id, r.message_id, r.index));
        }
        let group_id = self.groups;
        self.groups += 1;

        // Cut chunks first: the frame header indexes them, so their bytes
        // and metadata must exist before the header can be written.
        let chunk_rows = self.options.writer.chunk_rows.max(1);
        let mut chunk_bytes: Vec<Vec<u8>> = Vec::new();
        let mut metas: Vec<ChunkMeta> = Vec::new();
        for chunk in rows.chunks(chunk_rows) {
            let encoded_rows: Vec<EncodedRow<'_>> = chunk
                .iter()
                .map(|r| EncodedRow {
                    index: r.index,
                    timestamp_us: r.timestamp_us,
                    bus_id: r.bus_id,
                    message_id: r.message_id,
                    protocol: r.protocol,
                    payload: &r.payload,
                })
                .collect();
            let zone = ZoneMap::compute(&encoded_rows, self.buses.len());
            let bytes = encode_chunk(&encoded_rows);
            metas.push(ChunkMeta {
                offset: 0, // absolute offset patched below, once known
                len: bytes.len() as u32,
                rows: chunk.len() as u32,
                group: group_id,
                checksum: checksum(&bytes),
                zone,
            });
            chunk_bytes.push(bytes);
        }

        let header = encode_frame_header(
            group_id,
            self.options.writer.cluster,
            &self.buses[self.buses_written..],
            &metas,
        );
        self.out.write_all(GROUP_MAGIC)?;
        self.out.write_all(&(header.len() as u32).to_le_bytes())?;
        self.out.write_all(&header)?;
        self.out.write_all(&checksum(&header).to_le_bytes())?;
        let mut chunk_offset = self.offset + (GROUP_MAGIC.len() + 4 + header.len() + 8) as u64;
        for (meta, bytes) in metas.iter_mut().zip(&chunk_bytes) {
            meta.offset = chunk_offset;
            self.out.write_all(bytes)?;
            chunk_offset += bytes.len() as u64;
        }
        let frame_bytes = chunk_offset - self.offset;
        self.offset = chunk_offset;
        self.buses_written = self.buses.len();
        let group_rows: usize = metas.iter().map(|m| m.rows as usize).sum();
        self.chunks.extend(metas);
        // Durability point: push the frame through to the sink so a crash
        // after this call loses nothing.
        self.out.flush()?;
        Ok(Some(GroupFlush {
            group: group_id,
            rows: group_rows,
            bytes: frame_bytes,
            seconds: started.elapsed().as_secs_f64(),
        }))
    }

    /// Flushes any buffered rows, writes the standard footer and trailer
    /// (making the file a plain sealed `.ivns`), and returns the inner
    /// writer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] / [`Error::Format`] on write or encoding
    /// failure.
    pub fn seal(mut self) -> Result<W> {
        self.flush()?;
        let footer = Footer {
            buses: std::mem::take(&mut self.buses),
            rows: self.rows_total,
            groups: self.groups,
            group_rows: self.options.effective_flush_rows() as u32,
            clustered: self.options.writer.cluster,
            generation: u64::from(self.groups),
            chunks: std::mem::take(&mut self.chunks),
        };
        write_seal(&mut self.out, self.offset, &footer)?;
        Ok(self.out)
    }

    /// Rows appended so far (flushed + buffered).
    pub fn rows(&self) -> u64 {
        self.rows_total
    }

    /// Bytes written so far (header + flushed frames; excludes buffered
    /// rows and any future seal).
    pub fn bytes_written(&self) -> u64 {
        self.offset
    }

    /// Group frames flushed so far.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Rows buffered in the not-yet-flushed tail group.
    pub fn buffered_rows(&self) -> usize {
        self.group.len()
    }

    fn intern_bus(&mut self, bus: &Arc<str>) -> u32 {
        for (i, known) in self.buses.iter().enumerate() {
            if known.as_ref() == bus.as_ref() {
                return i as u32;
            }
        }
        self.buses.push(bus.clone());
        (self.buses.len() - 1) as u32
    }
}

/// Writes `footer` + trailer at `offset` through `out`.
fn write_seal<W: Write>(out: &mut W, offset: u64, footer: &Footer) -> Result<()> {
    let footer_bytes = encode_footer(footer)?;
    out.write_all(&footer_bytes)?;
    out.write_all(&offset.to_le_bytes())?;
    out.write_all(&(footer_bytes.len() as u64).to_le_bytes())?;
    out.write_all(&checksum(&footer_bytes).to_le_bytes())?;
    out.write_all(END_MAGIC)?;
    out.flush()?;
    Ok(())
}

/// Varint frame header: group id, flags, newly interned buses, chunk index.
fn encode_frame_header(
    group: u32,
    clustered: bool,
    new_buses: &[Arc<str>],
    metas: &[ChunkMeta],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + metas.len() * 32);
    varint::write_u64(&mut out, u64::from(group));
    out.push(u8::from(clustered));
    varint::write_u64(&mut out, new_buses.len() as u64);
    for bus in new_buses {
        varint::write_u64(&mut out, bus.len() as u64);
        out.extend_from_slice(bus.as_bytes());
    }
    varint::write_u64(&mut out, metas.len() as u64);
    for meta in metas {
        varint::write_u64(&mut out, u64::from(meta.rows));
        varint::write_u64(&mut out, u64::from(meta.len));
        out.extend_from_slice(&meta.checksum.to_le_bytes());
        varint::write_u64(&mut out, meta.zone.min_t_us);
        varint::write_u64(&mut out, meta.zone.max_t_us);
        varint::write_u64(&mut out, u64::from(meta.zone.min_mid));
        varint::write_u64(&mut out, u64::from(meta.zone.max_mid));
        varint::write_u64(&mut out, meta.zone.bus_bits.len() as u64);
        out.extend_from_slice(&meta.zone.bus_bits);
    }
    out
}

/// One decoded group frame.
struct FrameInfo {
    group: u32,
    clustered: bool,
    /// Chunk index with absolute file offsets.
    metas: Vec<ChunkMeta>,
    /// Decoded records (only when requested), in on-disk (clustered) order.
    records: Option<Vec<IndexedRecord>>,
    /// File offset just past the frame.
    end: u64,
}

/// Outcome of trying to read one frame at a file position.
enum FrameRead {
    /// A complete, checksum-valid frame.
    Complete(FrameInfo),
    /// Not enough bytes yet — a torn tail (recovery) or a frame still
    /// being written (follower).
    Incomplete,
    /// The position does not start with [`GROUP_MAGIC`] — either the
    /// sealed footer begins here or the tail is garbage.
    NotAFrame,
    /// All bytes are present but a checksum or the header structure is
    /// invalid.
    Corrupt(String),
}

/// Reads the frame at `pos`. `buses` is extended with the frame's newly
/// interned names only when the frame is complete and valid.
fn read_frame<R: Read + Seek>(
    inner: &mut R,
    pos: u64,
    file_len: u64,
    buses: &mut Vec<Arc<str>>,
    want_records: bool,
) -> Result<FrameRead> {
    let avail = file_len.saturating_sub(pos);
    if avail < (GROUP_MAGIC.len() + 4) as u64 {
        return Ok(FrameRead::Incomplete);
    }
    inner.seek(SeekFrom::Start(pos))?;
    let mut magic = [0u8; 8];
    inner.read_exact(&mut magic)?;
    if &magic != GROUP_MAGIC {
        return Ok(FrameRead::NotAFrame);
    }
    let mut len4 = [0u8; 4];
    inner.read_exact(&mut len4)?;
    let header_len = u32::from_le_bytes(len4);
    if header_len > MAX_HEADER_LEN {
        return Ok(FrameRead::Corrupt(format!(
            "frame header length {header_len} exceeds cap"
        )));
    }
    if avail < (GROUP_MAGIC.len() + 4 + header_len as usize + 8) as u64 {
        return Ok(FrameRead::Incomplete);
    }
    let mut header = vec![0u8; header_len as usize];
    inner.read_exact(&mut header)?;
    let mut sum8 = [0u8; 8];
    inner.read_exact(&mut sum8)?;
    if checksum(&header) != u64::from_le_bytes(sum8) {
        return Ok(FrameRead::Corrupt("frame header checksum mismatch".into()));
    }

    // Parse the header.
    let mut cur = varint::Cursor::new(&header);
    type ParsedHeader = (u32, bool, Vec<Arc<str>>, Vec<ChunkMeta>);
    let mut parse = || -> Result<ParsedHeader> {
        let group = u32::try_from(cur.read_u64()?)
            .map_err(|_| Error::Format("frame group id out of range".into()))?;
        let clustered = cur.read_u8()? != 0;
        let n_buses = cur.read_u64()? as usize;
        if n_buses > header.len() {
            return Err(Error::Format("frame bus count exceeds header".into()));
        }
        let mut new_buses = Vec::with_capacity(n_buses);
        for _ in 0..n_buses {
            let len = cur.read_u64()? as usize;
            let bytes = cur.read_slice(len)?;
            let name = std::str::from_utf8(bytes)
                .map_err(|_| Error::Format("frame bus name is not utf-8".into()))?;
            new_buses.push(Arc::<str>::from(name));
        }
        let n_chunks = cur.read_u64()? as usize;
        if n_chunks > header.len() {
            return Err(Error::Format("frame chunk count exceeds header".into()));
        }
        let mut metas = Vec::with_capacity(n_chunks);
        for _ in 0..n_chunks {
            let rows = u32::try_from(cur.read_u64()?)
                .map_err(|_| Error::Format("frame chunk rows out of range".into()))?;
            let len = u32::try_from(cur.read_u64()?)
                .map_err(|_| Error::Format("frame chunk length out of range".into()))?;
            let chunk_sum = cur.read_u64_le()?;
            let min_t_us = cur.read_u64()?;
            let max_t_us = cur.read_u64()?;
            let min_mid = u32::try_from(cur.read_u64()?)
                .map_err(|_| Error::Format("frame zone min mid out of range".into()))?;
            let max_mid = u32::try_from(cur.read_u64()?)
                .map_err(|_| Error::Format("frame zone max mid out of range".into()))?;
            let bits_len = cur.read_u64()? as usize;
            let bus_bits = cur.read_slice(bits_len)?.to_vec();
            metas.push(ChunkMeta {
                offset: 0,
                len,
                rows,
                group: 0,
                checksum: chunk_sum,
                zone: ZoneMap {
                    min_t_us,
                    max_t_us,
                    min_mid,
                    max_mid,
                    bus_bits,
                },
            });
        }
        Ok((group, clustered, new_buses, metas))
    };
    let (group, clustered, new_buses, mut metas) = match parse() {
        Ok(parsed) => parsed,
        Err(Error::Io(e)) => return Err(Error::Io(e)),
        Err(e) => return Ok(FrameRead::Corrupt(e.to_string())),
    };

    // Validate the chunk bytes.
    let chunks_start = pos + (GROUP_MAGIC.len() + 4 + header.len() + 8) as u64;
    let chunk_total: u64 = metas.iter().map(|m| u64::from(m.len)).sum();
    if file_len.saturating_sub(chunks_start) < chunk_total {
        return Ok(FrameRead::Incomplete);
    }
    let mut extended = buses.clone();
    extended.extend(new_buses.iter().cloned());
    let mut offset = chunks_start;
    let mut records = want_records.then(Vec::new);
    for meta in &mut metas {
        meta.offset = offset;
        meta.group = group;
        let mut bytes = vec![0u8; meta.len as usize];
        inner.seek(SeekFrom::Start(offset))?;
        inner.read_exact(&mut bytes)?;
        if checksum(&bytes) != meta.checksum {
            return Ok(FrameRead::Corrupt(format!(
                "chunk checksum mismatch in group {group}"
            )));
        }
        if let Some(records) = records.as_mut() {
            match decode_chunk(&bytes, &extended) {
                Ok(mut rows) => records.append(&mut rows),
                Err(Error::Io(e)) => return Err(Error::Io(e)),
                Err(e) => return Ok(FrameRead::Corrupt(e.to_string())),
            }
        }
        offset += u64::from(meta.len);
    }
    *buses = extended;
    Ok(FrameRead::Complete(FrameInfo {
        group,
        clustered,
        metas,
        records,
        end: offset,
    }))
}

/// Result of [`recover`]: the rebuilt index plus what the walk found.
#[derive(Debug, Clone)]
pub struct Recovered {
    /// Rebuilt (or, for sealed files, decoded) footer index.
    pub footer: Footer,
    /// `true` when the file carries a valid footer + trailer already.
    pub sealed: bool,
    /// Bytes of the valid prefix: header plus all complete group frames.
    pub valid_len: u64,
    /// Total file length at recovery time.
    pub file_len: u64,
}

impl Recovered {
    /// Bytes past the valid prefix (the torn tail; `0` when sealed).
    pub fn torn_bytes(&self) -> u64 {
        if self.sealed {
            0
        } else {
            self.file_len.saturating_sub(self.valid_len)
        }
    }
}

/// Walks the group frames of `inner`, rebuilding the footer index from
/// checksummed frame headers and truncating (logically) any torn tail.
///
/// Works on sealed files too: the walk stops at the footer, whose
/// validated contents are then preferred.
///
/// # Errors
///
/// Returns [`Error::BadMagic`] when the file is not an `.ivns` store, and
/// [`Error::Io`] on read failure. A torn or corrupt tail is *not* an
/// error — it is truncated and reported via [`Recovered::torn_bytes`].
pub fn recover_reader<R: Read + Seek>(inner: &mut R) -> Result<Recovered> {
    let file_len = inner.seek(SeekFrom::End(0))?;
    inner.seek(SeekFrom::Start(0))?;
    let mut magic = [0u8; 8];
    if file_len < MAGIC.len() as u64 {
        return Err(Error::BadMagic);
    }
    inner.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(Error::BadMagic);
    }

    let mut buses: Vec<Arc<str>> = Vec::new();
    let mut chunks: Vec<ChunkMeta> = Vec::new();
    let mut rows = 0u64;
    let mut groups = 0u32;
    let mut max_group_rows = 0u64;
    let mut clustered = true;
    let mut pos = MAGIC.len() as u64;
    // Incomplete, non-frame and corrupt reads all end the valid prefix.
    while let FrameRead::Complete(frame) = read_frame(inner, pos, file_len, &mut buses, false)? {
        let frame_rows: u64 = frame.metas.iter().map(|m| u64::from(m.rows)).sum();
        rows += frame_rows;
        max_group_rows = max_group_rows.max(frame_rows);
        clustered = clustered && frame.clustered;
        groups = groups.max(frame.group + 1);
        chunks.extend(frame.metas);
        pos = frame.end;
    }

    // A sealed file's footer begins exactly where its frames end; prefer
    // the validated footer when the trailer checks out.
    if let Some(footer) = try_read_footer(inner, pos, file_len)? {
        return Ok(Recovered {
            footer,
            sealed: true,
            valid_len: file_len,
            file_len,
        });
    }

    Ok(Recovered {
        footer: Footer {
            buses,
            rows,
            groups,
            group_rows: max_group_rows.max(1) as u32,
            clustered,
            generation: u64::from(groups),
            chunks,
        },
        sealed: false,
        valid_len: pos,
        file_len,
    })
}

/// Validates the trailer + footer of a sealed file whose frames end at
/// `frames_end`. Returns `None` when no valid seal is present.
fn try_read_footer<R: Read + Seek>(
    inner: &mut R,
    frames_end: u64,
    file_len: u64,
) -> Result<Option<Footer>> {
    if file_len < frames_end + TRAILER_LEN as u64 {
        return Ok(None);
    }
    inner.seek(SeekFrom::Start(file_len - TRAILER_LEN as u64))?;
    let mut trailer = [0u8; TRAILER_LEN];
    inner.read_exact(&mut trailer)?;
    if &trailer[24..32] != END_MAGIC {
        return Ok(None);
    }
    let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
    let footer_len = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
    let footer_sum = u64::from_le_bytes(trailer[16..24].try_into().expect("8 bytes"));
    let trailer_start = file_len - TRAILER_LEN as u64;
    if footer_offset != frames_end || footer_offset.saturating_add(footer_len) != trailer_start {
        return Ok(None);
    }
    inner.seek(SeekFrom::Start(footer_offset))?;
    let mut footer_bytes = vec![0u8; footer_len as usize];
    inner.read_exact(&mut footer_bytes)?;
    if checksum(&footer_bytes) != footer_sum {
        return Ok(None);
    }
    match crate::layout::decode_footer(&footer_bytes) {
        Ok(footer) => Ok(Some(footer)),
        Err(Error::Io(e)) => Err(Error::Io(e)),
        Err(_) => Ok(None),
    }
}

/// Recovers the index of the store at `path` (sealed or torn).
///
/// # Errors
///
/// See [`recover_reader`].
pub fn recover<P: AsRef<Path>>(path: P) -> Result<Recovered> {
    let mut file = BufReader::new(File::open(path)?);
    recover_reader(&mut file)
}

/// Opens a possibly-torn store for reading: recovers the index and binds
/// it to a [`StoreReader`] without requiring a seal.
///
/// # Errors
///
/// See [`recover_reader`].
pub fn open_recovered<P: AsRef<Path>>(
    path: P,
) -> Result<(StoreReader<BufReader<File>>, Recovered)> {
    let recovered = recover(&path)?;
    let inner = BufReader::new(File::open(path)?);
    let reader = StoreReader::with_footer(inner, recovered.footer.clone());
    Ok((reader, recovered))
}

/// Seals a recovered store in place: truncates the torn tail and appends
/// the standard footer + trailer, after which [`StoreReader::open`] works
/// unchanged. Already-sealed files are left untouched.
///
/// # Errors
///
/// See [`recover_reader`]; additionally [`Error::Io`] on truncate/write
/// failure.
pub fn seal_recovered<P: AsRef<Path>>(path: P) -> Result<Recovered> {
    let mut recovered = recover(&path)?;
    if recovered.sealed {
        return Ok(recovered);
    }
    let file = OpenOptions::new().read(true).write(true).open(&path)?;
    file.set_len(recovered.valid_len)?;
    let mut out = BufWriter::new(file);
    out.seek(SeekFrom::Start(recovered.valid_len))?;
    write_seal(&mut out, recovered.valid_len, &recovered.footer)?;
    recovered.sealed = true;
    recovered.file_len = recovered.valid_len;
    Ok(recovered)
}

/// One newly completed group surfaced by a [`StoreFollower`] poll.
#[derive(Debug, Clone)]
pub struct TailGroup {
    /// Group id as recorded in its frame header.
    pub group: u32,
    /// The group's records, restored to trace order.
    pub records: Vec<Record>,
}

/// Result of one [`StoreFollower::poll`].
#[derive(Debug, Clone, Default)]
pub struct TailBatch {
    /// Groups completed since the previous poll, in file order.
    pub groups: Vec<TailGroup>,
    /// `true` once a valid footer + trailer follows the final frame — the
    /// writer sealed the file; no further groups will appear.
    pub sealed: bool,
}

/// Tails a growing append-mode store, emitting each completed group once.
///
/// Safe to run concurrently with an [`AppendWriter`] on the same file:
/// frames are append-only and a frame is only surfaced once its header and
/// every chunk checksum validate, so a partially written tail is simply
/// not yet visible.
pub struct StoreFollower<R: Read + Seek> {
    inner: R,
    pos: u64,
    buses: Vec<Arc<str>>,
    sealed: bool,
}

impl StoreFollower<BufReader<File>> {
    /// Opens `path` for tailing from the first group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadMagic`] when the header is absent or wrong, and
    /// [`Error::Io`] on open failure.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        StoreFollower::new(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> StoreFollower<R> {
    /// Wraps `inner` for tailing from the first group.
    ///
    /// # Errors
    ///
    /// Returns [`Error::BadMagic`] when the header is absent or wrong.
    pub fn new(mut inner: R) -> Result<Self> {
        let len = inner.seek(SeekFrom::End(0))?;
        if len < MAGIC.len() as u64 {
            return Err(Error::BadMagic);
        }
        inner.seek(SeekFrom::Start(0))?;
        let mut magic = [0u8; 8];
        inner.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(Error::BadMagic);
        }
        Ok(StoreFollower {
            inner,
            pos: MAGIC.len() as u64,
            buses: Vec::new(),
            sealed: false,
        })
    }

    /// Reads any groups completed since the previous poll.
    ///
    /// An in-progress tail frame is left for the next poll. Once the
    /// writer's seal is detected, [`TailBatch::sealed`] is `true` and
    /// subsequent polls return empty sealed batches.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on read failure and
    /// [`Error::Format`] / [`Error::ChunkChecksum`]-shaped corruption as
    /// [`Error::Format`] when a *complete* frame fails validation (an
    /// appender never rewrites flushed bytes, so this is real corruption,
    /// not a race).
    pub fn poll(&mut self) -> Result<TailBatch> {
        if self.sealed {
            return Ok(TailBatch {
                groups: Vec::new(),
                sealed: true,
            });
        }
        let file_len = self.inner.seek(SeekFrom::End(0))?;
        let mut out = TailBatch::default();
        loop {
            match read_frame(&mut self.inner, self.pos, file_len, &mut self.buses, true)? {
                FrameRead::Complete(frame) => {
                    let mut rows = frame.records.expect("records requested");
                    rows.sort_by_key(|r| r.index);
                    out.groups.push(TailGroup {
                        group: frame.group,
                        records: rows.into_iter().map(|r| r.record).collect(),
                    });
                    self.pos = frame.end;
                }
                FrameRead::Incomplete => break,
                FrameRead::NotAFrame => {
                    if try_read_footer(&mut self.inner, self.pos, file_len)?.is_some() {
                        self.sealed = true;
                        out.sealed = true;
                    }
                    break;
                }
                FrameRead::Corrupt(msg) => {
                    return Err(Error::Format(format!(
                        "corrupt group frame at offset {}: {msg}",
                        self.pos
                    )));
                }
            }
        }
        Ok(out)
    }

    /// File offset of the next unread frame.
    pub fn position(&self) -> u64 {
        self.pos
    }
}
