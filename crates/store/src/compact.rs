//! Store compaction: rewrite a sealed store into full-size row groups.
//!
//! Live-session ingest ([`AppendWriter`](crate::append::AppendWriter))
//! flushes a group frame per micro-batch for durability, so a long session
//! seals into a file of many *small* row groups. Small groups hurt readers
//! twice: the chunk index grows (more zone-map probes per scan) and
//! clustering only sorts within a group, so narrow groups barely separate
//! message ids and pruning stops firing. Compaction streams the sealed
//! file through a fresh [`StoreWriter`] in exact trace order, re-buffering
//! rows into full `chunks_per_group × chunk_rows` groups and re-clustering
//! each one — the rerun-style "merge many small batches" rewrite.
//!
//! The rewritten file holds **bit-identical contents**: the same records
//! in the same trace order ([`StoreReader::read_all`] on input and output
//! agree), only the physical grouping changes. The output's
//! [`generation`](crate::layout::Footer::generation) restarts at its own
//! group count, so plan caches keyed on (generation, rows, chunk count)
//! treat the compacted file as a new store.

use std::fs::File;
use std::io::{BufWriter, Read, Seek, Write};
use std::path::Path;

use crate::error::{Error, Result};
use crate::reader::{Predicate, StoreReader};
use crate::writer::{StoreWriter, WriterOptions};

/// What a compaction did — group counts are the headline (the whole point
/// is `groups_after ≪ groups_before`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReport {
    /// Rows rewritten (identical before and after).
    pub rows: u64,
    /// Row groups in the input store.
    pub groups_before: u32,
    /// Row groups in the rewritten store.
    pub groups_after: u32,
    /// Chunks in the input store's index.
    pub chunks_before: usize,
    /// Chunks in the rewritten store's index.
    pub chunks_after: usize,
}

/// Streams every record of `reader` (trace order) into a new store written
/// to `out` with `options`, returning the finished sink and a report.
///
/// # Errors
///
/// Propagates read-side corruption errors ([`Error::ChunkChecksum`]) and
/// write-side I/O errors.
pub fn compact<R: Read + Seek, W: Write>(
    reader: &mut StoreReader<R>,
    out: W,
    options: WriterOptions,
) -> Result<(W, CompactReport)> {
    let groups_before = reader.footer().groups;
    let chunks_before = reader.footer().chunks.len();
    let mut writer = StoreWriter::new(out, options)?;
    reader.scan::<Error, _>(&Predicate::all(), |group| {
        for r in &group {
            writer.append(r)?;
        }
        Ok(())
    })?;
    let rows = writer.rows();
    let out = writer.finish()?;
    // The writer cuts full groups of `group_rows` rows plus one partial
    // tail, and `chunk_rows` divides `group_rows`, so the output geometry
    // is exactly the ceiling division — no need to re-read the sink.
    let group_rows = options.group_rows().max(1) as u64;
    let chunk_rows = options.chunk_rows.max(1) as u64;
    let report = CompactReport {
        rows,
        groups_before,
        groups_after: rows.div_ceil(group_rows) as u32,
        chunks_before,
        chunks_after: rows.div_ceil(chunk_rows) as usize,
    };
    ivnt_obs::with(|obs| {
        obs.add("store_compactions_total", 1);
        obs.add("store_compact_rows_total", report.rows);
        obs.add(
            "store_compact_groups_merged_total",
            u64::from(report.groups_before.saturating_sub(report.groups_after)),
        );
    });
    Ok((out, report))
}

/// Opens the sealed store at `input`, compacts it, and writes the result
/// to `output` (created/truncated).
///
/// # Errors
///
/// Same conditions as [`compact`], plus [`StoreReader::open`]'s validation
/// errors — an unsealed append-mode file must be sealed (e.g. with
/// [`seal_recovered`](crate::append::seal_recovered)) first.
pub fn compact_file<P: AsRef<Path>, Q: AsRef<Path>>(
    input: P,
    output: Q,
    options: WriterOptions,
) -> Result<CompactReport> {
    let mut reader = StoreReader::open(input)?;
    let out = BufWriter::new(File::create(output)?);
    let (mut out, report) = compact(&mut reader, out, options)?;
    out.flush()?;
    Ok(report)
}
