//! Error type for the trace store.
//!
//! Corruption is reported through *typed* variants — a damaged fleet
//! recording must surface as a diagnosable error, never a panic, and the
//! caller must be able to distinguish "not a store file" ([`Error::BadMagic`])
//! from "store file with a damaged region" ([`Error::ChunkChecksum`],
//! [`Error::FooterChecksum`], [`Error::Truncated`]).

use std::fmt;

/// Result alias used throughout [`ivnt_store`](crate).
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by writing, opening and scanning store files.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file does not start with the store magic — not a store file.
    BadMagic,
    /// The file ends before a structurally required region.
    Truncated(String),
    /// A chunk's stored checksum disagrees with its bytes.
    ChunkChecksum {
        /// Index of the damaged chunk in the footer index.
        chunk: usize,
    },
    /// The footer's stored checksum disagrees with its bytes.
    FooterChecksum,
    /// Structurally well-placed but semantically invalid bytes
    /// (overlong varint, unknown protocol tag, out-of-range dictionary
    /// reference, ...).
    Format(String),
    /// Failure converting decoded chunks into tabular batches.
    Frame(ivnt_frame::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "store i/o error: {e}"),
            Error::BadMagic => write!(f, "not a trace store file (bad magic)"),
            Error::Truncated(what) => write!(f, "truncated store file: {what}"),
            Error::ChunkChecksum { chunk } => {
                write!(f, "chunk {chunk} failed its checksum (corrupt data)")
            }
            Error::FooterChecksum => write!(f, "footer failed its checksum (corrupt index)"),
            Error::Format(msg) => write!(f, "malformed store file: {msg}"),
            Error::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<ivnt_frame::Error> for Error {
    fn from(e: ivnt_frame::Error) -> Self {
        Error::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error as _;
        assert_eq!(
            Error::ChunkChecksum { chunk: 3 }.to_string(),
            "chunk 3 failed its checksum (corrupt data)"
        );
        assert!(Error::BadMagic.source().is_none());
        let io = Error::from(std::io::Error::other("x"));
        assert!(io.source().is_some());
    }
}
