//! On-disk layout: magics, checksums, zone maps, chunk codec and footer.
//!
//! A store file is one self-describing journey:
//!
//! ```text
//! ┌──────────────┐
//! │ magic IVNS1\0 │  8 bytes
//! ├──────────────┤
//! │ chunk 0      │  encoded columnar chunk (checksummed)
//! │ chunk 1      │
//! │ ...          │
//! ├──────────────┤
//! │ footer       │  bus dictionary + per-chunk index with zone maps
//! ├──────────────┤
//! │ trailer      │  footer offset/len/checksum + magic IVNSEND1 (32 bytes)
//! └──────────────┘
//! ```
//!
//! Chunks hold a fixed number of rows (the last chunk may be short) and are
//! encoded column-wise: original row indices and timestamps as zigzag-delta
//! varints, bus ids dictionary-encoded, message ids / payload lengths as
//! varints, payload bytes concatenated. Each chunk carries its row count and
//! is covered by an FNV-1a 64 checksum stored in the footer index, so a
//! reader touching only surviving chunks still detects corruption in what it
//! reads — and never pays for what it skips.

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::record::{protocol_from_tag, Record};
use crate::varint::{self, Cursor};

/// Leading file magic (8 bytes, versioned).
pub const MAGIC: &[u8; 8] = b"IVNS1\0\0\0";

/// Trailing file magic (8 bytes, versioned).
pub const END_MAGIC: &[u8; 8] = b"IVNSEND1";

/// Fixed byte length of the trailer:
/// `footer_offset u64 | footer_len u64 | footer_checksum u64 | END_MAGIC`.
pub const TRAILER_LEN: usize = 8 + 8 + 8 + 8;

/// FNV-1a 64 — the store's checksum. Not cryptographic; it detects the
/// bit rot and truncation flaky capture hardware produces.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Per-chunk statistics a scan consults *instead of* decoding the chunk.
///
/// The predicate test is conservative: a `true` means "may contain a
/// matching row", a `false` is a proof of absence (zone-map soundness — the
/// property tests assert a skipped chunk never holds a matching row).
#[derive(Debug, Clone, PartialEq)]
pub struct ZoneMap {
    /// Smallest timestamp in the chunk (µs).
    pub min_t_us: u64,
    /// Largest timestamp in the chunk (µs).
    pub max_t_us: u64,
    /// Smallest message id in the chunk.
    pub min_mid: u32,
    /// Largest message id in the chunk.
    pub max_mid: u32,
    /// Bitset over the footer's bus dictionary: bit `i` set ⇔ the chunk
    /// contains a row on bus `i`.
    pub bus_bits: Vec<u8>,
}

impl ZoneMap {
    /// Zone map of `rows` against a dictionary of `bus_count` entries.
    pub fn compute(rows: &[EncodedRow<'_>], bus_count: usize) -> ZoneMap {
        let mut zm = ZoneMap {
            min_t_us: u64::MAX,
            max_t_us: 0,
            min_mid: u32::MAX,
            max_mid: 0,
            bus_bits: vec![0u8; bus_count.div_ceil(8)],
        };
        for r in rows {
            zm.min_t_us = zm.min_t_us.min(r.timestamp_us);
            zm.max_t_us = zm.max_t_us.max(r.timestamp_us);
            zm.min_mid = zm.min_mid.min(r.message_id);
            zm.max_mid = zm.max_mid.max(r.message_id);
            zm.bus_bits[r.bus_id as usize / 8] |= 1 << (r.bus_id % 8);
        }
        zm
    }

    /// Whether bus dictionary id `bus` occurs in the chunk.
    #[inline]
    pub fn has_bus(&self, bus: u32) -> bool {
        self.bus_bits
            .get(bus as usize / 8)
            .is_some_and(|b| b & (1 << (bus % 8)) != 0)
    }

    /// Whether `mid` lies within the chunk's message-id band.
    #[inline]
    pub fn mid_in_range(&self, mid: u32) -> bool {
        (self.min_mid..=self.max_mid).contains(&mid)
    }

    /// Whether `[from_us, to_us]` overlaps the chunk's time band.
    #[inline]
    pub fn time_overlaps(&self, from_us: u64, to_us: u64) -> bool {
        self.min_t_us <= to_us && self.max_t_us >= from_us
    }
}

/// Footer index entry for one chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkMeta {
    /// Byte offset of the encoded chunk within the file.
    pub offset: u64,
    /// Encoded byte length.
    pub len: u32,
    /// Rows in the chunk.
    pub rows: u32,
    /// Row group the chunk belongs to (order restoration scope).
    pub group: u32,
    /// FNV-1a 64 over the encoded chunk bytes.
    pub checksum: u64,
    /// Skip statistics.
    pub zone: ZoneMap,
}

/// The decoded footer: dictionary + index.
#[derive(Debug, Clone, PartialEq)]
pub struct Footer {
    /// Bus dictionary; chunk rows reference entries by position.
    pub buses: Vec<Arc<str>>,
    /// Total rows across all chunks.
    pub rows: u64,
    /// Number of row groups.
    pub groups: u32,
    /// Rows the writer buffered (and the reader must buffer) per group.
    pub group_rows: u32,
    /// Whether groups were clustered by `(b_id, m_id)` before chunking.
    pub clustered: bool,
    /// Store generation: the number of row-group flushes ever performed
    /// on this file. Advances on every append-mode micro-batch flush, so
    /// plan/result caches keyed on it are invalidated the moment new data
    /// lands. Readers that want a collision-resistant cache epoch should
    /// combine it with `rows` and `chunks.len()` (a compacted rewrite has
    /// the same rows but different chunk geometry).
    pub generation: u64,
    /// Per-chunk index, in file order.
    pub chunks: Vec<ChunkMeta>,
}

/// One row group's extent within the chunk index — the scheduling granule
/// of shard planners (a group is the order-restoration scope, so a shard
/// boundary may never cut through one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroupSpan {
    /// Group id.
    pub group: u32,
    /// Index of the group's first chunk in [`Footer::chunks`].
    pub chunk_start: usize,
    /// One past the group's last chunk in [`Footer::chunks`].
    pub chunk_end: usize,
    /// Rows across the group's chunks.
    pub rows: u64,
}

impl Footer {
    /// Per-group chunk ranges, in group order. Consumed by shard planners
    /// and by `store info --json`; groups are contiguous in file order by
    /// construction (the writer flushes one group at a time).
    pub fn group_spans(&self) -> Vec<GroupSpan> {
        let mut spans: Vec<GroupSpan> = Vec::with_capacity(self.groups as usize);
        for (idx, chunk) in self.chunks.iter().enumerate() {
            match spans.last_mut() {
                Some(span) if span.group == chunk.group => {
                    span.chunk_end = idx + 1;
                    span.rows += u64::from(chunk.rows);
                }
                _ => spans.push(GroupSpan {
                    group: chunk.group,
                    chunk_start: idx,
                    chunk_end: idx + 1,
                    rows: u64::from(chunk.rows),
                }),
            }
        }
        spans
    }
}

/// One record of a chunk under encoding, referencing the writer's buffers.
#[derive(Debug)]
pub struct EncodedRow<'a> {
    /// Original position of the row within the whole trace.
    pub index: u64,
    /// Timestamp (µs).
    pub timestamp_us: u64,
    /// Dictionary id of the bus.
    pub bus_id: u32,
    /// Message id.
    pub message_id: u32,
    /// Protocol tag.
    pub protocol: u8,
    /// Payload bytes.
    pub payload: &'a [u8],
}

/// Encodes one chunk column-wise into bytes.
pub fn encode_chunk(rows: &[EncodedRow<'_>]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rows.len() * 12);
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    // Original row indices: absolute first, zigzag deltas after.
    for (i, r) in rows.iter().enumerate() {
        if i == 0 {
            varint::write_u64(&mut out, r.index);
        } else {
            varint::write_i64(&mut out, r.index.wrapping_sub(rows[i - 1].index) as i64);
        }
    }
    // Timestamps, same delta scheme.
    for (i, r) in rows.iter().enumerate() {
        if i == 0 {
            varint::write_u64(&mut out, r.timestamp_us);
        } else {
            varint::write_i64(
                &mut out,
                r.timestamp_us.wrapping_sub(rows[i - 1].timestamp_us) as i64,
            );
        }
    }
    for r in rows {
        varint::write_u64(&mut out, u64::from(r.bus_id));
    }
    for r in rows {
        varint::write_u64(&mut out, u64::from(r.message_id));
    }
    for r in rows {
        out.push(r.protocol);
    }
    for r in rows {
        varint::write_u64(&mut out, r.payload.len() as u64);
    }
    for r in rows {
        out.extend_from_slice(r.payload);
    }
    out
}

/// A decoded row carrying its original trace position.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedRecord {
    /// Original position of the row within the whole trace.
    pub index: u64,
    /// Dictionary id of the row's bus in the file footer.
    pub bus_id: u32,
    /// The record itself.
    pub record: Record,
}

/// Decodes an encoded chunk back into indexed records, resolving bus ids
/// through `buses` (the footer dictionary).
///
/// # Errors
///
/// Returns [`Error::Truncated`] / [`Error::Format`] for malformed bytes and
/// out-of-dictionary bus references.
pub fn decode_chunk(bytes: &[u8], buses: &[Arc<str>]) -> Result<Vec<IndexedRecord>> {
    let mut cur = Cursor::new(bytes);
    let rows = cur.read_u32_le()? as usize;
    // A chunk never holds more rows than bytes; reject sizes that a
    // truncated-then-checksum-bypassed file could otherwise allocate.
    if rows > bytes.len() {
        return Err(Error::Format(format!(
            "chunk declares {rows} rows in {} bytes",
            bytes.len()
        )));
    }
    let mut indices = Vec::with_capacity(rows);
    let mut prev: u64 = 0;
    for i in 0..rows {
        prev = if i == 0 {
            cur.read_u64()?
        } else {
            prev.wrapping_add(cur.read_i64()? as u64)
        };
        indices.push(prev);
    }
    let mut times = Vec::with_capacity(rows);
    let mut prev_t: u64 = 0;
    for i in 0..rows {
        prev_t = if i == 0 {
            cur.read_u64()?
        } else {
            prev_t.wrapping_add(cur.read_i64()? as u64)
        };
        times.push(prev_t);
    }
    let mut bus_ids = Vec::with_capacity(rows);
    for _ in 0..rows {
        let id = cur.read_u64()?;
        if usize::try_from(id).ok().is_none_or(|i| i >= buses.len()) {
            return Err(Error::Format(format!("bus id {id} not in dictionary")));
        }
        bus_ids.push(id as u32);
    }
    let mut mids = Vec::with_capacity(rows);
    for _ in 0..rows {
        let mid = cur.read_u64()?;
        let mid = u32::try_from(mid)
            .map_err(|_| Error::Format(format!("message id {mid} exceeds u32")))?;
        mids.push(mid);
    }
    let mut protocols = Vec::with_capacity(rows);
    for _ in 0..rows {
        protocols.push(protocol_from_tag(cur.read_u8()?)?);
    }
    let mut lens = Vec::with_capacity(rows);
    let mut total: usize = 0;
    for _ in 0..rows {
        let len = cur.read_u64()?;
        let len =
            usize::try_from(len).map_err(|_| Error::Format("payload length overflow".into()))?;
        total = total
            .checked_add(len)
            .ok_or_else(|| Error::Format("payload length overflow".into()))?;
        lens.push(len);
    }
    if total != cur.remaining() {
        return Err(Error::Format(format!(
            "payload section is {} bytes, lengths sum to {total}",
            cur.remaining()
        )));
    }
    let mut out = Vec::with_capacity(rows);
    for i in 0..rows {
        let payload = cur.read_slice(lens[i])?.to_vec();
        out.push(IndexedRecord {
            index: indices[i],
            bus_id: bus_ids[i],
            record: Record {
                timestamp_us: times[i],
                bus: buses[bus_ids[i] as usize].clone(),
                message_id: mids[i],
                payload,
                protocol: protocols[i],
            },
        });
    }
    Ok(out)
}

/// Encodes the footer.
///
/// # Errors
///
/// Returns [`Error::Format`] for bus names longer than `u16::MAX` bytes.
pub fn encode_footer(footer: &Footer) -> Result<Vec<u8>> {
    let mut out = Vec::new();
    out.extend_from_slice(&(footer.buses.len() as u32).to_le_bytes());
    for bus in &footer.buses {
        let bytes = bus.as_bytes();
        if bytes.len() > u16::MAX as usize {
            return Err(Error::Format("bus id longer than 65535 bytes".into()));
        }
        out.extend_from_slice(&(bytes.len() as u16).to_le_bytes());
        out.extend_from_slice(bytes);
    }
    out.extend_from_slice(&footer.rows.to_le_bytes());
    out.extend_from_slice(&footer.groups.to_le_bytes());
    out.extend_from_slice(&footer.group_rows.to_le_bytes());
    out.push(u8::from(footer.clustered));
    out.extend_from_slice(&footer.generation.to_le_bytes());
    out.extend_from_slice(&(footer.chunks.len() as u32).to_le_bytes());
    let bus_bitset_len = footer.buses.len().div_ceil(8);
    for c in &footer.chunks {
        out.extend_from_slice(&c.offset.to_le_bytes());
        out.extend_from_slice(&c.len.to_le_bytes());
        out.extend_from_slice(&c.rows.to_le_bytes());
        out.extend_from_slice(&c.group.to_le_bytes());
        out.extend_from_slice(&c.checksum.to_le_bytes());
        out.extend_from_slice(&c.zone.min_t_us.to_le_bytes());
        out.extend_from_slice(&c.zone.max_t_us.to_le_bytes());
        out.extend_from_slice(&c.zone.min_mid.to_le_bytes());
        out.extend_from_slice(&c.zone.max_mid.to_le_bytes());
        // Chunks flushed before the dictionary grew carry shorter bitsets
        // (bits for later buses are implicitly zero). The footer stride is
        // fixed at the final dictionary width, so pad with zero bytes —
        // otherwise a 9th bus appearing after an earlier group flush would
        // desynchronize every reader of the index.
        if c.zone.bus_bits.len() > bus_bitset_len {
            return Err(Error::Format(format!(
                "chunk bus bitset is {} bytes, dictionary allows {bus_bitset_len}",
                c.zone.bus_bits.len()
            )));
        }
        out.extend_from_slice(&c.zone.bus_bits);
        out.resize(out.len() + (bus_bitset_len - c.zone.bus_bits.len()), 0);
    }
    Ok(out)
}

/// Decodes a footer written by [`encode_footer`].
///
/// # Errors
///
/// Returns [`Error::Truncated`] / [`Error::Format`] for malformed bytes.
pub fn decode_footer(bytes: &[u8]) -> Result<Footer> {
    let mut cur = Cursor::new(bytes);
    let bus_count = cur.read_u32_le()? as usize;
    if bus_count > bytes.len() {
        return Err(Error::Format(format!(
            "footer declares {bus_count} buses in {} bytes",
            bytes.len()
        )));
    }
    let mut buses = Vec::with_capacity(bus_count);
    for _ in 0..bus_count {
        let len = u16::from_le_bytes(cur.read_slice(2)?.try_into().expect("2 bytes")) as usize;
        let name = std::str::from_utf8(cur.read_slice(len)?)
            .map_err(|_| Error::Format("bus id not UTF-8".into()))?;
        buses.push(Arc::from(name));
    }
    let rows = cur.read_u64_le()?;
    let groups = cur.read_u32_le()?;
    let group_rows = cur.read_u32_le()?;
    let clustered = match cur.read_u8()? {
        0 => false,
        1 => true,
        other => return Err(Error::Format(format!("bad clustered flag {other}"))),
    };
    let generation = cur.read_u64_le()?;
    let chunk_count = cur.read_u32_le()? as usize;
    if chunk_count > bytes.len() {
        return Err(Error::Format(format!(
            "footer declares {chunk_count} chunks in {} bytes",
            bytes.len()
        )));
    }
    let bus_bitset_len = bus_count.div_ceil(8);
    let mut chunks = Vec::with_capacity(chunk_count);
    for _ in 0..chunk_count {
        let offset = cur.read_u64_le()?;
        let len = cur.read_u32_le()?;
        let rows = cur.read_u32_le()?;
        let group = cur.read_u32_le()?;
        let checksum = cur.read_u64_le()?;
        let min_t_us = cur.read_u64_le()?;
        let max_t_us = cur.read_u64_le()?;
        let min_mid = cur.read_u32_le()?;
        let max_mid = cur.read_u32_le()?;
        let bus_bits = cur.read_slice(bus_bitset_len)?.to_vec();
        chunks.push(ChunkMeta {
            offset,
            len,
            rows,
            group,
            checksum,
            zone: ZoneMap {
                min_t_us,
                max_t_us,
                min_mid,
                max_mid,
                bus_bits,
            },
        });
    }
    Ok(Footer {
        buses,
        rows,
        groups,
        group_rows,
        clustered,
        generation,
        chunks,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::protocol_tag;
    use ivnt_protocol::message::Protocol;

    fn rows<'a>(payloads: &'a [Vec<u8>]) -> Vec<EncodedRow<'a>> {
        payloads
            .iter()
            .enumerate()
            .map(|(i, p)| EncodedRow {
                index: 10 + i as u64,
                timestamp_us: 1_000 * i as u64,
                bus_id: (i % 2) as u32,
                message_id: 100 + (i % 3) as u32,
                protocol: protocol_tag(Protocol::Can),
                payload: p,
            })
            .collect()
    }

    #[test]
    fn chunk_roundtrip() {
        let payloads: Vec<Vec<u8>> = (0..5).map(|i| vec![i as u8; i]).collect();
        let rows = rows(&payloads);
        let buses: Vec<Arc<str>> = vec![Arc::from("FC"), Arc::from("DC")];
        let encoded = encode_chunk(&rows);
        let decoded = decode_chunk(&encoded, &buses).unwrap();
        assert_eq!(decoded.len(), 5);
        assert_eq!(decoded[3].index, 13);
        assert_eq!(decoded[3].record.timestamp_us, 3_000);
        assert_eq!(decoded[3].record.bus.as_ref(), "DC");
        assert_eq!(decoded[3].record.message_id, 100);
        assert_eq!(decoded[3].record.payload, vec![3u8; 3]);
    }

    #[test]
    fn zone_map_covers_rows() {
        let payloads: Vec<Vec<u8>> = (0..4).map(|_| vec![]).collect();
        let rows = rows(&payloads);
        let zm = ZoneMap::compute(&rows, 2);
        assert_eq!((zm.min_t_us, zm.max_t_us), (0, 3_000));
        assert_eq!((zm.min_mid, zm.max_mid), (100, 102));
        assert!(zm.has_bus(0) && zm.has_bus(1) && !zm.has_bus(2));
        assert!(zm.time_overlaps(2_500, 9_999));
        assert!(!zm.time_overlaps(3_001, 9_999));
        assert!(zm.mid_in_range(101) && !zm.mid_in_range(99));
    }

    #[test]
    fn footer_roundtrip() {
        let footer = Footer {
            buses: vec![Arc::from("FC"), Arc::from("DC"), Arc::from("K-LIN")],
            rows: 12345,
            groups: 3,
            group_rows: 4096,
            clustered: true,
            generation: 7,
            chunks: vec![ChunkMeta {
                offset: 8,
                len: 99,
                rows: 50,
                group: 0,
                checksum: 0xABCD,
                zone: ZoneMap {
                    min_t_us: 1,
                    max_t_us: 2,
                    min_mid: 3,
                    max_mid: 4,
                    bus_bits: vec![0b101],
                },
            }],
        };
        let encoded = encode_footer(&footer).unwrap();
        assert_eq!(decode_footer(&encoded).unwrap(), footer);
    }

    #[test]
    fn footer_pads_bitsets_written_before_dictionary_grew() {
        // A chunk flushed while the dictionary held 8 buses carries a
        // 1-byte bitset; once a 9th bus exists the footer stride is 2
        // bytes and the short bitset must be zero-padded on encode.
        let buses: Vec<Arc<str>> = (0..9)
            .map(|i| Arc::from(format!("B{i}").as_str()))
            .collect();
        let chunk = |bus_bits: Vec<u8>| ChunkMeta {
            offset: 8,
            len: 1,
            rows: 1,
            group: 0,
            checksum: 0,
            zone: ZoneMap {
                min_t_us: 0,
                max_t_us: 0,
                min_mid: 0,
                max_mid: 0,
                bus_bits,
            },
        };
        let footer = Footer {
            buses,
            rows: 2,
            groups: 2,
            group_rows: 1,
            clustered: true,
            generation: 2,
            chunks: vec![chunk(vec![0b1]), chunk(vec![0, 0b1])],
        };
        let decoded = decode_footer(&encode_footer(&footer).unwrap()).unwrap();
        assert_eq!(decoded.chunks[0].zone.bus_bits, vec![0b1, 0]);
        assert_eq!(decoded.chunks[1].zone.bus_bits, vec![0, 0b1]);
        assert!(decoded.chunks[0].zone.has_bus(0) && !decoded.chunks[0].zone.has_bus(8));
        assert!(decoded.chunks[1].zone.has_bus(8));
        // An oversized bitset is a writer bug — reported, not mangled.
        let bad = Footer {
            chunks: vec![chunk(vec![0; 3])],
            ..footer
        };
        assert!(matches!(encode_footer(&bad), Err(Error::Format(_))));
    }

    #[test]
    fn malformed_chunk_rejected() {
        let buses: Vec<Arc<str>> = vec![Arc::from("FC")];
        assert!(decode_chunk(&[1, 2], &buses).is_err());
        // Row count far beyond the byte count.
        let mut bytes = (u32::MAX).to_le_bytes().to_vec();
        bytes.push(0);
        assert!(matches!(
            decode_chunk(&bytes, &buses),
            Err(Error::Format(_))
        ));
        // Bus reference outside the dictionary.
        let rows = [EncodedRow {
            index: 0,
            timestamp_us: 0,
            bus_id: 7,
            message_id: 0,
            protocol: 0,
            payload: &[],
        }];
        let encoded = encode_chunk(&rows);
        assert!(matches!(
            decode_chunk(&encoded, &buses),
            Err(Error::Format(_))
        ));
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        let a = checksum(b"hello");
        assert_eq!(a, checksum(b"hello"));
        assert_ne!(a, checksum(b"hellp"));
        assert_ne!(checksum(b""), 0);
    }
}
