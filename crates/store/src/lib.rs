//! # ivnt-store — chunked columnar trace store with zone-map pushdown
//!
//! The paper's fleet back end keeps recorded byte traces (`K_b`) in a
//! distributed file system and lets Spark push the interpretation
//! projection down to the storage layer. This crate is that layer's
//! single-node analogue: a binary, chunked, columnar file format
//! (`.ivns`) in which a journey's `(t, l, b_id, m_id, m_info)` tuples are
//! stored delta- and dictionary-encoded with per-chunk **zone maps**
//! (min/max timestamp, min/max message id, bus bitset).
//!
//! Extraction of a handful of signals from an 800-signal trace touches a
//! tiny fraction of the rows; zone maps let the scan *prove* most chunks
//! irrelevant from the footer index alone and skip them unread. Because
//! in-vehicle traffic is cyclic (every chunk of a time-ordered log holds
//! nearly every message id), the writer first **clusters** each row group
//! by `(b_id, m_id)` before cutting chunks, storing original row
//! positions so scans restore exact trace order per group — pruning that
//! actually fires, at the cost of ~1 byte/row.
//!
//! - [`StoreWriter`] — streaming append, bounded by one row group.
//! - [`StoreReader`] — validated open ([`Error::BadMagic`],
//!   [`Error::Truncated`], checksum variants), [`Predicate`]-driven
//!   [`StoreReader::scan`] with [`ScanStats`].
//! - [`append`] — live-session mode: [`AppendWriter`] flushes
//!   crash-recoverable micro-batched group frames, [`recover`] rebuilds
//!   the index of a torn file by walking checksummed frames, and
//!   [`StoreFollower`] tails a growing file group by group.
//! - [`schema`] — the canonical tabular form of a raw trace, shared with
//!   the interpretation pipeline.

#![warn(missing_docs)]

pub mod append;
pub mod compact;
pub mod error;
pub mod layout;
pub mod reader;
pub mod record;
pub mod schema;
pub mod varint;
pub mod writer;

pub use append::{
    open_recovered, recover, recover_reader, seal_recovered, AppendOptions, AppendWriter,
    GroupFlush, Recovered, StoreFollower, TailBatch, TailGroup,
};
pub use compact::{compact, compact_file, CompactReport};
pub use error::{Error, Result};
pub use layout::{ChunkMeta, Footer, GroupSpan, IndexedRecord, ZoneMap};
pub use reader::{CompiledPredicate, Predicate, ScanStats, StoreReader};
pub use record::Record;
pub use writer::{StoreWriter, WriterOptions};

/// Canonical file extension of store files.
pub const FILE_EXTENSION: &str = "ivns";

#[cfg(test)]
mod tests {
    use std::io::Cursor;
    use std::sync::Arc;

    use ivnt_protocol::message::Protocol;

    use super::*;

    fn record(i: u64, bus: &str, mid: u32) -> Record {
        Record {
            timestamp_us: i * 10_000,
            bus: Arc::from(bus),
            message_id: mid,
            payload: vec![(i % 251) as u8, mid as u8],
            protocol: if mid.is_multiple_of(2) {
                Protocol::Can
            } else {
                Protocol::Lin
            },
        }
    }

    /// A cyclic two-bus trace, the adversarial case for zone maps.
    fn cyclic_trace(n: u64, mids: u32) -> Vec<Record> {
        (0..n)
            .map(|i| {
                record(
                    i,
                    if i % 2 == 0 { "FC" } else { "DC" },
                    (i % u64::from(mids)) as u32,
                )
            })
            .collect()
    }

    fn write_store(records: &[Record], options: WriterOptions) -> Vec<u8> {
        let mut writer = StoreWriter::new(Vec::new(), options).unwrap();
        for r in records {
            writer.append(r).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn roundtrip_preserves_order_and_content() {
        let records = cyclic_trace(1_000, 40);
        for cluster in [true, false] {
            let bytes = write_store(
                &records,
                WriterOptions {
                    chunk_rows: 64,
                    chunks_per_group: 4,
                    cluster,
                },
            );
            let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
            assert_eq!(reader.footer().rows, 1_000);
            assert_eq!(reader.read_all().unwrap(), records);
        }
    }

    #[test]
    fn selective_scan_filters_and_skips() {
        let records = cyclic_trace(4_096, 64);
        let bytes = write_store(
            &records,
            WriterOptions {
                chunk_rows: 64,
                chunks_per_group: 16,
                cluster: true,
            },
        );
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let pred = Predicate::for_messages([("FC", 2u32), ("DC", 63u32)]);
        let mut got = Vec::new();
        let stats = reader
            .scan::<Error, _>(&pred, |mut g| {
                got.append(&mut g);
                Ok(())
            })
            .unwrap();
        let expected: Vec<Record> = records
            .iter()
            .filter(|r| {
                (r.bus.as_ref() == "FC" && r.message_id == 2)
                    || (r.bus.as_ref() == "DC" && r.message_id == 63)
            })
            .cloned()
            .collect();
        assert_eq!(got, expected);
        assert_eq!(stats.rows_emitted, expected.len() as u64);
        assert!(
            stats.chunks_skipped > stats.chunks_total / 2,
            "clustered layout must skip most chunks: {stats:?}"
        );
        assert!(stats.peak_rows_buffered <= 64 * 16);
    }

    #[test]
    fn time_range_scan_uses_zone_maps() {
        // Unclustered layout keeps chunks time-contiguous, so a narrow
        // window skips almost everything.
        let records = cyclic_trace(2_048, 16);
        let bytes = write_store(
            &records,
            WriterOptions {
                chunk_rows: 64,
                chunks_per_group: 4,
                cluster: false,
            },
        );
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let pred = Predicate::all().with_time_range_us(100 * 10_000, 109 * 10_000);
        let mut got = Vec::new();
        let stats = reader
            .scan::<Error, _>(&pred, |mut g| {
                got.append(&mut g);
                Ok(())
            })
            .unwrap();
        assert_eq!(got.len(), 10);
        assert!(got
            .iter()
            .all(|r| (1_000_000..=1_090_000).contains(&r.timestamp_us)));
        assert!(stats.chunks_skipped > 0);
    }

    #[test]
    fn bus_appearing_after_group_flush_keeps_file_readable() {
        // The first two groups intern buses B0..B7 (1-byte zone-map
        // bitsets); B8 first appears in a later group, widening the footer
        // bitset stride past the byte boundary to 2. Earlier chunks' short
        // bitsets must be padded on encode, not misparse the whole index.
        let bus_record = |i: u64, bus: &str, mid: u32| Record {
            timestamp_us: i * 1_000,
            bus: Arc::from(bus),
            message_id: mid,
            payload: vec![i as u8],
            protocol: Protocol::Can,
        };
        let mut records: Vec<Record> = (0..16u64)
            .map(|i| bus_record(i, &format!("B{}", i % 8), (i % 4) as u32))
            .collect();
        records.extend((16..20u64).map(|i| bus_record(i, "B8", 99)));
        let bytes = write_store(
            &records,
            WriterOptions {
                chunk_rows: 4,
                chunks_per_group: 2,
                cluster: true,
            },
        );
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.footer().buses.len(), 9);
        assert_eq!(reader.read_all().unwrap(), records);
        // The late bus is selectable and its zone-map bit prunes the rest.
        let mut got = Vec::new();
        let stats = reader
            .scan::<Error, _>(&Predicate::for_messages([("B8", 99u32)]), |mut g| {
                got.append(&mut g);
                Ok(())
            })
            .unwrap();
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|r| r.bus.as_ref() == "B8"));
        assert!(stats.chunks_skipped > 0);
    }

    #[test]
    fn unknown_bus_selection_matches_nothing() {
        let bytes = write_store(&cyclic_trace(100, 4), WriterOptions::default());
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let stats = reader
            .scan::<Error, _>(&Predicate::for_messages([("NOPE", 1u32)]), |_| {
                panic!("no group should match")
            })
            .unwrap();
        assert_eq!(stats.chunks_scanned, 0);
        assert_eq!(stats.chunks_skipped, stats.chunks_total);
    }

    #[test]
    fn group_range_scan_restricts_to_groups() {
        let records = cyclic_trace(1_024, 16);
        let options = WriterOptions {
            chunk_rows: 32,
            chunks_per_group: 4,
            cluster: true,
        };
        let bytes = write_store(&records, options);
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let spans = reader.footer().group_spans();
        assert_eq!(spans.len(), reader.footer().groups as usize);
        assert_eq!(spans.iter().map(|s| s.rows).sum::<u64>(), 1_024);
        // Spans tile the chunk index contiguously.
        let mut next = 0usize;
        for s in &spans {
            assert_eq!(s.chunk_start, next);
            next = s.chunk_end;
        }
        assert_eq!(next, reader.footer().chunks.len());

        // Scanning groups [1, 3) returns exactly the rows the writer
        // buffered into those groups, in trace order.
        let group_rows = options.group_rows();
        let mut got = Vec::new();
        reader
            .scan::<Error, _>(&Predicate::all().with_group_range(1, 3), |mut g| {
                got.append(&mut g);
                Ok(())
            })
            .unwrap();
        assert_eq!(got, records[group_rows..3 * group_rows]);
        // An empty window matches nothing; a full one matches everything.
        let stats = reader
            .scan::<Error, _>(&Predicate::all().with_group_range(2, 2), |_| {
                panic!("empty group window must not emit")
            })
            .unwrap();
        assert_eq!(stats.rows_emitted, 0);
    }

    #[test]
    fn union_scan_routes_back_to_per_predicate_scans() {
        let records = cyclic_trace(4_096, 64);
        let bytes = write_store(
            &records,
            WriterOptions {
                chunk_rows: 64,
                chunks_per_group: 16,
                cluster: true,
            },
        );
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let preds = [
            Predicate::for_messages([("FC", 2u32), ("FC", 4u32)]),
            Predicate::for_messages([("DC", 63u32)]).with_time_range_us(0, 20_000_000),
            Predicate::for_messages([("NOPE", 1u32)]),
        ];
        let compiled: Vec<CompiledPredicate> =
            preds.iter().map(|p| p.compile(reader.footer())).collect();
        let mut routed: Vec<Vec<Record>> = vec![Vec::new(); preds.len()];
        let mut union_rows = 0u64;
        let stats = reader
            .scan_indexed::<Error, _>(&compiled, |rows| {
                union_rows += rows.len() as u64;
                for row in &rows {
                    for (q, c) in compiled.iter().enumerate() {
                        if c.row_matches(row) {
                            routed[q].push(row.record.clone());
                        }
                    }
                }
                Ok(())
            })
            .unwrap();
        assert_eq!(stats.rows_emitted, union_rows);
        // Each predicate's routed rows equal its own solo scan.
        for (pred, routed) in preds.iter().zip(&routed) {
            let mut solo = Vec::new();
            reader
                .scan::<Error, _>(pred, |mut g| {
                    solo.append(&mut g);
                    Ok(())
                })
                .unwrap();
            assert_eq!(&solo, routed);
        }
        assert!(routed[2].is_empty());
    }

    #[test]
    fn generation_counts_group_flushes() {
        let records = cyclic_trace(1_024, 16);
        let options = WriterOptions {
            chunk_rows: 32,
            chunks_per_group: 4,
            cluster: true,
        };
        let bytes = write_store(&records, options);
        let reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.generation(), u64::from(reader.footer().groups));
        assert_eq!(reader.generation(), 8);
    }

    #[test]
    fn compact_merges_micro_groups_bit_identically() {
        // A sealed live session: many tiny append-mode group frames.
        let records = cyclic_trace(2_000, 24);
        let mut aw = AppendWriter::new(
            Vec::new(),
            AppendOptions {
                writer: WriterOptions {
                    chunk_rows: 32,
                    chunks_per_group: 2,
                    cluster: true,
                },
                flush_rows: 64,
                flush_interval_us: 0,
            },
        )
        .unwrap();
        for r in &records {
            aw.append(r).unwrap();
        }
        let bytes = aw.seal().unwrap();
        let mut input = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let groups_before = input.footer().groups;
        assert!(
            groups_before > 10,
            "expected micro-groups, got {groups_before}"
        );

        let out_options = WriterOptions {
            chunk_rows: 128,
            chunks_per_group: 8,
            cluster: true,
        };
        let (out, report) = compact(&mut input, Vec::new(), out_options).unwrap();
        assert_eq!(report.rows, records.len() as u64);
        assert_eq!(report.groups_before, groups_before);
        assert!(
            report.groups_after < groups_before,
            "compaction must merge groups: {report:?}"
        );

        let mut compacted = StoreReader::from_reader(Cursor::new(out)).unwrap();
        assert_eq!(compacted.footer().groups, report.groups_after);
        assert_eq!(compacted.footer().chunks.len(), report.chunks_after);
        assert_eq!(compacted.footer().rows, records.len() as u64);
        assert_eq!(compacted.generation(), u64::from(report.groups_after));
        // Bit-identical contents: same records, same trace order.
        assert_eq!(compacted.read_all().unwrap(), records);
    }

    #[test]
    fn empty_store_roundtrips() {
        let bytes = write_store(&[], WriterOptions::default());
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        assert_eq!(reader.footer().rows, 0);
        assert!(reader.read_all().unwrap().is_empty());
    }

    #[test]
    fn bad_magic_is_typed() {
        let err = StoreReader::from_reader(Cursor::new(b"NOTASTOREFILE_LONG_ENOUGH".to_vec()))
            .unwrap_err();
        assert!(matches!(err, Error::BadMagic));
        let err = StoreReader::from_reader(Cursor::new(b"IV".to_vec())).unwrap_err();
        assert!(matches!(err, Error::Truncated(_)));
    }

    #[test]
    fn truncated_footer_is_typed() {
        let bytes = write_store(&cyclic_trace(200, 8), WriterOptions::default());
        for cut in [bytes.len() - 1, bytes.len() - 20, bytes.len() / 2] {
            let err = StoreReader::from_reader(Cursor::new(bytes[..cut].to_vec())).unwrap_err();
            assert!(
                matches!(err, Error::Truncated(_) | Error::FooterChecksum),
                "cut at {cut}: {err}"
            );
        }
    }

    #[test]
    fn corrupt_footer_checksum_is_typed() {
        let mut bytes = write_store(&cyclic_trace(200, 8), WriterOptions::default());
        // Flip a byte inside the footer (just before the 32-byte trailer).
        let idx = bytes.len() - layout::TRAILER_LEN - 1;
        bytes[idx] ^= 0xFF;
        let err = StoreReader::from_reader(Cursor::new(bytes)).unwrap_err();
        assert!(matches!(err, Error::FooterChecksum));
    }

    #[test]
    fn corrupt_chunk_checksum_is_typed() {
        let mut bytes = write_store(
            &cyclic_trace(512, 8),
            WriterOptions {
                chunk_rows: 64,
                chunks_per_group: 2,
                cluster: true,
            },
        );
        // Flip a byte inside the first chunk's payload region (after the
        // 8-byte magic and the chunk's row-count word).
        bytes[16] ^= 0xFF;
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let err = reader.read_all().unwrap_err();
        assert!(matches!(err, Error::ChunkChecksum { chunk: 0 }));
    }
}
