//! Store reader: trailer/footer parsing and the zone-map pushdown scan.
//!
//! A scan walks the footer's chunk index in file order, evaluating the
//! caller's [`Predicate`] against each chunk's [`ZoneMap`] first — chunks
//! proven empty of matches are **skipped without being read or decoded**.
//! Surviving chunks are decoded, row-filtered, and buffered per row group;
//! when a group completes, its matching rows are re-sorted by original
//! trace position and emitted as one in-order batch. Memory therefore
//! stays bounded by one group (`group_rows` records) regardless of file
//! size — the out-of-core property.

use std::collections::HashSet;
use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom};
use std::path::Path;

use crate::error::{Error, Result};
use crate::layout::{checksum, decode_chunk, decode_footer, Footer, IndexedRecord};
use crate::layout::{ChunkMeta, END_MAGIC, MAGIC, TRAILER_LEN};
use crate::record::Record;

/// What a scan is looking for. Conservative by construction: `None`
/// fields mean "everything".
#[derive(Debug, Clone, Default)]
pub struct Predicate {
    /// `(b_id, m_id)` pairs to keep; `None` keeps every message.
    pub selections: Option<Vec<(String, u32)>>,
    /// Inclusive `[from, to]` time window in µs; `None` keeps all times.
    pub time_range_us: Option<(u64, u64)>,
    /// Half-open `[from, to)` row-group window; `None` scans every group.
    /// Shard executors use this to re-run one task's groups exactly.
    pub group_range: Option<(u32, u32)>,
}

impl Predicate {
    /// Matches every record (full-file scan).
    pub fn all() -> Predicate {
        Predicate::default()
    }

    /// Matches the given `(bus, message id)` pairs.
    pub fn for_messages<I, S>(pairs: I) -> Predicate
    where
        I: IntoIterator<Item = (S, u32)>,
        S: Into<String>,
    {
        Predicate {
            selections: Some(pairs.into_iter().map(|(b, m)| (b.into(), m)).collect()),
            time_range_us: None,
            group_range: None,
        }
    }

    /// Restricts the scan to an inclusive time window.
    pub fn with_time_range_us(mut self, from_us: u64, to_us: u64) -> Predicate {
        self.time_range_us = Some((from_us, to_us));
        self
    }

    /// Restricts the scan to row groups `[from, to)`.
    pub fn with_group_range(mut self, from: u32, to: u32) -> Predicate {
        self.group_range = Some((from, to));
        self
    }

    /// Resolves the predicate against one file's footer. Shard planners
    /// compile once and probe every chunk's zone map without decoding it.
    pub fn compile(&self, footer: &Footer) -> CompiledPredicate {
        CompiledPredicate::compile(self, footer)
    }
}

/// A [`Predicate`] resolved against one file's bus dictionary.
#[derive(Debug, Clone)]
pub struct CompiledPredicate {
    /// `(bus dictionary id, message id)` pairs; `None` = keep all.
    /// Selections naming buses absent from the file compile to an empty
    /// set — nothing can match, every chunk is skipped.
    pairs: Option<HashSet<(u32, u32)>>,
    time_range_us: Option<(u64, u64)>,
    group_range: Option<(u32, u32)>,
}

impl CompiledPredicate {
    fn compile(pred: &Predicate, footer: &Footer) -> CompiledPredicate {
        let pairs = pred.selections.as_ref().map(|sel| {
            sel.iter()
                .filter_map(|(bus, mid)| {
                    footer
                        .buses
                        .iter()
                        .position(|b| b.as_ref() == bus.as_str())
                        .map(|id| (id as u32, *mid))
                })
                .collect()
        });
        CompiledPredicate {
            pairs,
            time_range_us: pred.time_range_us,
            group_range: pred.group_range,
        }
    }

    /// Index test: may the chunk contain a matching row? `false` is a proof
    /// of absence (group outside the window, or zone maps excluding every
    /// selected message and time).
    pub fn chunk_may_match(&self, meta: &ChunkMeta) -> bool {
        if let Some((from, to)) = self.group_range {
            if !(from..to).contains(&meta.group) {
                return false;
            }
        }
        let zone = &meta.zone;
        if let Some((from, to)) = self.time_range_us {
            if !zone.time_overlaps(from, to) {
                return false;
            }
        }
        match &self.pairs {
            None => true,
            Some(pairs) => pairs
                .iter()
                .any(|&(bus, mid)| zone.has_bus(bus) && zone.mid_in_range(mid)),
        }
    }

    /// Exact row test (the zone-map test is only conservative). Public so
    /// multi-query planners can route the rows of a shared union scan back
    /// to the individual query each row belongs to.
    pub fn row_matches(&self, row: &IndexedRecord) -> bool {
        if let Some((from, to)) = self.time_range_us {
            if !(from..=to).contains(&row.record.timestamp_us) {
                return false;
            }
        }
        match &self.pairs {
            None => true,
            Some(pairs) => pairs.contains(&(row.bus_id, row.record.message_id)),
        }
    }
}

/// Counters a scan accumulates; the bench probe and the bounded-memory
/// tests read these.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Chunks in the file.
    pub chunks_total: usize,
    /// Chunks read and decoded.
    pub chunks_scanned: usize,
    /// Chunks skipped on zone maps alone.
    pub chunks_skipped: usize,
    /// Rows that matched the predicate and were emitted.
    pub rows_emitted: u64,
    /// High-water mark of rows held in memory at once — the out-of-core
    /// guarantee is `peak_rows_buffered ≤ group_rows`.
    pub peak_rows_buffered: usize,
}

impl ScanStats {
    /// Fraction of chunks skipped, in `[0, 1]`.
    pub fn skip_ratio(&self) -> f64 {
        if self.chunks_total == 0 {
            return 0.0;
        }
        self.chunks_skipped as f64 / self.chunks_total as f64
    }
}

/// Reader over a store file (or any `Read + Seek`, e.g. an in-memory
/// cursor in tests).
#[derive(Debug)]
pub struct StoreReader<R: Read + Seek> {
    inner: R,
    footer: Footer,
}

impl StoreReader<BufReader<File>> {
    /// Opens a store file from disk.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`] on filesystem failure and the typed
    /// corruption errors of [`StoreReader::from_reader`].
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self> {
        StoreReader::from_reader(BufReader::new(File::open(path)?))
    }
}

impl<R: Read + Seek> StoreReader<R> {
    /// Validates magics, trailer and footer checksum, and decodes the
    /// footer index.
    ///
    /// # Errors
    ///
    /// - [`Error::BadMagic`] — not a store file.
    /// - [`Error::Truncated`] — shorter than header + trailer, or the
    ///   trailer/footer point outside the file.
    /// - [`Error::FooterChecksum`] — damaged index.
    /// - [`Error::Format`] — malformed footer bytes.
    pub fn from_reader(mut inner: R) -> Result<Self> {
        let mut magic = [0u8; MAGIC.len()];
        inner.seek(SeekFrom::Start(0))?;
        read_exact_or_truncated(&mut inner, &mut magic, "file header")?;
        if &magic != MAGIC {
            return Err(Error::BadMagic);
        }
        let file_len = inner.seek(SeekFrom::End(0))?;
        if file_len < (MAGIC.len() + TRAILER_LEN) as u64 {
            return Err(Error::Truncated("no room for a trailer".into()));
        }
        inner.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        let mut trailer = [0u8; TRAILER_LEN];
        read_exact_or_truncated(&mut inner, &mut trailer, "trailer")?;
        if &trailer[24..32] != END_MAGIC {
            return Err(Error::Truncated("trailer magic missing".into()));
        }
        let footer_offset = u64::from_le_bytes(trailer[0..8].try_into().expect("8 bytes"));
        let footer_len = u64::from_le_bytes(trailer[8..16].try_into().expect("8 bytes"));
        let footer_checksum = u64::from_le_bytes(trailer[16..24].try_into().expect("8 bytes"));
        let trailer_start = file_len - TRAILER_LEN as u64;
        if footer_offset
            .checked_add(footer_len)
            .is_none_or(|end| end != trailer_start)
            || footer_offset < MAGIC.len() as u64
        {
            return Err(Error::Truncated("trailer points outside the file".into()));
        }
        let footer_len = usize::try_from(footer_len)
            .map_err(|_| Error::Format("footer length overflow".into()))?;
        inner.seek(SeekFrom::Start(footer_offset))?;
        let mut footer_bytes = vec![0u8; footer_len];
        read_exact_or_truncated(&mut inner, &mut footer_bytes, "footer")?;
        if checksum(&footer_bytes) != footer_checksum {
            return Err(Error::FooterChecksum);
        }
        let footer = decode_footer(&footer_bytes)?;
        Ok(StoreReader { inner, footer })
    }

    /// Binds an already-validated footer to `inner` without requiring a
    /// trailer — how [`open_recovered`](crate::append::open_recovered)
    /// reads a torn append-mode file whose index was rebuilt by walking
    /// checksummed group frames.
    pub fn with_footer(inner: R, footer: Footer) -> Self {
        StoreReader { inner, footer }
    }

    /// The decoded footer (dictionary, row counts, chunk index).
    pub fn footer(&self) -> &Footer {
        &self.footer
    }

    /// Store generation (row-group flushes ever performed). Result caches
    /// key on this: any append advances it.
    pub fn generation(&self) -> u64 {
        self.footer.generation
    }

    /// Scans the file under `pred`, calling `on_group` once per row group
    /// with that group's matching rows restored to original trace order.
    ///
    /// # Errors
    ///
    /// Propagates I/O and corruption errors ([`Error::ChunkChecksum`] for
    /// damaged chunks) and whatever error the callback returns.
    pub fn scan<E, F>(
        &mut self,
        pred: &Predicate,
        mut on_group: F,
    ) -> std::result::Result<ScanStats, E>
    where
        E: From<Error>,
        F: FnMut(Vec<Record>) -> std::result::Result<(), E>,
    {
        let compiled = CompiledPredicate::compile(pred, &self.footer);
        self.scan_indexed(std::slice::from_ref(&compiled), |rows| {
            on_group(rows.into_iter().map(|r| r.record).collect())
        })
    }

    /// Shared-scan driver: scans the file once under the **union** of
    /// `preds`, calling `on_group` with every row that matches *at least
    /// one* predicate (original trace order restored per group, dictionary
    /// ids kept so callers can re-route rows per predicate with
    /// [`CompiledPredicate::row_matches`]). A chunk is decoded when any
    /// predicate's zone-map test admits it, so N queries pay one pass.
    /// `rows_emitted` counts union rows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoreReader::scan`].
    pub fn scan_indexed<E, F>(
        &mut self,
        preds: &[CompiledPredicate],
        mut on_group: F,
    ) -> std::result::Result<ScanStats, E>
    where
        E: From<Error>,
        F: FnMut(Vec<IndexedRecord>) -> std::result::Result<(), E>,
    {
        let mut stats = ScanStats {
            chunks_total: self.footer.chunks.len(),
            ..ScanStats::default()
        };
        // Observability counters are accumulated locally and flushed once
        // per scan, so the per-chunk loop never touches the registry.
        let mut bytes_read: u64 = 0;
        // Matching rows of the group under assembly.
        let mut pending: Vec<IndexedRecord> = Vec::new();
        let mut pending_group: Option<u32> = None;
        let chunk_count = self.footer.chunks.len();
        for idx in 0..chunk_count {
            let (group, may_match) = {
                let meta = &self.footer.chunks[idx];
                (meta.group, preds.iter().any(|p| p.chunk_may_match(meta)))
            };
            if pending_group.is_some_and(|g| g != group) {
                emit_group(&mut pending, &mut stats, &mut on_group)?;
            }
            pending_group = Some(group);
            if !may_match {
                stats.chunks_skipped += 1;
                continue;
            }
            stats.chunks_scanned += 1;
            bytes_read += self.footer.chunks[idx].len as u64;
            let rows = match self.read_chunk(idx) {
                Ok(rows) => rows,
                Err(e) => {
                    if matches!(e, Error::ChunkChecksum { .. }) {
                        ivnt_obs::with(|r| r.add("store_scan_checksum_failures_total", 1));
                    }
                    flush_scan_obs(&stats, bytes_read);
                    return Err(E::from(e));
                }
            };
            stats.peak_rows_buffered = stats.peak_rows_buffered.max(pending.len() + rows.len());
            for row in rows {
                if preds.iter().any(|p| p.row_matches(&row)) {
                    pending.push(row);
                }
            }
        }
        emit_group(&mut pending, &mut stats, &mut on_group)?;
        flush_scan_obs(&stats, bytes_read);
        Ok(stats)
    }

    /// Reads every record of the file in original trace order.
    ///
    /// # Errors
    ///
    /// Same conditions as [`StoreReader::scan`].
    pub fn read_all(&mut self) -> Result<Vec<Record>> {
        let mut out = Vec::new();
        self.scan::<Error, _>(&Predicate::all(), |mut group| {
            out.append(&mut group);
            Ok(())
        })?;
        Ok(out)
    }

    /// Reads, checksum-verifies and decodes chunk `idx`.
    fn read_chunk(&mut self, idx: usize) -> Result<Vec<IndexedRecord>> {
        let meta = &self.footer.chunks[idx];
        self.inner.seek(SeekFrom::Start(meta.offset))?;
        let mut bytes = vec![0u8; meta.len as usize];
        read_exact_or_truncated(&mut self.inner, &mut bytes, "chunk body")?;
        if checksum(&bytes) != meta.checksum {
            return Err(Error::ChunkChecksum { chunk: idx });
        }
        decode_chunk(&bytes, &self.footer.buses)
    }
}

/// Flushes one scan's accumulated counters to the installed subscriber
/// (if any): one registry interaction per scan, not per chunk.
fn flush_scan_obs(stats: &ScanStats, bytes_read: u64) {
    ivnt_obs::with(|r| {
        r.add("store_scans_total", 1);
        r.add(
            "store_scan_chunks_total{result=\"scanned\"}",
            stats.chunks_scanned as u64,
        );
        r.add(
            "store_scan_chunks_total{result=\"skipped\"}",
            stats.chunks_skipped as u64,
        );
        r.add("store_scan_bytes_total", bytes_read);
        r.add("store_scan_rows_emitted_total", stats.rows_emitted);
        r.gauge_max(
            "store_scan_peak_rows_buffered",
            stats.peak_rows_buffered as f64,
        );
    });
}

/// Restores one group's rows to trace order and hands them to the callback.
fn emit_group<E, F>(
    pending: &mut Vec<IndexedRecord>,
    stats: &mut ScanStats,
    on_group: &mut F,
) -> std::result::Result<(), E>
where
    F: FnMut(Vec<IndexedRecord>) -> std::result::Result<(), E>,
{
    if pending.is_empty() {
        return Ok(());
    }
    let mut rows = std::mem::take(pending);
    rows.sort_by_key(|r| r.index);
    stats.rows_emitted += rows.len() as u64;
    on_group(rows)
}

fn read_exact_or_truncated<R: Read>(r: &mut R, buf: &mut [u8], what: &str) -> Result<()> {
    r.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            Error::Truncated(what.into())
        } else {
            Error::Io(e)
        }
    })
}
