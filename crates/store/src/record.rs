//! The store's record type — the paper's byte tuple `k_b`.
//!
//! Structurally identical to `ivnt_simulator::trace::TraceRecord`, but
//! defined here so the store sits *below* the simulator in the dependency
//! graph (the simulator's journey repository writes this format; the
//! pipeline reads it back without ever seeing the simulator).

use std::sync::Arc;

use ivnt_protocol::message::Protocol;

use crate::error::{Error, Result};

/// One stored byte tuple `(t, l, b_id, m_id, m_info)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Timestamp in microseconds since recording start (`t`).
    pub timestamp_us: u64,
    /// Channel identifier (`b_id`), shared across records.
    pub bus: Arc<str>,
    /// Message identifier on that channel (`m_id`).
    pub message_id: u32,
    /// Raw payload bytes (`l`).
    pub payload: Vec<u8>,
    /// Protocol family the frame used (`m_info`).
    pub protocol: Protocol,
}

impl Record {
    /// Timestamp in seconds.
    pub fn timestamp_s(&self) -> f64 {
        self.timestamp_us as f64 / 1e6
    }
}

/// On-disk tag of a protocol family (shared with the legacy trace format).
pub fn protocol_tag(p: Protocol) -> u8 {
    match p {
        Protocol::Can => 0,
        Protocol::Lin => 1,
        Protocol::SomeIp => 2,
        Protocol::CanFd => 3,
    }
}

/// Inverse of [`protocol_tag`].
///
/// # Errors
///
/// Returns [`Error::Format`] for unknown tags.
pub fn protocol_from_tag(tag: u8) -> Result<Protocol> {
    Ok(match tag {
        0 => Protocol::Can,
        1 => Protocol::Lin,
        2 => Protocol::SomeIp,
        3 => Protocol::CanFd,
        other => return Err(Error::Format(format!("unknown protocol tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_tags_roundtrip() {
        for p in [
            Protocol::Can,
            Protocol::Lin,
            Protocol::SomeIp,
            Protocol::CanFd,
        ] {
            assert_eq!(protocol_from_tag(protocol_tag(p)).unwrap(), p);
        }
        assert!(protocol_from_tag(200).is_err());
    }

    #[test]
    fn timestamp_seconds() {
        let r = Record {
            timestamp_us: 2_500_000,
            bus: Arc::from("FC"),
            message_id: 1,
            payload: vec![],
            protocol: Protocol::Can,
        };
        assert_eq!(r.timestamp_s(), 2.5);
    }
}
