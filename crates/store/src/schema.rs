//! The canonical tabular shape of a raw trace (`K_b`).
//!
//! Column names and the raw schema live here — *below* the pipeline — so
//! the on-disk store, the simulator's repository and the interpretation
//! engine all agree on one definition (`ivnt_core::tabular` re-exports
//! these).

use std::sync::Arc;

use ivnt_frame::prelude::*;

use crate::error::Result;
use crate::record::Record;

/// Column names of the raw-trace frame.
pub mod columns {
    /// Timestamp in seconds (`t`).
    pub const T: &str = "t";
    /// Payload bytes (`l`).
    pub const PAYLOAD: &str = "l";
    /// Channel identifier (`b_id`).
    pub const BUS: &str = "b_id";
    /// Message identifier (`m_id`).
    pub const MESSAGE_ID: &str = "m_id";
    /// Protocol tag (`m_info`).
    pub const INFO: &str = "m_info";
}

/// Schema of the tabular raw trace `K_b`.
pub fn raw_trace_schema() -> Arc<Schema> {
    Schema::from_pairs([
        (columns::T, DataType::Float),
        (columns::PAYLOAD, DataType::Bytes),
        (columns::BUS, DataType::Str),
        (columns::MESSAGE_ID, DataType::Int),
        (columns::INFO, DataType::Str),
    ])
    .expect("static schema is valid")
    .into_shared()
}

/// Converts one batch of records into a raw-trace [`Batch`], column-wise.
///
/// Cell values are produced exactly as the row-wise trace conversion does
/// (seconds as `µs / 1e6`, protocol display names, shared bus `Arc`s), so
/// frames built from store scans are bit-identical to frames built from
/// in-memory traces.
///
/// # Errors
///
/// Propagates tabular-engine failures.
pub fn records_to_batch(schema: Arc<Schema>, records: &[Record]) -> Result<Batch> {
    // Protocol display names repeat endlessly; intern them per batch.
    let mut proto_names: Vec<(ivnt_protocol::message::Protocol, Arc<str>)> = Vec::new();
    let mut protos = Vec::with_capacity(records.len());
    for r in records {
        let name = match proto_names.iter().find(|(p, _)| *p == r.protocol) {
            Some((_, name)) => name.clone(),
            None => {
                let name: Arc<str> = Arc::from(r.protocol.to_string().as_str());
                proto_names.push((r.protocol, name.clone()));
                name
            }
        };
        protos.push(name);
    }
    let columns = vec![
        Column::from_floats(records.iter().map(Record::timestamp_s)),
        Column::from_byte_payloads(records.iter().map(|r| Arc::from(r.payload.as_slice()))),
        Column::from_strs(records.iter().map(|r| r.bus.clone())),
        Column::from_ints(records.iter().map(|r| i64::from(r.message_id))),
        Column::from_strs(protos),
    ];
    Ok(Batch::new(schema, columns)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ivnt_protocol::message::Protocol;

    #[test]
    fn batch_matches_row_wise_conversion() {
        let records = vec![
            Record {
                timestamp_us: 1_000,
                bus: Arc::from("FC"),
                message_id: 3,
                payload: vec![0xAB],
                protocol: Protocol::Can,
            },
            Record {
                timestamp_us: 2_500,
                bus: Arc::from("DC"),
                message_id: 9,
                payload: vec![],
                protocol: Protocol::Lin,
            },
        ];
        let schema = raw_trace_schema();
        let batch = records_to_batch(schema.clone(), &records).unwrap();
        let row_wise = Batch::from_rows(
            schema,
            records.iter().map(|r| {
                vec![
                    Value::Float(r.timestamp_s()),
                    Value::from(r.payload.clone()),
                    Value::Str(r.bus.clone()),
                    Value::Int(i64::from(r.message_id)),
                    Value::from(r.protocol.to_string()),
                ]
            }),
        )
        .unwrap();
        assert_eq!(batch, row_wise);
    }

    #[test]
    fn empty_batch_keeps_schema() {
        let batch = records_to_batch(raw_trace_schema(), &[]).unwrap();
        assert_eq!(batch.num_rows(), 0);
        assert_eq!(batch.schema().len(), 5);
    }
}
