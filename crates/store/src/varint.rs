//! LEB128 varints and zigzag deltas — the store's integer codec.
//!
//! Timestamps, row indices, dictionary ids, message ids and payload lengths
//! are all small-after-delta integers; LEB128 keeps the common case at one
//! byte while still covering the full `u64` range.

use crate::error::{Error, Result};

/// Appends `v` as an LEB128 varint.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Appends `v` zigzag-mapped (so small negatives stay small) as a varint.
pub fn write_i64(out: &mut Vec<u8>, v: i64) {
    write_u64(out, zigzag(v));
}

/// Appends `v`'s raw IEEE-754 bit pattern, little-endian.
///
/// Floats never travel as text anywhere in this codebase — a decimal
/// round-trip would quietly break bit-identity guarantees downstream
/// (NaN payloads, signed zeros, subnormals). Consumers pair this with
/// [`Cursor::read_f64_bits`].
pub fn write_f64_bits(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Maps signed to unsigned keeping small magnitudes small.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// A cursor over an encoded chunk's bytes.
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Cursor<'a> {
        Cursor { bytes, pos: 0 }
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] at end of input.
    pub fn read_u8(&mut self) -> Result<u8> {
        let b = *self
            .bytes
            .get(self.pos)
            .ok_or_else(|| Error::Truncated("byte expected".into()))?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads a fixed little-endian `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] at end of input.
    pub fn read_u32_le(&mut self) -> Result<u32> {
        let bytes = self.read_slice(4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a fixed little-endian `u64`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] at end of input.
    pub fn read_u64_le(&mut self) -> Result<u64> {
        let bytes = self.read_slice(8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] when fewer than `n` bytes remain.
    pub fn read_slice(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| Error::Truncated(format!("{n} bytes expected")))?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads an LEB128 varint.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] at end of input and [`Error::Format`]
    /// for varints longer than 10 bytes (not produced by any writer).
    pub fn read_u64(&mut self) -> Result<u64> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let byte = self.read_u8()?;
            if shift >= 64 {
                return Err(Error::Format("overlong varint".into()));
            }
            // The 10th byte may only contribute the low bit of the 64-bit
            // value; anything else overflows.
            if shift == 63 && byte > 1 {
                return Err(Error::Format("varint overflows u64".into()));
            }
            v |= u64::from(byte & 0x7F) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag varint.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Cursor::read_u64`].
    pub fn read_i64(&mut self) -> Result<i64> {
        Ok(unzigzag(self.read_u64()?))
    }

    /// Reads a float written by [`write_f64_bits`] — bit-exact.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Truncated`] at end of input.
    pub fn read_f64_bits(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.read_u64_le()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        let samples = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &samples {
            write_u64(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &samples {
            assert_eq!(cur.read_u64().unwrap(), v);
        }
        assert_eq!(cur.remaining(), 0);
    }

    #[test]
    fn i64_roundtrip() {
        let samples = [0i64, -1, 1, -64, 64, i64::MIN, i64::MAX];
        let mut buf = Vec::new();
        for &v in &samples {
            write_i64(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &samples {
            assert_eq!(cur.read_i64().unwrap(), v);
        }
    }

    #[test]
    fn truncation_and_overflow_rejected() {
        let mut cur = Cursor::new(&[0x80]);
        assert!(matches!(cur.read_u64(), Err(Error::Truncated(_))));
        // Eleven continuation bytes can never be a valid u64.
        let overlong = [0xFFu8; 11];
        let mut cur = Cursor::new(&overlong);
        assert!(matches!(cur.read_u64(), Err(Error::Format(_))));
        // A 10-byte varint whose last byte exceeds one bit overflows.
        let overflow = [0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x02];
        let mut cur = Cursor::new(&overflow);
        assert!(matches!(cur.read_u64(), Err(Error::Format(_))));
    }

    #[test]
    fn f64_bits_roundtrip_bit_exactly() {
        let specials = [
            f64::NAN,
            f64::from_bits(0x7FF8_0000_0000_0001),
            f64::NEG_INFINITY,
            -0.0,
            f64::MIN_POSITIVE / 2.0,
            f64::MAX,
        ];
        let mut buf = Vec::new();
        for &v in &specials {
            write_f64_bits(&mut buf, v);
        }
        let mut cur = Cursor::new(&buf);
        for &v in &specials {
            assert_eq!(cur.read_f64_bits().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn fixed_width_reads() {
        let mut buf = vec![7u8];
        buf.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        buf.extend_from_slice(&0x0123_4567_89AB_CDEFu64.to_le_bytes());
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.read_u8().unwrap(), 7);
        assert_eq!(cur.read_u32_le().unwrap(), 0xDEAD_BEEF);
        assert_eq!(cur.read_u64_le().unwrap(), 0x0123_4567_89AB_CDEF);
        assert!(cur.read_u8().is_err());
    }
}
