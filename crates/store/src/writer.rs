//! Store writer: appends records into group-clustered columnar chunks.
//!
//! The writer buffers one *row group* at a time (`chunks_per_group ×
//! chunk_rows` records). When a group fills (or the file finishes), the
//! group is optionally **clustered** — sorted by `(b_id, m_id, original
//! position)` — and cut into fixed-row-count chunks. Clustering is what
//! makes zone maps bite on cyclic in-vehicle traffic: a time-contiguous
//! chunk of a bus log contains nearly every message id of the cycle, so
//! min/max pruning never fires; a clustered chunk covers a narrow id band
//! and prunes hard. Each row carries its original trace position
//! (delta-encoded, ~1 byte/row) so readers restore exact trace order per
//! group.
//!
//! The writer needs only `Write` — no seeking. It tracks bytes written and
//! places the footer at the end, with a fixed-size trailer pointing back at
//! it.

use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Arc;

use crate::error::Result;
use crate::layout::{
    checksum, encode_chunk, encode_footer, ChunkMeta, EncodedRow, Footer, ZoneMap, END_MAGIC, MAGIC,
};
use crate::record::{protocol_tag, Record};

/// Tuning knobs for [`StoreWriter`].
#[derive(Debug, Clone, Copy)]
pub struct WriterOptions {
    /// Rows per chunk (the pruning granule). Default 1024.
    pub chunk_rows: usize,
    /// Chunks per row group (the clustering / order-restoration granule,
    /// and the reader's memory budget in chunks). Default 32.
    pub chunks_per_group: usize,
    /// Sort each group by `(b_id, m_id)` before cutting chunks. Default
    /// `true`; disable only to benchmark how badly time-contiguous chunks
    /// prune.
    pub cluster: bool,
}

impl Default for WriterOptions {
    fn default() -> Self {
        WriterOptions {
            chunk_rows: 1024,
            chunks_per_group: 32,
            cluster: true,
        }
    }
}

impl WriterOptions {
    /// Rows buffered per group — the bound on both writer and reader memory.
    pub fn group_rows(&self) -> usize {
        self.chunk_rows.max(1) * self.chunks_per_group.max(1)
    }
}

/// Streaming writer for the `.ivns` chunked columnar trace format.
pub struct StoreWriter<W: Write> {
    out: W,
    options: WriterOptions,
    /// Bytes written so far == offset of the next write (no Seek needed).
    offset: u64,
    /// Bus dictionary in first-seen order.
    buses: Vec<Arc<str>>,
    /// Buffered rows of the current group, in append order.
    group: Vec<BufferedRow>,
    chunks: Vec<ChunkMeta>,
    rows_total: u64,
    groups: u32,
}

struct BufferedRow {
    index: u64,
    timestamp_us: u64,
    bus_id: u32,
    message_id: u32,
    protocol: u8,
    payload: Vec<u8>,
}

impl StoreWriter<BufWriter<File>> {
    /// Creates `path` and writes the store header.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`](crate::Error::Io) on filesystem failure.
    pub fn create<P: AsRef<Path>>(path: P, options: WriterOptions) -> Result<Self> {
        StoreWriter::new(BufWriter::new(File::create(path)?), options)
    }
}

impl<W: Write> StoreWriter<W> {
    /// Wraps `out` and writes the store header.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`](crate::Error::Io) if the header write fails.
    pub fn new(mut out: W, options: WriterOptions) -> Result<Self> {
        out.write_all(MAGIC)?;
        Ok(StoreWriter {
            out,
            options,
            offset: MAGIC.len() as u64,
            buses: Vec::new(),
            group: Vec::new(),
            chunks: Vec::new(),
            rows_total: 0,
            groups: 0,
        })
    }

    /// Appends one record, flushing a full group of chunks when the buffer
    /// reaches `chunks_per_group × chunk_rows` rows.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`](crate::Error::Io) if a group flush fails.
    pub fn append(&mut self, record: &Record) -> Result<()> {
        let bus_id = self.intern_bus(&record.bus);
        self.group.push(BufferedRow {
            index: self.rows_total,
            timestamp_us: record.timestamp_us,
            bus_id,
            message_id: record.message_id,
            protocol: protocol_tag(record.protocol),
            payload: record.payload.clone(),
        });
        self.rows_total += 1;
        if self.group.len() >= self.options.group_rows() {
            self.flush_group()?;
        }
        Ok(())
    }

    /// Flushes any buffered rows, writes the footer and trailer, and
    /// returns the inner writer.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Io`](crate::Error::Io) /
    /// [`Error::Format`](crate::Error::Format) on write or encoding failure.
    pub fn finish(mut self) -> Result<W> {
        self.flush_group()?;
        let footer = Footer {
            buses: std::mem::take(&mut self.buses),
            rows: self.rows_total,
            groups: self.groups,
            group_rows: self.options.group_rows() as u32,
            clustered: self.options.cluster,
            generation: u64::from(self.groups),
            chunks: std::mem::take(&mut self.chunks),
        };
        let footer_bytes = encode_footer(&footer)?;
        let footer_offset = self.offset;
        self.out.write_all(&footer_bytes)?;
        self.out.write_all(&footer_offset.to_le_bytes())?;
        self.out
            .write_all(&(footer_bytes.len() as u64).to_le_bytes())?;
        self.out.write_all(&checksum(&footer_bytes).to_le_bytes())?;
        self.out.write_all(END_MAGIC)?;
        self.out.flush()?;
        Ok(self.out)
    }

    /// Rows appended so far.
    pub fn rows(&self) -> u64 {
        self.rows_total
    }

    fn intern_bus(&mut self, bus: &Arc<str>) -> u32 {
        // Traces carry a handful of buses; linear probing beats a map.
        for (i, known) in self.buses.iter().enumerate() {
            if known.as_ref() == bus.as_ref() {
                return i as u32;
            }
        }
        self.buses.push(bus.clone());
        (self.buses.len() - 1) as u32
    }

    fn flush_group(&mut self) -> Result<()> {
        if self.group.is_empty() {
            return Ok(());
        }
        let mut rows = std::mem::take(&mut self.group);
        if self.options.cluster {
            rows.sort_by_key(|r| (r.bus_id, r.message_id, r.index));
        }
        let group_id = self.groups;
        self.groups += 1;
        for chunk_rows in rows.chunks(self.options.chunk_rows.max(1)) {
            let encoded_rows: Vec<EncodedRow<'_>> = chunk_rows
                .iter()
                .map(|r| EncodedRow {
                    index: r.index,
                    timestamp_us: r.timestamp_us,
                    bus_id: r.bus_id,
                    message_id: r.message_id,
                    protocol: r.protocol,
                    payload: &r.payload,
                })
                .collect();
            let zone = ZoneMap::compute(&encoded_rows, self.buses.len());
            let bytes = encode_chunk(&encoded_rows);
            self.chunks.push(ChunkMeta {
                offset: self.offset,
                len: bytes.len() as u32,
                rows: chunk_rows.len() as u32,
                group: group_id,
                checksum: checksum(&bytes),
                zone,
            });
            self.out.write_all(&bytes)?;
            self.offset += bytes.len() as u64;
        }
        Ok(())
    }
}
