//! Append-mode store: crash recovery, follower tailing, seal compatibility.
//!
//! The recovery contract under test: whatever byte the file is cut at, the
//! reopened store recovers **every sealed (fully flushed) group** with
//! typed errors only — no panics — losing at most the torn tail group.

use std::io::Cursor;
use std::sync::Arc;

use ivnt_protocol::message::Protocol;
use ivnt_store::{
    recover, seal_recovered, AppendOptions, AppendWriter, Record, StoreFollower, StoreReader,
    WriterOptions,
};
use proptest::prelude::*;

const BUSES: [&str; 3] = ["FC", "DC", "K-LIN"];

fn record(i: u64) -> Record {
    let buses: Vec<Arc<str>> = BUSES.iter().map(|&b| Arc::from(b)).collect();
    Record {
        timestamp_us: i * 500,
        bus: buses[(i % 3) as usize].clone(),
        message_id: (i % 24) as u32,
        payload: vec![(i & 0xff) as u8, ((i * 7) & 0xff) as u8],
        protocol: match i % 4 {
            0 => Protocol::Can,
            1 => Protocol::Lin,
            2 => Protocol::SomeIp,
            _ => Protocol::CanFd,
        },
    }
}

fn append_options(chunk_rows: usize, flush_rows: usize) -> AppendOptions {
    AppendOptions {
        writer: WriterOptions {
            chunk_rows,
            chunks_per_group: 4,
            cluster: true,
        },
        flush_rows,
        flush_interval_us: 0,
    }
}

/// Writes `n` records through an append writer, returning the raw bytes
/// (unsealed) plus per-flushed-group `(rows, end byte offset)`.
fn append_bytes(n: u64, options: AppendOptions) -> (Vec<u8>, Vec<(usize, u64)>) {
    let mut writer = AppendWriter::new(Vec::new(), options).unwrap();
    let mut groups = Vec::new();
    for i in 0..n {
        if let Some(flush) = writer.append(&record(i)).unwrap() {
            groups.push((flush.rows, writer.bytes_written()));
        }
    }
    if let Some(flush) = writer.flush().unwrap() {
        groups.push((flush.rows, writer.bytes_written()));
    }
    let frames_end = writer.bytes_written() as usize;
    // Unseal on purpose: keep the frames, drop the footer + trailer.
    let bytes = writer.seal().unwrap();
    (bytes[..frames_end].to_vec(), groups)
}

#[test]
fn sealed_append_file_reads_like_a_batch_store() {
    let records: Vec<Record> = (0..500).map(record).collect();
    let mut writer = AppendWriter::new(Vec::new(), append_options(16, 100)).unwrap();
    for r in &records {
        writer.append(r).unwrap();
    }
    let bytes = writer.seal().unwrap();
    // The standard reader must accept the sealed file unchanged: footer
    // offsets skip over the interleaved frame headers.
    let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
    assert_eq!(reader.footer().rows, 500);
    assert_eq!(reader.footer().groups, 5);
    assert_eq!(reader.read_all().unwrap(), records);
}

#[test]
fn time_trigger_flushes_between_row_triggers() {
    let mut writer = AppendWriter::new(
        Vec::new(),
        AppendOptions {
            writer: WriterOptions {
                chunk_rows: 1024,
                chunks_per_group: 32,
                cluster: true,
            },
            flush_rows: 1_000_000,
            flush_interval_us: 10_000, // 20 records at 500 µs spacing
        },
    )
    .unwrap();
    let mut flushes = 0;
    for i in 0..100 {
        if writer.append(&record(i)).unwrap().is_some() {
            flushes += 1;
        }
    }
    assert!(
        (4..=6).contains(&flushes),
        "expected ~5 time-triggered flushes, got {flushes}"
    );
}

#[test]
fn torn_tail_is_truncated_and_sealed_groups_survive() {
    let (bytes, groups) = append_bytes(330, append_options(16, 64));
    assert_eq!(groups.len(), 6); // 5×64 + trailing 10
                                 // Cut mid-way through the final frame.
    let torn = &bytes[..bytes.len() - 7];
    let recovered = ivnt_store::recover_reader(&mut Cursor::new(torn)).unwrap();
    assert!(!recovered.sealed);
    assert_eq!(recovered.footer.groups, 5);
    assert_eq!(recovered.footer.rows, 320);
    // The plain reader must refuse the torn file with a typed error.
    assert!(StoreReader::from_reader(Cursor::new(torn.to_vec())).is_err());
}

#[test]
fn follower_tails_groups_as_they_complete_and_sees_the_seal() {
    let path = std::env::temp_dir().join(format!(
        "ivnt-follow-{}-{:?}.ivns",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut writer = AppendWriter::create(&path, append_options(16, 50)).unwrap();
    let mut follower = StoreFollower::open(&path).unwrap();
    let mut tailed: Vec<Record> = Vec::new();
    for i in 0..500u64 {
        writer.append(&record(i)).unwrap();
        if i % 100 == 0 {
            let batch = follower.poll().unwrap();
            assert!(!batch.sealed);
            for g in batch.groups {
                tailed.extend(g.records);
            }
        }
    }
    writer.seal().unwrap();
    let batch = follower.poll().unwrap();
    assert!(batch.sealed);
    for g in batch.groups {
        tailed.extend(g.records);
    }
    assert_eq!(tailed, (0..500).map(record).collect::<Vec<_>>());
    // A sealed follower stays sealed and empty.
    let again = follower.poll().unwrap();
    assert!(again.sealed && again.groups.is_empty());
    std::fs::remove_file(&path).ok();
}

#[test]
fn seal_recovered_produces_a_standard_readable_store() {
    let (bytes, _) = append_bytes(330, append_options(16, 64));
    let torn = &bytes[..bytes.len() - 7];
    let path = std::env::temp_dir().join(format!(
        "ivnt-reseal-{}-{:?}.ivns",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, torn).unwrap();
    let recovered = seal_recovered(&path).unwrap();
    assert!(recovered.sealed);
    let mut reader = StoreReader::open(&path).unwrap();
    assert_eq!(reader.footer().rows, 320);
    assert_eq!(
        reader.read_all().unwrap(),
        (0..320).map(record).collect::<Vec<_>>()
    );
    // Idempotent: sealing an already-sealed file changes nothing.
    let len = std::fs::metadata(&path).unwrap().len();
    let again = seal_recovered(&path).unwrap();
    assert!(again.sealed);
    assert_eq!(std::fs::metadata(&path).unwrap().len(), len);
    std::fs::remove_file(&path).ok();
}

proptest! {
    /// Cut an unsealed append file at *any* byte offset: recovery must
    /// return typed results (never panic), keep exactly the complete
    /// frames, and the recovered prefix must replay losslessly.
    #[test]
    fn recovery_at_any_truncation_offset_keeps_all_sealed_groups(
        n in 1u64..400,
        chunk_rows in 1usize..48,
        flush_rows in 1usize..96,
        cut_fraction in 0.0f64..1.0,
    ) {
        let (bytes, groups) = append_bytes(n, append_options(chunk_rows, flush_rows));
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        let torn = &bytes[..cut];

        let outcome = ivnt_store::recover_reader(&mut Cursor::new(torn));
        if cut < 8 {
            // Shorter than the store header: typed BadMagic, nothing else.
            prop_assert!(matches!(outcome, Err(ivnt_store::Error::BadMagic)));
            return Ok(());
        }
        let recovered = outcome.unwrap();
        prop_assert!(!recovered.sealed);

        // Every frame wholly inside the cut must survive — no more, no
        // less. Frame end offsets were captured at flush time.
        let survivors: Vec<&(usize, u64)> =
            groups.iter().filter(|(_, end)| *end <= cut as u64).collect();
        let expect_rows: u64 = survivors.iter().map(|(r, _)| *r as u64).sum();
        prop_assert_eq!(recovered.footer.groups as usize, survivors.len());
        prop_assert_eq!(recovered.footer.rows, expect_rows);
        prop_assert_eq!(
            recovered.valid_len,
            survivors.last().map(|(_, end)| *end).unwrap_or(8)
        );

        // And the recovered prefix replays losslessly in trace order.
        let mut reader = StoreReader::with_footer(
            Cursor::new(torn.to_vec()),
            recovered.footer.clone(),
        );
        let got = reader.read_all().unwrap();
        let expected: Vec<Record> = (0..expect_rows).map(record).collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(recovered.torn_bytes(), (torn.len() as u64).saturating_sub(recovered.valid_len));
    }

    /// Recovery of an *uncut* unsealed file loses nothing, and resealing
    /// round-trips through the standard reader.
    #[test]
    fn recovery_of_complete_unsealed_file_is_lossless(
        n in 1u64..300,
        chunk_rows in 1usize..32,
        flush_rows in 1usize..64,
    ) {
        let (bytes, groups) = append_bytes(n, append_options(chunk_rows, flush_rows));
        let recovered = ivnt_store::recover_reader(&mut Cursor::new(&bytes)).unwrap();
        let flushed: u64 = groups.iter().map(|&(r, _)| r as u64).sum();
        prop_assert_eq!(recovered.footer.rows, flushed);
        prop_assert_eq!(recovered.footer.rows, n); // explicit flush drained everything
        let mut reader = StoreReader::with_footer(
            Cursor::new(bytes),
            recovered.footer.clone(),
        );
        prop_assert_eq!(reader.read_all().unwrap(), (0..n).map(record).collect::<Vec<_>>());
    }

    /// Corrupting a single byte inside the frame region never panics:
    /// recovery either drops the damaged suffix or (for bytes the
    /// checksums don't cover, like padding) still replays a valid prefix.
    #[test]
    fn corruption_inside_frames_never_panics(
        n in 10u64..200,
        flush_rows in 4usize..48,
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let (mut bytes, _) = append_bytes(n, append_options(8, flush_rows));
        let pos = 8 + (((bytes.len() - 9) as f64) * pos_fraction) as usize;
        bytes[pos] ^= xor;
        // A typed error is acceptable; a panic is not. Whatever survives
        // recovery must still replay without panicking.
        if let Ok(recovered) = ivnt_store::recover_reader(&mut Cursor::new(&bytes)) {
            let mut reader = StoreReader::with_footer(
                Cursor::new(bytes),
                recovered.footer.clone(),
            );
            let _ = reader.read_all();
        }
    }
}

#[test]
fn recover_on_path_matches_reader_recovery() {
    let (bytes, _) = append_bytes(120, append_options(8, 40));
    let torn = &bytes[..bytes.len() - 3];
    let path = std::env::temp_dir().join(format!(
        "ivnt-recover-{}-{:?}.ivns",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::write(&path, torn).unwrap();
    let from_path = recover(&path).unwrap();
    let from_reader = ivnt_store::recover_reader(&mut Cursor::new(torn)).unwrap();
    assert_eq!(from_path.footer.rows, from_reader.footer.rows);
    assert_eq!(from_path.valid_len, from_reader.valid_len);
    let (mut reader, recovered) = ivnt_store::open_recovered(&path).unwrap();
    assert_eq!(recovered.footer.rows, from_path.footer.rows);
    assert_eq!(
        reader.read_all().unwrap().len() as u64,
        recovered.footer.rows
    );
    std::fs::remove_file(&path).ok();
}
