//! Property tests: round-trip fidelity, zone-map soundness and
//! corruption robustness of the store format.

use std::io::Cursor;
use std::sync::Arc;

use ivnt_protocol::message::Protocol;
use ivnt_store::{Error, Predicate, Record, StoreReader, StoreWriter, WriterOptions};
use proptest::prelude::*;

const BUSES: [&str; 3] = ["FC", "DC", "K-LIN"];

/// Raw generator tuple per record: (time delta µs, bus index, message id,
/// payload, protocol tag).
type RawRecord = (u32, usize, u32, Vec<u8>, u8);

fn build_records(raw: Vec<RawRecord>) -> Vec<Record> {
    let buses: Vec<Arc<str>> = BUSES.iter().map(|&b| Arc::from(b)).collect();
    let mut t = 0u64;
    raw.into_iter()
        .map(|(dt, bus, mid, payload, proto)| {
            t += u64::from(dt);
            Record {
                timestamp_us: t,
                bus: buses[bus % BUSES.len()].clone(),
                message_id: mid,
                payload,
                protocol: match proto % 4 {
                    0 => Protocol::Can,
                    1 => Protocol::Lin,
                    2 => Protocol::SomeIp,
                    _ => Protocol::CanFd,
                },
            }
        })
        .collect()
}

fn raw_record_strategy() -> impl Strategy<Value = RawRecord> {
    (
        0u32..50_000,
        0usize..BUSES.len(),
        0u32..24,
        prop::collection::vec(0u8..=255, 0..9),
        0u8..4,
    )
}

fn write_store(records: &[Record], options: WriterOptions) -> Vec<u8> {
    let mut writer = StoreWriter::new(Vec::new(), options).unwrap();
    for r in records {
        writer.append(r).unwrap();
    }
    writer.finish().unwrap()
}

proptest! {
    /// Whatever layout parameters the writer uses, a full scan returns
    /// the exact input sequence.
    #[test]
    fn roundtrip_is_lossless(
        raw in prop::collection::vec(raw_record_strategy(), 0..400),
        chunk_rows in 1usize..96,
        chunks_per_group in 1usize..6,
        cluster_bit in 0u8..2,
    ) {
        let records = build_records(raw);
        let bytes = write_store(&records, WriterOptions {
            chunk_rows,
            chunks_per_group,
            cluster: cluster_bit == 1,
        });
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(reader.footer().rows, records.len() as u64);
        prop_assert_eq!(reader.read_all().unwrap(), records);
    }

    /// Zone-map soundness, stated end-to-end: a predicate scan returns
    /// exactly the brute-force row filter. If a skipped chunk ever held a
    /// matching row, that row would be missing here.
    #[test]
    fn scan_equals_brute_force_filter(
        raw in prop::collection::vec(raw_record_strategy(), 0..400),
        chunk_rows in 1usize..64,
        chunks_per_group in 1usize..6,
        cluster_bit in 0u8..2,
        sel_bus in 0usize..BUSES.len(),
        sel_mid in 0u32..24,
        from_us in 0u64..6_000_000,
        window_us in 0u64..6_000_000,
    ) {
        let records = build_records(raw);
        let bytes = write_store(&records, WriterOptions {
            chunk_rows,
            chunks_per_group,
            cluster: cluster_bit == 1,
        });
        let to_us = from_us.saturating_add(window_us);
        let pred = Predicate::for_messages([(BUSES[sel_bus], sel_mid)])
            .with_time_range_us(from_us, to_us);
        let mut got = Vec::new();
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        let stats = reader.scan::<Error, _>(&pred, |mut g| {
            got.append(&mut g);
            Ok(())
        }).unwrap();
        let expected: Vec<Record> = records
            .iter()
            .filter(|r| {
                r.bus.as_ref() == BUSES[sel_bus]
                    && r.message_id == sel_mid
                    && (from_us..=to_us).contains(&r.timestamp_us)
            })
            .cloned()
            .collect();
        prop_assert_eq!(stats.rows_emitted, expected.len() as u64);
        prop_assert_eq!(got, expected);
        prop_assert!(stats.peak_rows_buffered <= chunk_rows * chunks_per_group);
    }

    /// The dictionary may grow for the whole life of the file: bus
    /// `B{i/stride}` first appears at row `i*stride`, so later groups keep
    /// widening the footer bitset past byte boundaries after earlier
    /// groups already flushed shorter ones.
    #[test]
    fn growing_bus_dictionary_roundtrips(
        n in 1usize..300,
        stride in 1usize..24,
        chunk_rows in 1usize..32,
        chunks_per_group in 1usize..4,
    ) {
        let records: Vec<Record> = (0..n)
            .map(|i| Record {
                timestamp_us: i as u64 * 100,
                bus: Arc::from(format!("B{}", i / stride).as_str()),
                message_id: (i % 7) as u32,
                payload: vec![i as u8],
                protocol: Protocol::Can,
            })
            .collect();
        let bytes = write_store(&records, WriterOptions {
            chunk_rows,
            chunks_per_group,
            cluster: true,
        });
        let mut reader = StoreReader::from_reader(Cursor::new(bytes)).unwrap();
        prop_assert_eq!(reader.footer().buses.len(), records.len().div_ceil(stride));
        prop_assert_eq!(reader.read_all().unwrap(), records);
    }

    /// Damaged files yield typed errors, never panics and never silently
    /// wrong data: any single-byte flip or truncation is either caught at
    /// open or at scan time.
    #[test]
    fn corruption_never_panics(
        raw in prop::collection::vec(raw_record_strategy(), 1..150),
        chunk_rows in 1usize..32,
        damage_kind in 0u8..2,
        damage_at in 0usize..10_000,
    ) {
        let records = build_records(raw);
        let mut bytes = write_store(&records, WriterOptions {
            chunk_rows,
            chunks_per_group: 2,
            cluster: true,
        });
        if damage_kind == 0 {
            // Truncate somewhere strictly inside the file.
            let cut = damage_at % bytes.len().max(1);
            bytes.truncate(cut);
        } else {
            let at = damage_at % bytes.len();
            bytes[at] ^= 0x5A;
        }
        match StoreReader::from_reader(Cursor::new(bytes)) {
            Err(_) => {}
            Ok(mut reader) => {
                prop_assert!(reader.read_all().is_err());
            }
        }
    }
}
