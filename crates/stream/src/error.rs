//! Typed errors of the streaming layer.

use std::fmt;

/// Error type for live-session ingest and the incremental pipeline.
#[derive(Debug)]
pub enum Error {
    /// I/O failure on a source or sink.
    Io(std::io::Error),
    /// Failure in the appendable store.
    Store(ivnt_store::Error),
    /// Failure in the interpretation pipeline.
    Core(ivnt_core::Error),
    /// A malformed textual frame line.
    Parse(String),
    /// A pipeline parameterization the incremental path cannot honor
    /// (e.g. cluster reduction, which is a global k-means).
    Unsupported(String),
    /// The ingest channel closed unexpectedly.
    ChannelClosed,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "i/o error: {e}"),
            Error::Store(e) => write!(f, "store error: {e}"),
            Error::Core(e) => write!(f, "pipeline error: {e}"),
            Error::Parse(msg) => write!(f, "frame line parse error: {msg}"),
            Error::Unsupported(msg) => write!(f, "unsupported in streaming mode: {msg}"),
            Error::ChannelClosed => write!(f, "ingest channel closed"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Store(e) => Some(e),
            Error::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<ivnt_store::Error> for Error {
    fn from(e: ivnt_store::Error) -> Self {
        Error::Store(e)
    }
}

impl From<ivnt_core::Error> for Error {
    fn from(e: ivnt_core::Error) -> Self {
        Error::Core(e)
    }
}

/// Streaming result alias.
pub type Result<T> = std::result::Result<T, Error>;
