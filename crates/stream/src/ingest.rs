//! The ingest driver: source → bounded channel → appendable store.
//!
//! A producer thread pulls frames from a [`FrameSource`] and pushes them
//! into a bounded channel; the caller's thread drains the channel into an
//! [`AppendWriter`], which flushes micro-batched row groups. The channel
//! bound is the backpressure mechanism: when the writer falls behind, the
//! producer blocks (counted as `stream_backpressure_total`) instead of
//! growing an unbounded queue.
//!
//! ## Shutdown protocol
//!
//! Setting the shared stop flag makes the producer stop pulling at its
//! next event (sources surface [`SourceEvent::Idle`] on their own
//! timeouts, so a stalled peer cannot wedge shutdown). The consumer then
//! drains whatever the channel still holds, flushes the partial group and
//! seals the store (unless sealing was disabled) — a graceful drain, not
//! an abort. Crash tolerance for *ungraceful* death is the appendable
//! store's job: everything up to the last flushed group is recoverable.

use std::sync::atomic::{AtomicBool, AtomicIsize, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use ivnt_store::{AppendWriter, Record};

use crate::error::{Error, Result};
use crate::source::{FrameSource, SourceEvent};

/// Knobs of the ingest driver.
#[derive(Debug, Clone)]
pub struct IngestOptions {
    /// Bounded channel capacity between source and writer.
    pub queue_capacity: usize,
    /// How long the consumer waits for a frame before re-checking the
    /// stop flag (and flushing an idle partial group).
    pub poll_timeout: Duration,
    /// Stop after this many frames (`None` = until the source ends).
    pub max_frames: Option<u64>,
    /// Seal the store on completion. Leave `false` to keep the file
    /// appendable for a later session (it stays recoverable either way).
    pub seal: bool,
    /// Flush a partial group when the source goes idle, so followers see
    /// fresh data even on a quiet bus.
    pub flush_on_idle: bool,
}

impl Default for IngestOptions {
    fn default() -> Self {
        IngestOptions {
            queue_capacity: 1024,
            poll_timeout: Duration::from_millis(100),
            max_frames: None,
            seal: true,
            flush_on_idle: true,
        }
    }
}

/// What one ingest run did.
#[derive(Debug, Clone, Default)]
pub struct IngestStats {
    /// Frames written.
    pub frames: u64,
    /// Row groups flushed.
    pub groups: u32,
    /// Bytes written to the store.
    pub bytes: u64,
    /// Wall-clock seconds of each group flush.
    pub flush_seconds: Vec<f64>,
    /// Times the producer blocked on a full channel.
    pub backpressure_waits: u64,
    /// High-water mark of the channel depth.
    pub peak_queue_depth: usize,
    /// Frames still queued when the run stopped (dropped, not written).
    pub dropped_frames: u64,
    /// Whether the store was sealed.
    pub sealed: bool,
}

/// Shared handle for asking a running ingest to stop.
#[derive(Debug, Clone, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// Creates an unset flag.
    pub fn new() -> StopFlag {
        StopFlag::default()
    }

    /// Requests a graceful drain-and-stop.
    pub fn stop(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether a stop was requested.
    pub fn is_set(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// Producer-side state shared with the consumer loop.
struct Shared {
    /// Signed: the producer's increment and the consumer's decrement
    /// race, so the instantaneous value may briefly dip below zero.
    depth: AtomicIsize,
    peak_depth: AtomicIsize,
    backpressure: AtomicUsize,
    error: Mutex<Option<Error>>,
}

/// Runs the ingest loop: `source` drained through a bounded channel into
/// `writer` until the source ends, `options.max_frames` is reached or
/// `stop` is set. Returns the writer (sealed or still appendable) with
/// the run's statistics.
///
/// # Errors
///
/// Source and store failures; frames written before the failure stay
/// recoverable in the store.
pub fn ingest<W, S>(
    mut source: S,
    mut writer: AppendWriter<W>,
    options: &IngestOptions,
    stop: &StopFlag,
) -> Result<(Option<W>, IngestStats)>
where
    W: std::io::Write,
    S: FrameSource + 'static,
{
    let (tx, rx): (SyncSender<Record>, Receiver<Record>) =
        std::sync::mpsc::sync_channel(options.queue_capacity.max(1));
    let shared = Arc::new(Shared {
        depth: AtomicIsize::new(0),
        peak_depth: AtomicIsize::new(0),
        backpressure: AtomicUsize::new(0),
        error: Mutex::new(None),
    });

    let producer_shared = shared.clone();
    let producer_stop = stop.clone();
    let producer = std::thread::spawn(move || {
        loop {
            if producer_stop.is_set() {
                break;
            }
            match source.next_event() {
                Ok(SourceEvent::Frame(record)) => {
                    // Try the fast path; a full channel is backpressure.
                    let record = match tx.try_send(record) {
                        Ok(()) => {
                            bump_depth(&producer_shared);
                            continue;
                        }
                        Err(TrySendError::Full(record)) => {
                            producer_shared.backpressure.fetch_add(1, Ordering::Relaxed);
                            ivnt_obs::with(|r| r.add("stream_backpressure_total", 1));
                            record
                        }
                        Err(TrySendError::Disconnected(_)) => break,
                    };
                    if tx.send(record).is_err() {
                        break;
                    }
                    bump_depth(&producer_shared);
                }
                Ok(SourceEvent::Idle) => continue,
                Ok(SourceEvent::End) => break,
                Err(e) => {
                    *producer_shared.error.lock().expect("error slot") = Some(e);
                    break;
                }
            }
        }
        // Dropping `tx` disconnects the channel: the consumer drains what
        // remains and finishes.
    });

    let mut stats = IngestStats::default();
    let result = drain(&rx, &mut writer, options, stop, &shared, &mut stats);
    stop.stop();
    // Dropping the receiver unblocks a producer parked on a full channel;
    // records it already queued are counted as dropped below.
    drop(rx);
    let _ = producer.join();

    stats.backpressure_waits = shared.backpressure.load(Ordering::Relaxed) as u64;
    stats.peak_queue_depth = shared.peak_depth.load(Ordering::Relaxed).max(0) as usize;
    stats.dropped_frames = shared.depth.load(Ordering::Relaxed).max(0) as u64;
    if stats.dropped_frames > 0 {
        ivnt_obs::with(|r| r.add("stream_frames_dropped_total", stats.dropped_frames));
    }
    result?;
    if let Some(e) = shared.error.lock().expect("error slot").take() {
        return Err(e);
    }

    // Flush the partial tail group first so the stats count every data
    // byte; seal() then only adds the footer and trailer.
    writer.flush()?;
    stats.groups = writer.groups();
    stats.bytes = writer.bytes_written();
    let out = if options.seal {
        let out = writer.seal()?;
        stats.sealed = true;
        Some(out)
    } else {
        None
    };
    Ok((out, stats))
}

fn bump_depth(shared: &Shared) {
    let depth = shared.depth.fetch_add(1, Ordering::Relaxed) + 1;
    shared.peak_depth.fetch_max(depth, Ordering::Relaxed);
    ivnt_obs::with(|r| r.set_gauge("stream_queue_depth", depth.max(0) as f64));
}

/// The consumer loop: drain frames into the writer until the channel
/// disconnects (source done) or the stop flag asks for a drain.
fn drain<W: std::io::Write>(
    rx: &Receiver<Record>,
    writer: &mut AppendWriter<W>,
    options: &IngestOptions,
    stop: &StopFlag,
    shared: &Shared,
    stats: &mut IngestStats,
) -> Result<()> {
    loop {
        match rx.recv_timeout(options.poll_timeout) {
            Ok(record) => {
                let depth = shared.depth.fetch_sub(1, Ordering::Relaxed) - 1;
                ivnt_obs::with(|r| r.set_gauge("stream_queue_depth", depth.max(0) as f64));
                if let Some(flush) = writer.append(&record)? {
                    note_flush(stats, flush.seconds);
                }
                stats.frames += 1;
                if options.max_frames.is_some_and(|max| stats.frames >= max) {
                    stop.stop();
                    return Ok(());
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if stop.is_set() {
                    // Producer saw the flag too; one last non-blocking
                    // sweep picks up anything in flight.
                    while let Ok(record) = rx.try_recv() {
                        shared.depth.fetch_sub(1, Ordering::Relaxed);
                        if let Some(flush) = writer.append(&record)? {
                            note_flush(stats, flush.seconds);
                        }
                        stats.frames += 1;
                    }
                    return Ok(());
                }
                if options.flush_on_idle && writer.buffered_rows() > 0 {
                    if let Some(flush) = writer.flush()? {
                        note_flush(stats, flush.seconds);
                    }
                }
            }
            Err(RecvTimeoutError::Disconnected) => {
                while let Ok(record) = rx.try_recv() {
                    shared.depth.fetch_sub(1, Ordering::Relaxed);
                    if let Some(flush) = writer.append(&record)? {
                        note_flush(stats, flush.seconds);
                    }
                    stats.frames += 1;
                }
                return Ok(());
            }
        }
    }
}

fn note_flush(stats: &mut IngestStats, seconds: f64) {
    stats.flush_seconds.push(seconds);
    ivnt_obs::with(|r| {
        r.add("stream_groups_flushed_total", 1);
        r.observe("stream_flush_seconds", ivnt_obs::SECONDS_BUCKETS, seconds);
    });
}
