//! Live-session ingest and the incremental bounded-memory pipeline.
//!
//! The batch pipeline (`ivnt-core`) assumes a finished trace; this crate
//! covers the *live* half of the paper's fleet setting — a vehicle still
//! uploading — with three layers:
//!
//! * [`source`] — where frames come from: a simulator replay, a textual
//!   frame-line stream on stdin, or a TCP socket ([`FrameSource`]).
//! * ingest ([`ingest()`]) — a bounded-channel driver writing frames into
//!   the appendable `.ivns` store (`ivnt_store::AppendWriter`), with
//!   backpressure, graceful drain and crash-recoverable micro-batched row
//!   groups.
//! * [`session`] — [`StreamingSession`], the incremental variant of the
//!   batch `extract_reduced` path: watermark reordering, bounded-history
//!   gateway dedup, carried-state constraint reduction and optional
//!   incremental SWAB + SAX symbolization — emitting per-micro-batch
//!   state deltas under a memory bound, bit-identical to the batch output
//!   for closed in-tolerance streams.
//!
//! Everything reports through `ivnt-obs` (`stream_*` counters, queue
//! depth, watermark lag, flush latency), merging with pipeline metrics in
//! the same registry.

#![warn(missing_docs)]

pub mod error;
pub mod ingest;
pub mod session;
pub mod source;
pub mod symbolize;

pub use error::{Error, Result};
pub use ingest::{ingest, IngestOptions, IngestStats, StopFlag};
pub use session::{
    flatten_reduced, summarize_batch, DeltaRow, SignalDelta, SignalSummary, StreamClose,
    StreamOptions, StreamingSession,
};
pub use source::{
    format_line, parse_line, FrameSource, LineSource, SimulatorSource, SourceEvent, TcpLineSource,
};
pub use symbolize::{
    symbolize_batch, IncrementalSwab, IncrementalSymbolizer, SymbolizeOptions, SymbolizedSegment,
};
