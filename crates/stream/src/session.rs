//! The incremental bounded-memory pipeline.
//!
//! [`StreamingSession`] is the streaming variant of the batch
//! `Pipeline::session(...).extract_reduced()` path (Algorithm 1 lines
//! 3–11): interpretation, per-signal splitting, gateway dedup and
//! constraint reduction — applied per micro-batch with carry-over state
//! instead of whole-trace materialization.
//!
//! ## Bit-identity
//!
//! For a closed stream whose out-of-order distance stays within the
//! watermark and whose per-channel lag stays within `history_cap`, the
//! concatenated [`SignalDelta`]s plus the close-time summaries are
//! **bit-identical** to the batch `extract_reduced` output. The pieces:
//!
//! * Interpretation (`extract_signals`) is row-local and deterministic, so
//!   interpreting micro-batches and concatenating equals interpreting the
//!   whole trace.
//! * The batch split stable-sorts each signal's rows by time. Streaming
//!   reproduces that exact order with a per-signal reorder buffer keyed by
//!   `(t, arrival seqno)` under `f64::total_cmp` — ties keep arrival
//!   order, which is the batch tie order; rows are released once the
//!   signal's watermark passes them.
//! * Gateway dedup is replayed with a bounded representative history and
//!   per-channel cursors (see [`StreamOptions::history_cap`]).
//! * Reduction calls the *same* [`ConditionFn::evaluate`] with a carried
//!   `RowCtx` — previous row, index — so the kept-row mask is identical.
//!
//! Bounded-memory deviations from the batch path are deliberate, counted
//! (see the `stream_*` counters) and documented in `DESIGN.md`: a
//! representative channel is pinned at the first release instead of after
//! seeing all channels; channels lagging beyond `history_cap` are declared
//! mismatched; rows with a null channel are dropped.

use std::collections::HashMap;
use std::sync::Arc;

use ivnt_core::dedup::Dedup;
use ivnt_core::interpret::extract_signals;
use ivnt_core::pipeline::Pipeline;
use ivnt_core::reduce::{Constraint, Reduction, RowCtx};
use ivnt_core::split::{split_by_signal, SignalSequence};
use ivnt_frame::prelude::*;
use ivnt_store::schema::{raw_trace_schema, records_to_batch};
use ivnt_store::Record;

use crate::error::{Error, Result};
use crate::symbolize::{IncrementalSymbolizer, SymbolizeOptions, SymbolizedSegment};

/// Knobs of the incremental pipeline.
#[derive(Debug, Clone, Copy)]
pub struct StreamOptions {
    /// Reorder tolerance in seconds: a row is released once its signal has
    /// seen a timestamp at least this much later. Rows arriving more than
    /// this out of order would break order identity (they are still
    /// processed, and counted as `stream_late_rows_total`).
    pub watermark_s: f64,
    /// Bound on the per-signal representative history kept for the gateway
    /// equality check. A channel lagging its signal's representative by
    /// more than this many rows is declared mismatched instead of growing
    /// the buffer.
    pub history_cap: usize,
    /// When set, reduced numeric values additionally flow through the
    /// incremental SWAB + SAX symbolizer and deltas carry segments.
    pub symbolize: Option<SymbolizeOptions>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            watermark_s: 1.0,
            history_cap: 4096,
            symbolize: None,
        }
    }
}

/// One reduced, deduplicated output row.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// Timestamp in seconds.
    pub t: f64,
    /// Channel the row was observed on.
    pub bus: Option<Arc<str>>,
    /// Numeric value (if numeric).
    pub num: Option<f64>,
    /// Textual value (if textual).
    pub text: Option<Arc<str>>,
}

/// Incremental output for one signal from one micro-batch (or the close).
#[derive(Debug, Clone, PartialEq)]
pub struct SignalDelta {
    /// Signal identifier.
    pub signal: String,
    /// Newly reduced representative rows, in final (batch) order.
    pub rows: Vec<DeltaRow>,
    /// Newly completed SWAB segments with SAX symbols (empty unless
    /// [`StreamOptions::symbolize`] is set).
    pub segments: Vec<SymbolizedSegment>,
}

/// Close-time per-signal report, mirroring one element of the batch
/// `extract_reduced` output.
#[derive(Debug, Clone, PartialEq)]
pub struct SignalSummary {
    /// Signal identifier.
    pub signal: String,
    /// Channel chosen as representative.
    pub representative_channel: String,
    /// Channels whose copies matched the representative.
    pub corresponding: Vec<String>,
    /// Channels whose copies disagreed (or overflowed the history cap).
    pub mismatched: Vec<String>,
    /// Representative rows before reduction (the batch `rows_interpreted`).
    pub rows_interpreted: usize,
    /// Rows emitted after reduction.
    pub rows_emitted: usize,
    /// Representative pins that later proved non-canonical (home or a
    /// smaller channel appeared after pinning).
    pub rep_conflicts: u64,
}

/// Everything the close emits: the final deltas plus per-signal reports.
#[derive(Debug, Clone)]
pub struct StreamClose {
    /// Deltas from draining every reorder buffer.
    pub deltas: Vec<SignalDelta>,
    /// One summary per signal, sorted by signal name.
    pub summaries: Vec<SignalSummary>,
}

/// One buffered interpreted row awaiting watermark release.
struct PendingRow {
    t: f64,
    seqno: u64,
    bus: Option<Arc<str>>,
    num: Option<f64>,
    text: Option<Arc<str>>,
}

/// Value signature element, matching the batch dedup's comparison: numeric
/// bits plus text, null-aware.
type SigElem = (Option<u64>, Option<Arc<str>>);

/// Per-channel dedup cursor state.
struct ChanState {
    /// Number of this channel's rows compared against the representative.
    cursor: usize,
    /// Rows of this channel ahead of the representative, awaiting it.
    pending: std::collections::VecDeque<SigElem>,
    mismatched: bool,
}

/// Carry-over state for one signal.
struct SignalState {
    /// Reorder buffer sorted by `(t, seqno)` under `total_cmp`.
    buffer: std::collections::VecDeque<PendingRow>,
    /// Largest finite timestamp pushed so far.
    max_t: f64,
    /// Largest timestamp released so far (late-arrival detection).
    released_t: f64,
    next_seqno: u64,
    /// Channels observed among pushed rows (sorted, deduped).
    observed: Vec<Arc<str>>,
    /// Representative channel, pinned at the first release.
    rep_channel: Option<Arc<str>>,
    rep_conflicts: u64,
    /// Representative value history (window) for the equality check.
    rep_hist: std::collections::VecDeque<SigElem>,
    /// Absolute representative index of `rep_hist[0]`.
    rep_base: usize,
    /// Total representative rows so far.
    rep_len: usize,
    channels: HashMap<Arc<str>, ChanState>,
    /// Reduction carry-over: previous representative row.
    prev: Option<(f64, Option<f64>, Option<Arc<str>>)>,
    rows_emitted: usize,
    symbolizer: Option<IncrementalSymbolizer>,
}

impl SignalState {
    fn new(symbolize: Option<SymbolizeOptions>) -> SignalState {
        SignalState {
            buffer: std::collections::VecDeque::new(),
            max_t: f64::NEG_INFINITY,
            released_t: f64::NEG_INFINITY,
            next_seqno: 0,
            observed: Vec::new(),
            rep_channel: None,
            rep_conflicts: 0,
            rep_hist: std::collections::VecDeque::new(),
            rep_base: 0,
            rep_len: 0,
            channels: HashMap::new(),
            prev: None,
            rows_emitted: 0,
            symbolizer: symbolize.map(IncrementalSymbolizer::new),
        }
    }

    fn buffered(&self) -> usize {
        self.buffer.len()
            + self.rep_hist.len()
            + self
                .channels
                .values()
                .map(|c| c.pending.len())
                .sum::<usize>()
    }
}

/// The incremental pipeline: push micro-batches of records, receive
/// reduced state deltas; close to flush and obtain the per-signal reports.
pub struct StreamingSession<'p> {
    pipeline: &'p Pipeline,
    options: StreamOptions,
    raw_schema: Arc<Schema>,
    /// Per-signal home channel from `U_comb` (first `home_channel` rule).
    homes: HashMap<String, Arc<str>>,
    signals: HashMap<String, SignalState>,
    active: HashMap<String, Vec<Constraint>>,
    peak_buffered: usize,
    late_rows: u64,
}

impl<'p> StreamingSession<'p> {
    /// Builds a streaming session over `pipeline`'s rule set and profile.
    ///
    /// # Errors
    ///
    /// [`Error::Unsupported`] when the profile requests cluster reduction,
    /// which is a global k-means the incremental path cannot honor.
    pub fn new(pipeline: &'p Pipeline, options: StreamOptions) -> Result<StreamingSession<'p>> {
        if let Reduction::Cluster { .. } = pipeline.profile().reduction {
            return Err(Error::Unsupported(
                "cluster reduction needs the whole sequence; use constraint reduction".into(),
            ));
        }
        let mut homes = HashMap::new();
        for rule in pipeline.u_comb().rules() {
            if rule.info.home_channel && !homes.contains_key(&rule.signal) {
                homes.insert(rule.signal.clone(), Arc::from(rule.bus.as_str()));
            }
        }
        Ok(StreamingSession {
            pipeline,
            options,
            raw_schema: raw_trace_schema(),
            homes,
            signals: HashMap::new(),
            active: HashMap::new(),
            peak_buffered: 0,
            late_rows: 0,
        })
    }

    /// Interprets one micro-batch and returns the deltas released by the
    /// watermark, sorted by signal name.
    ///
    /// # Errors
    ///
    /// Propagates interpretation and tabular-engine failures.
    pub fn push_records(&mut self, records: &[Record]) -> Result<Vec<SignalDelta>> {
        if records.is_empty() {
            return Ok(Vec::new());
        }
        ivnt_obs::with(|r| r.add("stream_frames_total", records.len() as u64));
        let batch = records_to_batch(self.raw_schema.clone(), records).map_err(Error::Store)?;
        let raw = DataFrame::from_partitions(self.raw_schema.clone(), vec![batch])
            .map_err(|e| Error::Core(e.into()))?;
        let ks = extract_signals(&raw, self.pipeline.u_comb())?;
        let seqs = split_by_signal(&ks)?;

        let mut deltas = Vec::new();
        for seq in seqs {
            self.push_sequence(&seq)?;
            let delta = self.release(&seq.signal, false)?;
            if !delta.rows.is_empty() || !delta.segments.is_empty() {
                deltas.push(delta);
            }
        }
        self.note_buffered();
        Ok(deltas)
    }

    /// Flushes every reorder buffer and returns the final deltas plus the
    /// per-signal summaries, sorted by signal name — the streaming
    /// counterpart of the batch `extract_reduced` report.
    ///
    /// # Errors
    ///
    /// Propagates tabular-engine failures.
    pub fn close(mut self) -> Result<StreamClose> {
        let dedup_enabled = self.pipeline.profile().dedup;
        let mut names: Vec<String> = self.signals.keys().cloned().collect();
        names.sort();
        let mut deltas = Vec::new();
        let mut summaries = Vec::new();
        for name in names {
            let delta = self.release(&name, true)?;
            let state = self.signals.get_mut(&name).expect("state exists");
            let mut delta = delta;
            if let Some(sym) = state.symbolizer.take() {
                delta.segments.extend(sym.close());
            }
            if !delta.rows.is_empty() || !delta.segments.is_empty() {
                deltas.push(delta);
            }
            summaries.push(Self::summarize(&name, state, dedup_enabled));
        }
        Ok(StreamClose { deltas, summaries })
    }

    /// High-water mark of rows buffered across all signals — the quantity
    /// the bounded-memory guarantee is about.
    pub fn peak_buffered_rows(&self) -> usize {
        self.peak_buffered
    }

    /// Rows that arrived later than the watermark allowed (order identity
    /// no longer guaranteed for them).
    pub fn late_rows(&self) -> u64 {
        self.late_rows
    }

    /// Inserts one interpreted sequence into its signal's reorder buffer.
    fn push_sequence(&mut self, seq: &SignalSequence) -> Result<()> {
        let times = seq.times()?;
        let nums = seq.numeric_values()?;
        let texts = seq.text_values()?;
        let buses = seq.bus_values()?;
        let state = self
            .signals
            .entry(seq.signal.clone())
            .or_insert_with(|| SignalState::new(self.options.symbolize));
        for i in 0..times.len() {
            let t = times[i];
            let row = PendingRow {
                t,
                seqno: state.next_seqno,
                bus: buses[i].clone(),
                num: nums[i],
                text: texts[i].clone(),
            };
            state.next_seqno += 1;
            if let Some(bus) = &row.bus {
                if let Err(pos) = state.observed.binary_search(bus) {
                    state.observed.insert(pos, bus.clone());
                }
            }
            // Stable insert: first position whose (t, seqno) exceeds ours.
            // Within a micro-batch seqnos ascend, and across batches a
            // tie's arrival order is the batch stable-sort order.
            let pos = state
                .buffer
                .partition_point(|r| match r.t.total_cmp(&row.t) {
                    std::cmp::Ordering::Less => true,
                    std::cmp::Ordering::Equal => r.seqno < row.seqno,
                    std::cmp::Ordering::Greater => false,
                });
            if t.is_finite() {
                if t < state.released_t {
                    self.late_rows += 1;
                    ivnt_obs::with(|r| r.add("stream_late_rows_total", 1));
                }
                if t > state.max_t {
                    state.max_t = t;
                }
            }
            state.buffer.insert(pos, row);
        }
        Ok(())
    }

    /// Releases ripe rows (all rows when closing) through dedup and
    /// reduction, producing the signal's delta.
    fn release(&mut self, signal: &str, all: bool) -> Result<SignalDelta> {
        let history_cap = self.options.history_cap.max(1);
        let home = self.homes.get(signal).cloned();
        let dedup_enabled = self.pipeline.profile().dedup;
        let active = self.active_constraints(signal);
        let state = self.signals.get_mut(signal).expect("state exists");
        let horizon = state.max_t - self.options.watermark_s;
        let mut released = 0u64;
        let mut rows = Vec::new();
        let mut segments = Vec::new();
        while let Some(front) = state.buffer.front() {
            let within_watermark = front.t.is_finite() && front.t <= horizon;
            if !all && !within_watermark {
                break;
            }
            let row = state.buffer.pop_front().expect("front exists");
            released += 1;
            if row.t.is_finite() && row.t > state.released_t {
                state.released_t = row.t;
            }

            // --- Gateway dedup (Algorithm 1, line 9) ---
            let Some(bus) = row.bus.clone() else {
                // The interpret kernel never emits a null channel; if one
                // appears it cannot be attributed for the equality check.
                ivnt_obs::with(|r| r.add("stream_null_bus_rows_total", 1));
                continue;
            };
            if dedup_enabled && state.rep_channel.is_none() {
                let pick = match &home {
                    Some(h) if state.observed.binary_search(h).is_ok() => h.clone(),
                    _ => state
                        .observed
                        .first()
                        .cloned()
                        .unwrap_or_else(|| bus.clone()),
                };
                state.rep_channel = Some(pick);
            }
            let is_rep = match &state.rep_channel {
                Some(rep) => bus == *rep,
                None => true,
            };
            if dedup_enabled && !is_rep {
                let rep = state.rep_channel.clone().expect("pinned above");
                // A canonical-but-late channel means the pin deviated from
                // the batch choice; count it, keep the pin stable.
                let canonical = match &home {
                    Some(h) if state.observed.binary_search(h).is_ok() => h == &bus,
                    _ => bus < rep,
                };
                if canonical {
                    state.rep_conflicts += 1;
                    ivnt_obs::with(|r| r.add("stream_rep_conflicts_total", 1));
                }
            }
            let elem: SigElem = (row.num.map(f64::to_bits), row.text.clone());
            if dedup_enabled {
                if is_rep {
                    state.rep_hist.push_back(elem.clone());
                    let rep_index = state.rep_len;
                    state.rep_len += 1;
                    for chan in state.channels.values_mut() {
                        if chan.mismatched {
                            continue;
                        }
                        if let Some(front) = chan.pending.pop_front() {
                            debug_assert_eq!(chan.cursor, rep_index);
                            if front != elem {
                                chan.mismatched = true;
                            }
                            chan.cursor += 1;
                        }
                    }
                    Self::trim_history(state, history_cap);
                } else {
                    let rep_len = state.rep_len;
                    let rep_base = state.rep_base;
                    let chan = state
                        .channels
                        .entry(bus.clone())
                        .or_insert_with(|| ChanState {
                            cursor: 0,
                            pending: std::collections::VecDeque::new(),
                            mismatched: false,
                        });
                    if !chan.mismatched {
                        if chan.cursor < rep_len {
                            if chan.cursor < rep_base {
                                // History already trimmed past this
                                // channel's position (it appeared late).
                                chan.mismatched = true;
                                ivnt_obs::with(|r| r.add("stream_dedup_overflow_total", 1));
                            } else {
                                let hist = &state.rep_hist[chan.cursor - rep_base];
                                if *hist != elem {
                                    chan.mismatched = true;
                                }
                                chan.cursor += 1;
                            }
                        } else {
                            chan.pending.push_back(elem);
                            if chan.pending.len() > history_cap {
                                chan.mismatched = true;
                                chan.pending.clear();
                                ivnt_obs::with(|r| r.add("stream_dedup_overflow_total", 1));
                            }
                        }
                    }
                    continue;
                }
            } else {
                state.rep_len += 1;
            }

            // --- Constraint reduction (line 10), identical RowCtx ---
            let rep_index = state.rep_len - 1;
            let keep = if active.is_empty() {
                true
            } else {
                let (prev_t, prev_num, prev_text) = match &state.prev {
                    Some((t, n, x)) => (Some(*t), *n, x.clone()),
                    None => (None, None, None),
                };
                let ctx = RowCtx {
                    t: row.t,
                    num: row.num,
                    text: row.text.clone(),
                    prev_t,
                    prev_num,
                    prev_text,
                    index: rep_index,
                };
                active
                    .iter()
                    .flat_map(|c| c.functions.iter())
                    .any(|f| f.evaluate(&ctx))
            };
            state.prev = Some((row.t, row.num, row.text.clone()));
            if keep {
                state.rows_emitted += 1;
                if let (Some(sym), Some(num)) = (&mut state.symbolizer, row.num) {
                    segments.extend(sym.feed(&[num]));
                }
                rows.push(DeltaRow {
                    t: row.t,
                    bus: Some(bus),
                    num: row.num,
                    text: row.text,
                });
            }
        }
        ivnt_obs::with(|r| {
            r.add("stream_rows_released_total", released);
            if state.max_t.is_finite() && state.released_t.is_finite() {
                r.set_gauge(
                    "stream_watermark_lag_seconds",
                    (state.max_t - state.released_t).max(0.0),
                );
            }
        });
        Ok(SignalDelta {
            signal: signal.to_string(),
            rows,
            segments,
        })
    }

    /// Trims the representative history to what lagging channels still
    /// need, evicting (as mismatched) channels that lag beyond the cap.
    ///
    /// "Lagging channels" means every *observed* non-representative
    /// channel — including ones whose rows are still in the reorder
    /// buffer (they compare from index 0 once released, so their need is
    /// cursor 0 until then). A channel first observed only after its
    /// history is gone would have fewer rows than the representative,
    /// which the batch equality check also calls mismatched.
    fn trim_history(state: &mut SignalState, history_cap: usize) {
        loop {
            let rep = state.rep_channel.clone();
            let min_needed = state
                .observed
                .iter()
                .filter(|b| Some(*b) != rep.as_ref())
                .filter_map(|b| match state.channels.get(b) {
                    Some(c) if c.mismatched => None,
                    Some(c) => Some(c.cursor),
                    None => Some(0),
                })
                .min()
                .unwrap_or(state.rep_len);
            while state.rep_base < min_needed && !state.rep_hist.is_empty() {
                state.rep_hist.pop_front();
                state.rep_base += 1;
            }
            if state.rep_hist.len() <= history_cap {
                return;
            }
            // Over the cap: the laggiest channel holds the window open.
            // Declare it mismatched rather than grow without bound.
            let laggiest = state
                .channels
                .iter_mut()
                .filter(|(_, c)| !c.mismatched)
                .min_by_key(|(_, c)| c.cursor)
                .map(|(_, c)| c);
            match laggiest {
                Some(chan) => {
                    chan.mismatched = true;
                    chan.pending.clear();
                    ivnt_obs::with(|r| r.add("stream_dedup_overflow_total", 1));
                }
                None => {
                    // Only not-yet-released channels pin the window at 0:
                    // force-trim; they surface as mismatched on release.
                    while state.rep_hist.len() > history_cap {
                        state.rep_hist.pop_front();
                        state.rep_base += 1;
                    }
                    ivnt_obs::with(|r| r.add("stream_dedup_overflow_total", 1));
                    return;
                }
            }
        }
    }

    fn summarize(signal: &str, state: &SignalState, dedup_enabled: bool) -> SignalSummary {
        // With dedup off the batch passthrough reports the smallest
        // channel and leaves both channel lists empty.
        let rep = if dedup_enabled {
            state
                .rep_channel
                .as_ref()
                .map(|b| b.to_string())
                .unwrap_or_default()
        } else {
            state
                .observed
                .first()
                .map(|b| b.to_string())
                .unwrap_or_default()
        };
        let mut corresponding = Vec::new();
        let mut mismatched = Vec::new();
        if dedup_enabled {
            for bus in &state.observed {
                if bus.as_ref() == rep.as_str() {
                    continue;
                }
                let ok = state.channels.get(bus).is_some_and(|c| {
                    !c.mismatched && c.cursor == state.rep_len && c.pending.is_empty()
                });
                if ok {
                    corresponding.push(bus.to_string());
                } else {
                    mismatched.push(bus.to_string());
                }
            }
        }
        SignalSummary {
            signal: signal.to_string(),
            representative_channel: rep,
            corresponding,
            mismatched,
            rows_interpreted: state.rep_len,
            rows_emitted: state.rows_emitted,
            rep_conflicts: state.rep_conflicts,
        }
    }

    fn active_constraints(&mut self, signal: &str) -> Vec<Constraint> {
        if let Some(active) = self.active.get(signal) {
            return active.clone();
        }
        let active: Vec<Constraint> = self
            .pipeline
            .profile()
            .constraints
            .iter()
            .filter(|c| c.applies_to(signal))
            .cloned()
            .collect();
        self.active.insert(signal.to_string(), active.clone());
        active
    }

    fn note_buffered(&mut self) {
        let buffered: usize = self.signals.values().map(SignalState::buffered).sum();
        if buffered > self.peak_buffered {
            self.peak_buffered = buffered;
        }
        ivnt_obs::with(|r| {
            r.set_gauge("stream_buffered_rows", buffered as f64);
            r.gauge_max("stream_peak_buffered_rows", buffered as f64);
        });
    }
}

/// Converts a batch `extract_reduced` element into the flat row form the
/// streaming deltas use, for comparison in tests and the follow CLI.
///
/// # Errors
///
/// Propagates tabular-engine failures.
pub fn flatten_reduced(seq: &SignalSequence) -> Result<Vec<DeltaRow>> {
    let times = seq.times()?;
    let nums = seq.numeric_values()?;
    let texts = seq.text_values()?;
    let buses = seq.bus_values()?;
    Ok((0..times.len())
        .map(|i| DeltaRow {
            t: times[i],
            bus: buses[i].clone(),
            num: nums[i],
            text: texts[i].clone(),
        })
        .collect())
}

/// Summarizes a batch `extract_reduced` element in the streaming summary
/// form, for comparison in tests.
pub fn summarize_batch(
    reduced: &SignalSequence,
    dedup: &Dedup,
    rows_interpreted: usize,
) -> SignalSummary {
    SignalSummary {
        signal: reduced.signal.clone(),
        representative_channel: dedup.representative_channel.clone(),
        corresponding: dedup.corresponding.clone(),
        mismatched: dedup.mismatched.clone(),
        rows_interpreted,
        rows_emitted: reduced.len(),
        rep_conflicts: 0,
    }
}
