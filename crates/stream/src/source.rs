//! Frame sources: where live records come from.
//!
//! A [`FrameSource`] yields one [`Record`] at a time. Three implementations
//! cover the deployment shapes the paper's fleet back end implies:
//!
//! * [`SimulatorSource`] — replays a simulated [`Trace`], optionally looped
//!   with monotonically advancing timestamps (soak testing, benches).
//! * [`LineSource`] — parses the textual frame-line format from any
//!   `BufRead` (stdin piping: `candump`-style tooling, shell pipelines).
//! * [`TcpLineSource`] — the same line format over a TCP socket with a
//!   read timeout, the "vehicle uploading live" shape. Timeouts surface as
//!   [`SourceEvent::Idle`] so the ingest loop can check its shutdown flag.
//!
//! ## Frame-line format
//!
//! One frame per line, whitespace-separated:
//!
//! ```text
//! <timestamp_us> <bus> <message_id> <payload_hex|-> [can|canfd|lin|someip]
//! ```
//!
//! e.g. `1500 FC 3 0aff can`. Empty lines and `#` comments are skipped;
//! the protocol token defaults to `can`. [`format_line`] is the inverse.

use std::collections::VecDeque;
use std::io::{BufRead, Read};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::Arc;
use std::time::Duration;

use ivnt_protocol::message::Protocol;
use ivnt_simulator::trace::Trace;
use ivnt_store::Record;

use crate::error::{Error, Result};

/// One step of a [`FrameSource`].
#[derive(Debug, Clone, PartialEq)]
pub enum SourceEvent {
    /// A frame arrived.
    Frame(Record),
    /// Nothing arrived within the source's timeout; the stream may still
    /// produce more. Gives the caller a chance to check its stop flag.
    Idle,
    /// The stream ended; no further frames will arrive.
    End,
}

/// A live producer of trace records.
pub trait FrameSource: Send {
    /// Yields the next event, blocking at most the source's own timeout.
    ///
    /// # Errors
    ///
    /// Source-specific I/O or parse failures.
    fn next_event(&mut self) -> Result<SourceEvent>;
}

/// Replays a simulated trace as a live source.
pub struct SimulatorSource {
    records: Vec<Record>,
    pos: usize,
    looped: bool,
    /// Timestamp offset applied to the current lap (µs).
    lap_offset_us: u64,
    /// One lap's time span including a cycle gap, so looped laps advance
    /// monotonically instead of rewinding time.
    lap_span_us: u64,
}

impl SimulatorSource {
    /// Wraps an in-memory trace.
    pub fn new(trace: &Trace) -> SimulatorSource {
        let records: Vec<Record> = trace
            .records()
            .iter()
            .map(ivnt_simulator::store::to_store_record)
            .collect();
        let lap_span_us = records
            .iter()
            .map(|r| r.timestamp_us)
            .max()
            .unwrap_or(0)
            .saturating_add(1_000);
        SimulatorSource {
            records,
            pos: 0,
            looped: false,
            lap_offset_us: 0,
            lap_span_us,
        }
    }

    /// Loops the trace endlessly, shifting each lap's timestamps forward —
    /// the soak-test / kill-mid-stream workload.
    pub fn looped(mut self) -> SimulatorSource {
        self.looped = true;
        self
    }
}

impl FrameSource for SimulatorSource {
    fn next_event(&mut self) -> Result<SourceEvent> {
        if self.pos >= self.records.len() {
            if !self.looped || self.records.is_empty() {
                return Ok(SourceEvent::End);
            }
            self.pos = 0;
            self.lap_offset_us += self.lap_span_us;
        }
        let mut record = self.records[self.pos].clone();
        record.timestamp_us += self.lap_offset_us;
        self.pos += 1;
        Ok(SourceEvent::Frame(record))
    }
}

/// Parses one frame line; `Ok(None)` for blanks and comments.
///
/// # Errors
///
/// [`Error::Parse`] with the offending field on malformed input.
pub fn parse_line(line: &str) -> Result<Option<Record>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut fields = line.split_whitespace();
    let t = fields
        .next()
        .ok_or_else(|| Error::Parse("missing timestamp".into()))?;
    let timestamp_us: u64 = t
        .parse()
        .map_err(|_| Error::Parse(format!("bad timestamp {t:?}")))?;
    let bus = fields
        .next()
        .ok_or_else(|| Error::Parse("missing bus".into()))?;
    let mid = fields
        .next()
        .ok_or_else(|| Error::Parse("missing message id".into()))?;
    let message_id: u32 = mid
        .parse()
        .map_err(|_| Error::Parse(format!("bad message id {mid:?}")))?;
    let payload_hex = fields
        .next()
        .ok_or_else(|| Error::Parse("missing payload".into()))?;
    let payload = if payload_hex == "-" {
        Vec::new()
    } else {
        decode_hex(payload_hex)?
    };
    let protocol = match fields.next() {
        None => Protocol::Can,
        Some(tag) => match tag.to_ascii_lowercase().as_str() {
            "can" => Protocol::Can,
            "canfd" => Protocol::CanFd,
            "lin" => Protocol::Lin,
            "someip" => Protocol::SomeIp,
            other => return Err(Error::Parse(format!("unknown protocol {other:?}"))),
        },
    };
    if let Some(extra) = fields.next() {
        return Err(Error::Parse(format!("trailing field {extra:?}")));
    }
    Ok(Some(Record {
        timestamp_us,
        bus: Arc::from(bus),
        message_id,
        payload,
        protocol,
    }))
}

/// Renders a record in the frame-line format [`parse_line`] accepts.
pub fn format_line(record: &Record) -> String {
    let payload = if record.payload.is_empty() {
        "-".to_string()
    } else {
        record
            .payload
            .iter()
            .map(|b| format!("{b:02x}"))
            .collect::<String>()
    };
    let proto = match record.protocol {
        Protocol::Can => "can",
        Protocol::CanFd => "canfd",
        Protocol::Lin => "lin",
        Protocol::SomeIp => "someip",
    };
    format!(
        "{} {} {} {} {}",
        record.timestamp_us, record.bus, record.message_id, payload, proto
    )
}

fn decode_hex(s: &str) -> Result<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return Err(Error::Parse(format!("odd-length payload hex {s:?}")));
    }
    (0..s.len())
        .step_by(2)
        .map(|i| {
            u8::from_str_radix(&s[i..i + 2], 16)
                .map_err(|_| Error::Parse(format!("bad payload hex {s:?}")))
        })
        .collect()
}

/// Reads the frame-line format from any buffered reader (stdin, a file, a
/// pipe). Blocks until a line arrives; EOF is [`SourceEvent::End`].
pub struct LineSource<R: BufRead + Send> {
    reader: R,
    line: String,
}

impl<R: BufRead + Send> LineSource<R> {
    /// Wraps `reader`.
    pub fn new(reader: R) -> LineSource<R> {
        LineSource {
            reader,
            line: String::new(),
        }
    }
}

impl<R: BufRead + Send> FrameSource for LineSource<R> {
    fn next_event(&mut self) -> Result<SourceEvent> {
        loop {
            self.line.clear();
            if self.reader.read_line(&mut self.line)? == 0 {
                return Ok(SourceEvent::End);
            }
            if let Some(record) = parse_line(&self.line)? {
                return Ok(SourceEvent::Frame(record));
            }
        }
    }
}

/// Reads the frame-line format from a TCP socket with a read timeout.
///
/// Partial lines are buffered across reads; a timeout yields
/// [`SourceEvent::Idle`] so the ingest loop can honor its stop flag even
/// when the peer stalls.
pub struct TcpLineSource {
    stream: TcpStream,
    partial: Vec<u8>,
    ready: VecDeque<Record>,
    eof: bool,
}

impl TcpLineSource {
    /// Wraps a connected stream, setting its read timeout.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] when the timeout cannot be applied.
    pub fn new(stream: TcpStream, timeout: Duration) -> Result<TcpLineSource> {
        stream.set_read_timeout(Some(timeout))?;
        Ok(TcpLineSource {
            stream,
            partial: Vec::new(),
            ready: VecDeque::new(),
            eof: false,
        })
    }

    /// Binds `addr`, accepts one peer and wraps it.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] on bind/accept failure.
    pub fn accept_on<A: ToSocketAddrs>(addr: A, timeout: Duration) -> Result<TcpLineSource> {
        let listener = std::net::TcpListener::bind(addr)?;
        let (stream, _) = listener.accept()?;
        TcpLineSource::new(stream, timeout)
    }

    fn drain_lines(&mut self) -> Result<()> {
        while let Some(nl) = self.partial.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.partial.drain(..=nl).collect();
            let text = std::str::from_utf8(&line)
                .map_err(|_| Error::Parse("frame line is not utf-8".into()))?;
            if let Some(record) = parse_line(text)? {
                self.ready.push_back(record);
            }
        }
        Ok(())
    }
}

impl FrameSource for TcpLineSource {
    fn next_event(&mut self) -> Result<SourceEvent> {
        if let Some(record) = self.ready.pop_front() {
            return Ok(SourceEvent::Frame(record));
        }
        if self.eof {
            return Ok(SourceEvent::End);
        }
        let mut buf = [0u8; 4096];
        match self.stream.read(&mut buf) {
            Ok(0) => {
                self.eof = true;
                // A final line without a trailing newline still counts.
                if !self.partial.is_empty() {
                    self.partial.push(b'\n');
                    self.drain_lines()?;
                }
                match self.ready.pop_front() {
                    Some(record) => Ok(SourceEvent::Frame(record)),
                    None => Ok(SourceEvent::End),
                }
            }
            Ok(n) => {
                self.partial.extend_from_slice(&buf[..n]);
                self.drain_lines()?;
                match self.ready.pop_front() {
                    Some(record) => Ok(SourceEvent::Frame(record)),
                    None => Ok(SourceEvent::Idle),
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                Ok(SourceEvent::Idle)
            }
            Err(e) => Err(Error::Io(e)),
        }
    }
}
