//! Incremental SWAB + SAX symbolization with carry-over state.
//!
//! The batch SWAB driver ([`ivnt_series::swab::swab`]) is *prefix-causal*:
//! while more than `buffer_len` points remain it runs bottom-up on exactly
//! the first `buffer_len` points and commits only the leftmost segment;
//! only the final (≤ `buffer_len`) window is emitted whole. That structure
//! makes an incremental wrapper with bounded carry-over possible — and
//! **bit-identical**, not merely approximate:
//!
//! * [`IncrementalSwab::feed`] appends points and, while *strictly more*
//!   than `buffer_len` points are pending (i.e. the current window provably
//!   isn't the final one), replays the batch step: bottom-up over the first
//!   `buffer_len` pending points, emit the leftmost segment, drop its
//!   points. Pending never exceeds `buffer_len + feed_len` and shrinks back
//!   under `buffer_len` before returning — O(window) carry-over.
//! * [`IncrementalSwab::close`] emits bottom-up over the remaining pending
//!   points — exactly the batch driver's final-window step (and exactly the
//!   `n ≤ buffer_len` whole-series case when nothing was ever emitted).
//!
//! [`IncrementalSymbolizer`] layers SAX on top: each completed segment's
//! mean value is mapped to a symbol against the equiprobable Gaussian
//! [`breakpoints`]. [`symbolize_batch`] is the batch oracle the property
//! tests compare against under randomized feed boundaries.

use std::collections::VecDeque;

use ivnt_series::sax::{breakpoints, symbol_for};
use ivnt_series::stats::mean;
use ivnt_series::swab::{bottom_up, swab, SwabConfig};
use ivnt_series::Segment;

/// Knobs for the incremental symbolizer.
#[derive(Debug, Clone, Copy)]
pub struct SymbolizeOptions {
    /// SWAB segmentation parameters.
    pub swab: SwabConfig,
    /// SAX alphabet size (≥ 2).
    pub alphabet_size: usize,
}

impl Default for SymbolizeOptions {
    fn default() -> Self {
        SymbolizeOptions {
            swab: SwabConfig::default(),
            alphabet_size: 5,
        }
    }
}

/// Incremental SWAB: bounded carry-over, bit-identical to the batch driver.
pub struct IncrementalSwab {
    max_error: f64,
    buffer_len: usize,
    /// Absolute index of `pending[0]` in the full series.
    base: usize,
    pending: Vec<f64>,
}

impl IncrementalSwab {
    /// Creates carry-over state for `config`.
    pub fn new(config: SwabConfig) -> IncrementalSwab {
        IncrementalSwab {
            max_error: config.max_error,
            buffer_len: config.buffer_len.max(4),
            base: 0,
            pending: Vec::new(),
        }
    }

    /// Appends points and returns every segment the batch driver would
    /// have committed by now (absolute indices into the full series).
    pub fn feed(&mut self, values: &[f64]) -> Vec<Segment> {
        self.pending.extend_from_slice(values);
        let mut out = Vec::new();
        while self.pending.len() > self.buffer_len {
            let segs = bottom_up(&self.pending[..self.buffer_len], self.max_error);
            let first = segs.into_iter().next().expect("non-empty window");
            let advance = first.end - first.start;
            out.push(Segment {
                start: first.start + self.base,
                end: first.end + self.base,
                ..first
            });
            self.pending.drain(..advance);
            self.base += advance;
        }
        out
    }

    /// Emits the final window's segments, consuming the state.
    pub fn close(self) -> Vec<Segment> {
        bottom_up(&self.pending, self.max_error)
            .into_iter()
            .map(|s| Segment {
                start: s.start + self.base,
                end: s.end + self.base,
                ..s
            })
            .collect()
    }

    /// Points currently carried over (bounded by `buffer_len` between
    /// feeds).
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// One SWAB segment with its SAX symbol.
#[derive(Debug, Clone, PartialEq)]
pub struct SymbolizedSegment {
    /// The fitted segment (absolute indices into the value series).
    pub segment: Segment,
    /// SAX symbol of the segment's mean value.
    pub symbol: char,
}

/// Incremental SWAB + SAX over a single signal's numeric values.
pub struct IncrementalSymbolizer {
    swab: IncrementalSwab,
    breakpoints: Vec<f64>,
    /// Values not yet consumed by an emitted segment, front-aligned with
    /// the swab carry-over window.
    values: VecDeque<f64>,
}

impl IncrementalSymbolizer {
    /// Creates carry-over state for `options`.
    pub fn new(options: SymbolizeOptions) -> IncrementalSymbolizer {
        IncrementalSymbolizer {
            swab: IncrementalSwab::new(options.swab),
            breakpoints: breakpoints(options.alphabet_size.max(2)),
            values: VecDeque::new(),
        }
    }

    /// Appends values, returning segments completed by this feed.
    pub fn feed(&mut self, values: &[f64]) -> Vec<SymbolizedSegment> {
        self.values.extend(values.iter().copied());
        let segments = self.swab.feed(values);
        segments
            .into_iter()
            .map(|segment| self.symbolize(segment))
            .collect()
    }

    /// Emits the remaining segments, consuming the state.
    pub fn close(mut self) -> Vec<SymbolizedSegment> {
        let segments =
            std::mem::replace(&mut self.swab, IncrementalSwab::new(SwabConfig::default())).close();
        segments
            .into_iter()
            .map(|segment| self.symbolize(segment))
            .collect()
    }

    /// Values carried over awaiting segmentation.
    pub fn pending_len(&self) -> usize {
        self.swab.pending_len()
    }

    fn symbolize(&mut self, segment: Segment) -> SymbolizedSegment {
        // Segments tile the series: this one's values sit at the front.
        let len = segment.end - segment.start;
        let vals: Vec<f64> = self.values.drain(..len).collect();
        SymbolizedSegment {
            symbol: symbol_for(mean(&vals), &self.breakpoints),
            segment,
        }
    }
}

/// Batch oracle: SWAB over the whole series, then the same per-segment
/// mean → SAX mapping. The property tests assert [`IncrementalSymbolizer`]
/// reproduces this bit-for-bit under arbitrary feed boundaries.
pub fn symbolize_batch(values: &[f64], options: SymbolizeOptions) -> Vec<SymbolizedSegment> {
    let bps = breakpoints(options.alphabet_size.max(2));
    swab(values, options.swab)
        .into_iter()
        .map(|segment| SymbolizedSegment {
            symbol: symbol_for(mean(&values[segment.start..segment.end]), &bps),
            segment,
        })
        .collect()
}
