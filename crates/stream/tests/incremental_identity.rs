//! Incremental ≡ batch: the streaming pipeline's concatenated deltas and
//! close-time summaries must be bit-identical to the batch
//! `Pipeline::session(..).extract_reduced()` output for closed streams,
//! under arbitrary micro-batch boundaries (including single-row batches),
//! with arrival jitter inside the watermark, and with dedup on or off.
//! The SWAB + SAX carry-over is additionally proven at the kernel level
//! against the batch segmenter, including boundaries that land
//! mid-segment.

use std::collections::HashMap;
use std::sync::OnceLock;

use ivnt_core::dedup::Dedup;
use ivnt_core::pipeline::{DomainProfile, Pipeline, RunOptions};
use ivnt_core::reduce::{ConditionFn, Constraint};
use ivnt_core::rules::RuleSet;
use ivnt_core::split::SignalSequence;
use ivnt_simulator::prelude::*;
use ivnt_simulator::store::to_store_record;
use ivnt_store::{Record, StoreReader, StoreWriter, WriterOptions};
use ivnt_stream::{
    flatten_reduced, summarize_batch, DeltaRow, SignalSummary, StreamOptions, StreamingSession,
    SymbolizeOptions,
};
use proptest::prelude::*;

fn dataset() -> &'static GeneratedDataSet {
    static DATA: OnceLock<GeneratedDataSet> = OnceLock::new();
    DATA.get_or_init(|| {
        generate(&DataSetSpec::syn().with_seed(41).with_target_examples(4_000))
            .expect("generate SYN dataset")
    })
}

fn pipeline(network: &NetworkModel, profile: DomainProfile) -> Pipeline {
    Pipeline::new(RuleSet::from_network(network), profile).expect("pipeline")
}

fn records(trace: &Trace) -> Vec<Record> {
    trace.records().iter().map(to_store_record).collect()
}

fn batch_reduced(p: &Pipeline, trace: &Trace) -> Vec<(SignalSequence, Dedup, usize)> {
    p.session(RunOptions::trace(trace))
        .extract_reduced()
        .expect("batch extract_reduced")
}

/// Streams `records` in chunks drawn round-robin from `chunk_sizes`,
/// returning concatenated per-signal rows, the summaries, and the
/// session's buffered-rows high-water mark.
fn stream_reduced(
    p: &Pipeline,
    records: &[Record],
    chunk_sizes: &[usize],
    options: StreamOptions,
) -> (HashMap<String, Vec<DeltaRow>>, Vec<SignalSummary>, usize) {
    let mut session = StreamingSession::new(p, options).expect("streaming session");
    let mut rows: HashMap<String, Vec<DeltaRow>> = HashMap::new();
    let mut offset = 0;
    let mut pick = 0;
    while offset < records.len() {
        let size = chunk_sizes[pick % chunk_sizes.len()].max(1);
        pick += 1;
        let end = (offset + size).min(records.len());
        for delta in session.push_records(&records[offset..end]).expect("push") {
            rows.entry(delta.signal).or_default().extend(delta.rows);
        }
        offset = end;
    }
    let peak = session.peak_buffered_rows();
    let close = session.close().expect("close");
    for delta in close.deltas {
        rows.entry(delta.signal).or_default().extend(delta.rows);
    }
    (rows, close.summaries, peak)
}

/// Asserts one streaming run is bit-identical to one batch run.
fn assert_identical(
    batch: &[(SignalSequence, Dedup, usize)],
    rows: &HashMap<String, Vec<DeltaRow>>,
    summaries: &[SignalSummary],
) {
    assert_eq!(batch.len(), summaries.len(), "signal count");
    for ((reduced, dedup, interpreted), summary) in batch.iter().zip(summaries) {
        let expect = summarize_batch(reduced, dedup, *interpreted);
        assert_eq!(&expect, summary, "summary for {}", reduced.signal);
        let expect_rows = flatten_reduced(reduced).expect("flatten");
        let got = rows.get(&reduced.signal).cloned().unwrap_or_default();
        assert_eq!(expect_rows, got, "rows for {}", reduced.signal);
    }
}

#[test]
fn fixed_chunks_match_batch() {
    let data = dataset();
    let p = pipeline(&data.network, DomainProfile::new("stream-id"));
    let batch = batch_reduced(&p, &data.trace);
    let recs = records(&data.trace);
    let (rows, summaries, _) = stream_reduced(&p, &recs, &[64], StreamOptions::default());
    assert_identical(&batch, &rows, &summaries);
    assert!(summaries.iter().all(|s| s.rep_conflicts == 0));
    // The gateway must actually be exercised: some signal has a
    // corresponding channel, or this test proves nothing about dedup.
    assert!(summaries.iter().any(|s| !s.corresponding.is_empty()));
}

#[test]
fn single_row_batches_match_batch() {
    let data = dataset();
    let p = pipeline(&data.network, DomainProfile::new("stream-id-1row"));
    let batch = batch_reduced(&p, &data.trace);
    let recs = records(&data.trace);
    let (rows, summaries, _) = stream_reduced(&p, &recs, &[1], StreamOptions::default());
    assert_identical(&batch, &rows, &summaries);
}

#[test]
fn dedup_disabled_matches_batch() {
    let data = dataset();
    let p = pipeline(
        &data.network,
        DomainProfile::new("stream-nodedup").with_dedup(false),
    );
    let batch = batch_reduced(&p, &data.trace);
    let recs = records(&data.trace);
    let (rows, summaries, _) = stream_reduced(&p, &recs, &[97], StreamOptions::default());
    assert_identical(&batch, &rows, &summaries);
}

#[test]
fn alternate_constraints_match_batch() {
    let data = dataset();
    let constraints = vec![Constraint::global(vec![
        ConditionFn::ValueChanged,
        ConditionFn::GapExceeds { max_gap_s: 0.25 },
        ConditionFn::EveryNth { n: 37 },
    ])];
    let p = pipeline(
        &data.network,
        DomainProfile::new("stream-constraints").with_constraints(constraints),
    );
    let batch = batch_reduced(&p, &data.trace);
    let recs = records(&data.trace);
    let (rows, summaries, _) = stream_reduced(&p, &recs, &[33], StreamOptions::default());
    assert_identical(&batch, &rows, &summaries);
}

#[test]
fn cluster_reduction_is_rejected() {
    let data = dataset();
    let p = pipeline(
        &data.network,
        DomainProfile::new("stream-cluster").with_reduction(
            ivnt_core::reduce::Reduction::Cluster {
                k: 4,
                max_iterations: 10,
            },
        ),
    );
    let err = StreamingSession::new(&p, StreamOptions::default());
    assert!(matches!(err, Err(ivnt_stream::Error::Unsupported(_))));
}

/// Jitter inside the watermark: records arrive slightly out of time order;
/// the reorder buffer must reconstruct the exact batch order. The batch
/// reference runs over a store holding the *same jittered record
/// sequence*, so both sides see identical input rows.
#[test]
fn jittered_arrival_matches_batch_over_store() {
    let data = dataset();
    let p = pipeline(&data.network, DomainProfile::new("stream-jitter"));
    let mut recs = records(&data.trace);
    // Deterministic local shuffle: swap neighbors a few positions apart.
    // Timestamps stay untouched, so the time order the batch sort
    // recovers is unchanged — only arrival order differs.
    let n = recs.len();
    for i in (0..n.saturating_sub(7)).step_by(5) {
        let j = i + 1 + (i * 2_654_435_761) % 6;
        recs.swap(i, j.min(n - 1));
    }
    let dir = std::env::temp_dir();
    let path = dir.join(format!("ivnt-stream-jitter-{}.ivns", std::process::id()));
    let mut writer = StoreWriter::create(&path, WriterOptions::default()).expect("store writer");
    for r in &recs {
        writer.append(r).expect("append");
    }
    writer.finish().expect("finish");
    let mut reader = StoreReader::open(&path).expect("open");
    let batch = p
        .session(RunOptions::store(&mut reader))
        .extract_reduced()
        .expect("batch over store");
    drop(reader);
    let _ = std::fs::remove_file(&path);

    let (rows, summaries, _) = stream_reduced(&p, &recs, &[71], StreamOptions::default());
    assert_identical(&batch, &rows, &summaries);
}

/// Bounded memory: stream many laps of the trace (far more rows than one
/// watermark window holds) and check the buffered-rows high-water mark is
/// a small fraction of the total and stops growing after warm-up.
#[test]
fn memory_stays_bounded_over_many_windows() {
    let data = dataset();
    let p = pipeline(&data.network, DomainProfile::new("stream-bounded"));
    let base = records(&data.trace);
    let lap_span = base.iter().map(|r| r.timestamp_us).max().unwrap_or(0) + 1_000;
    let laps = 12usize;
    let options = StreamOptions {
        // One lap spans `duration_s` seconds; the watermark covers a small
        // slice of it, so 12 laps stream ≥ 10× the reorder window.
        watermark_s: data.spec.duration_s / 10.0,
        ..StreamOptions::default()
    };
    let mut session = StreamingSession::new(&p, options).expect("session");
    let mut total = 0usize;
    let mut warmup_peak = 0usize;
    for lap in 0..laps {
        let shifted: Vec<Record> = base
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.timestamp_us += lap as u64 * lap_span;
                r
            })
            .collect();
        for chunk in shifted.chunks(256) {
            session.push_records(chunk).expect("push");
            total += chunk.len();
        }
        if lap == 2 {
            warmup_peak = session.peak_buffered_rows();
        }
    }
    let peak = session.peak_buffered_rows();
    session.close().expect("close");
    assert!(total >= 10 * 256, "stream long enough to matter");
    assert!(
        peak * 4 < total,
        "peak buffered rows {peak} should be well under total {total}"
    );
    assert!(
        peak <= warmup_peak * 3 / 2,
        "buffer kept growing after warm-up: {warmup_peak} -> {peak}"
    );
}

#[test]
fn symbolized_segments_tile_the_reduced_rows() {
    let data = dataset();
    let p = pipeline(&data.network, DomainProfile::new("stream-sym"));
    let recs = records(&data.trace);
    let options = StreamOptions {
        symbolize: Some(SymbolizeOptions::default()),
        ..StreamOptions::default()
    };
    let mut session = StreamingSession::new(&p, options).expect("session");
    let mut covered: HashMap<String, usize> = HashMap::new();
    let mut numeric_rows: HashMap<String, usize> = HashMap::new();
    for chunk in recs.chunks(128) {
        for delta in session.push_records(chunk).expect("push") {
            let c = covered.entry(delta.signal.clone()).or_default();
            for seg in &delta.segments {
                assert_eq!(*c, seg.segment.start, "segments tile contiguously");
                *c = seg.segment.end;
            }
            *numeric_rows.entry(delta.signal).or_default() +=
                delta.rows.iter().filter(|r| r.num.is_some()).count();
        }
    }
    let close = session.close().expect("close");
    for delta in close.deltas {
        let c = covered.entry(delta.signal.clone()).or_default();
        for seg in &delta.segments {
            assert_eq!(*c, seg.segment.start, "segments tile contiguously");
            *c = seg.segment.end;
        }
        *numeric_rows.entry(delta.signal).or_default() +=
            delta.rows.iter().filter(|r| r.num.is_some()).count();
    }
    let mut saw_segments = false;
    for (signal, rows) in &numeric_rows {
        let end = covered.get(signal).copied().unwrap_or(0);
        assert_eq!(end, *rows, "segments cover every numeric row of {signal}");
        saw_segments |= end > 0;
    }
    assert!(saw_segments, "at least one signal was symbolized");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core identity property: ANY micro-batch boundary placement
    /// (sizes 1..=120, cycled) reproduces the batch output bit-for-bit.
    fn randomized_micro_batch_boundaries_match_batch(
        sizes in prop::collection::vec(1usize..120, 1..12),
    ) {
        let data = dataset();
        let p = pipeline(&data.network, DomainProfile::new("stream-prop"));
        let batch = batch_reduced(&p, &data.trace);
        let recs = records(&data.trace);
        let (rows, summaries, _) =
            stream_reduced(&p, &recs, &sizes, StreamOptions::default());
        prop_assert_eq!(batch.len(), summaries.len());
        for ((reduced, dedup, interpreted), summary) in batch.iter().zip(&summaries) {
            let expect = summarize_batch(reduced, dedup, *interpreted);
            prop_assert_eq!(&expect, summary);
            let expect_rows = flatten_reduced(reduced).expect("flatten");
            let got = rows.get(&reduced.signal).cloned().unwrap_or_default();
            prop_assert_eq!(expect_rows, got);
        }
    }
}
