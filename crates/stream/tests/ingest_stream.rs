//! Source and ingest-driver behavior: frame-line round trips, stdin/TCP
//! sources, end-to-end ingest into a sealed `.ivns` store, graceful
//! drain-on-stop, and recoverability of an unsealed ingest output.

use std::io::Write;
use std::sync::OnceLock;
use std::time::Duration;

use ivnt_simulator::prelude::*;
use ivnt_simulator::store::to_store_record;
use ivnt_store::{open_recovered, AppendOptions, AppendWriter, Record, StoreReader, WriterOptions};
use ivnt_stream::{
    format_line, ingest, parse_line, FrameSource, IngestOptions, LineSource, SimulatorSource,
    SourceEvent, StopFlag, TcpLineSource,
};
use proptest::prelude::*;

fn dataset() -> &'static GeneratedDataSet {
    static DATA: OnceLock<GeneratedDataSet> = OnceLock::new();
    DATA.get_or_init(|| {
        generate(&DataSetSpec::syn().with_seed(17).with_target_examples(2_000))
            .expect("generate SYN dataset")
    })
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("ivnt-ingest-{tag}-{}.ivns", std::process::id()))
}

fn append_options() -> AppendOptions {
    AppendOptions {
        writer: WriterOptions {
            chunk_rows: 64,
            chunks_per_group: 4,
            cluster: true,
        },
        flush_rows: 256,
        flush_interval_us: 0,
    }
}

#[test]
fn frame_line_round_trips() {
    let records: Vec<Record> = dataset()
        .trace
        .records()
        .iter()
        .take(500)
        .map(to_store_record)
        .collect();
    for r in &records {
        let line = format_line(r);
        let back = parse_line(&line).expect("parse").expect("record");
        assert_eq!(r, &back);
    }
}

#[test]
fn parse_line_rejects_malformed_input() {
    assert!(parse_line("").unwrap().is_none());
    assert!(parse_line("   # comment").unwrap().is_none());
    assert!(parse_line("abc FC 3 00").is_err());
    assert!(parse_line("100 FC notanid 00").is_err());
    assert!(parse_line("100 FC 3 0g").is_err());
    assert!(parse_line("100 FC 3 0ff").is_err(), "odd-length hex");
    assert!(parse_line("100 FC 3 00 modbus").is_err());
    assert!(parse_line("100 FC 3 00 can extra").is_err());
    let r = parse_line("100 FC 3 -").unwrap().unwrap();
    assert!(r.payload.is_empty());
    let r = parse_line("100 FC 3 0aff").unwrap().unwrap();
    assert_eq!(r.payload, vec![0x0a, 0xff]);
}

#[test]
fn line_source_reads_a_textual_stream() {
    let records: Vec<Record> = dataset()
        .trace
        .records()
        .iter()
        .take(200)
        .map(to_store_record)
        .collect();
    let mut text = String::from("# header comment\n\n");
    for r in &records {
        text.push_str(&format_line(r));
        text.push('\n');
    }
    let mut source = LineSource::new(std::io::Cursor::new(text));
    let mut got = Vec::new();
    loop {
        match source.next_event().expect("event") {
            SourceEvent::Frame(r) => got.push(r),
            SourceEvent::Idle => continue,
            SourceEvent::End => break,
        }
    }
    assert_eq!(records, got);
}

#[test]
fn tcp_source_reassembles_lines_across_packets() {
    let records: Vec<Record> = dataset()
        .trace
        .records()
        .iter()
        .take(150)
        .map(to_store_record)
        .collect();
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let payload: Vec<u8> = {
        let mut text = String::new();
        for r in &records {
            text.push_str(&format_line(r));
            text.push('\n');
        }
        text.into_bytes()
    };
    let writer = std::thread::spawn(move || {
        let mut stream = std::net::TcpStream::connect(addr).expect("connect");
        // Deliberately split at awkward offsets so lines straddle reads.
        for chunk in payload.chunks(37) {
            stream.write_all(chunk).expect("write");
        }
        // The last line has no trailing newline only if the payload did;
        // closing the socket must still flush a partial line.
    });
    let (stream, _) = listener.accept().expect("accept");
    let mut source = TcpLineSource::new(stream, Duration::from_millis(50)).expect("tcp source");
    let mut got = Vec::new();
    loop {
        match source.next_event().expect("event") {
            SourceEvent::Frame(r) => got.push(r),
            SourceEvent::Idle => continue,
            SourceEvent::End => break,
        }
    }
    writer.join().expect("writer thread");
    assert_eq!(records, got);
}

#[test]
fn ingest_seals_a_store_identical_to_the_source() {
    let data = dataset();
    let records: Vec<Record> = data.trace.records().iter().map(to_store_record).collect();
    let path = temp_path("seal");
    let writer = AppendWriter::create(&path, append_options()).expect("writer");
    let stop = StopFlag::new();
    let (_, stats) = ingest(
        SimulatorSource::new(&data.trace),
        writer,
        &IngestOptions::default(),
        &stop,
    )
    .expect("ingest");
    assert_eq!(stats.frames, records.len() as u64);
    assert!(stats.sealed);
    assert!(stats.groups > 1, "micro-batching produced several groups");
    assert_eq!(stats.dropped_frames, 0);

    let mut reader = StoreReader::open(&path).expect("open sealed");
    let got = reader.read_all().expect("read_all");
    let _ = std::fs::remove_file(&path);
    assert_eq!(records.len(), got.len());
    for (a, b) in records.iter().zip(&got) {
        assert_eq!(a, b);
    }
}

#[test]
fn ingest_stops_at_max_frames_and_leaves_a_recoverable_store() {
    let data = dataset();
    let path = temp_path("maxframes");
    let writer = AppendWriter::create(&path, append_options()).expect("writer");
    let stop = StopFlag::new();
    let options = IngestOptions {
        max_frames: Some(700),
        seal: false,
        ..IngestOptions::default()
    };
    // Looped source: would stream forever without the frame cap.
    let (out, stats) = ingest(
        SimulatorSource::new(&data.trace).looped(),
        writer,
        &options,
        &stop,
    )
    .expect("ingest");
    assert!(out.is_none(), "unsealed run keeps the file appendable");
    assert_eq!(stats.frames, 700);
    assert!(!stats.sealed);

    let (mut reader, recovered) = open_recovered(&path).expect("recover");
    assert!(!recovered.sealed);
    assert_eq!(recovered.torn_bytes(), 0, "flush left no torn tail");
    let got = reader.read_all().expect("read_all");
    let _ = std::fs::remove_file(&path);
    assert_eq!(got.len(), 700);
}

#[test]
fn stop_flag_drains_gracefully() {
    let data = dataset();
    let path = temp_path("stop");
    let writer = AppendWriter::create(&path, append_options()).expect("writer");
    let stop = StopFlag::new();
    // A slow source that stops producing only when asked: loop the trace
    // and trip the flag from another thread shortly after start.
    let flag = stop.clone();
    let trip = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        flag.stop();
    });
    let (_out, stats) = ingest(
        SimulatorSource::new(&data.trace).looped(),
        writer,
        &IngestOptions {
            poll_timeout: Duration::from_millis(10),
            ..IngestOptions::default()
        },
        &stop,
    )
    .expect("ingest");
    trip.join().expect("trip thread");
    assert!(stats.sealed);
    assert!(stats.frames > 0, "ran until the stop");
    let mut reader = StoreReader::open(&path).expect("sealed store opens");
    let got = reader.read_all().expect("read_all");
    let _ = std::fs::remove_file(&path);
    assert_eq!(got.len() as u64, stats.frames);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Round trip of arbitrary synthetic records through the line format.
    fn line_format_round_trips(
        t in 0u64..u64::MAX / 2,
        mid in 0u32..1 << 29,
        bus_idx in 0usize..3,
        payload in prop::collection::vec(0u8..255, 0..16),
        proto in 0u8..4,
    ) {
        let buses = ["FC", "DC", "K-LIN"];
        let record = Record {
            timestamp_us: t,
            bus: std::sync::Arc::from(buses[bus_idx]),
            message_id: mid,
            payload,
            protocol: ivnt_store::record::protocol_from_tag(proto).expect("tag"),
        };
        let back = parse_line(&format_line(&record)).expect("parse").expect("record");
        prop_assert_eq!(record, back);
    }
}
