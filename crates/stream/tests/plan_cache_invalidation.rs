//! The planner's result cache across a live append+seal cycle.
//!
//! `ivnt-plan` keys cached extractions by `(query fingerprint, store
//! epoch)` where the epoch hashes the footer's `generation` — the number
//! of row-group flushes ever performed. The contract under test: while an
//! appendable store is unchanged, a repeated query hits the cache; the
//! moment more micro-batches land (and again when the file is sealed),
//! every cached answer is stale and the planner silently rescans,
//! producing results identical to a fresh solo session over the grown
//! store.

use std::sync::OnceLock;

use ivnt_core::pipeline::{DomainProfile, Pipeline, RunOptions};
use ivnt_core::rules::RuleSet;
use ivnt_plan::{Planner, Query, SessionMany};
use ivnt_simulator::prelude::*;
use ivnt_simulator::store::to_store_record;
use ivnt_store::{open_recovered, AppendOptions, AppendWriter, Record, StoreReader};

fn dataset() -> &'static GeneratedDataSet {
    static DATA: OnceLock<GeneratedDataSet> = OnceLock::new();
    DATA.get_or_init(|| {
        generate(&DataSetSpec::syn().with_seed(43).with_target_examples(4_000))
            .expect("generate SYN dataset")
    })
}

fn append_options() -> AppendOptions {
    AppendOptions {
        writer: ivnt_store::WriterOptions {
            chunk_rows: 64,
            chunks_per_group: 2,
            cluster: true,
        },
        // Micro-batch flushes: many small groups, many generation bumps.
        flush_rows: 96,
        flush_interval_us: 0,
    }
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "ivnt-plan-invalidation-{tag}-{}.ivns",
        std::process::id()
    ))
}

fn pipeline(network: &NetworkModel) -> Pipeline {
    Pipeline::new(RuleSet::from_network(network), DomainProfile::new("live"))
        .expect("pipeline builds")
}

fn rows_of(frame: &ivnt_frame::frame::DataFrame) -> Vec<Vec<ivnt_frame::value::Value>> {
    frame.collect_rows().expect("rows")
}

#[test]
fn cache_invalidates_across_an_append_and_seal_cycle() {
    let data = dataset();
    let records: Vec<Record> = data.trace.records().iter().map(to_store_record).collect();
    let half = records.len() / 2;
    let path = temp_path("cycle");
    let p = pipeline(&data.network);
    let mut planner = Planner::new();

    // Phase 1: half the session has landed; the file is live (unsealed).
    let mut writer = AppendWriter::create(&path, append_options()).expect("create");
    for r in &records[..half] {
        writer.append(r).expect("append");
    }
    writer.flush().expect("flush");

    let (mut reader, recovered) = open_recovered(&path).expect("recover live store");
    assert!(!recovered.sealed);
    let gen_live = reader.generation();
    assert!(
        gen_live > 1,
        "micro-batches must have flushed several groups"
    );

    let cold = Pipeline::session_many(vec![Query::new(&p)], &mut reader)
        .with_planner(&mut planner)
        .extract()
        .expect("cold extract");
    assert_eq!(cold.plan.cache_misses, 1);
    assert_eq!(planner.cached(), 1);

    // Same live snapshot, same query: answered from cache, same bytes.
    let (mut reader, _) = open_recovered(&path).expect("re-open live store");
    let warm = Pipeline::session_many(vec![Query::new(&p)], &mut reader)
        .with_planner(&mut planner)
        .extract()
        .expect("warm extract");
    assert_eq!(warm.plan.cache_hits, 1);
    assert!(warm.frames[0].stats.cache_hit);
    assert_eq!(
        rows_of(&warm.frames[0].frame),
        rows_of(&cold.frames[0].frame),
        "cache replayed different bytes"
    );

    // Phase 2: the rest of the session lands and the file is sealed. The
    // generation advances past every cached epoch.
    for r in &records[half..] {
        writer.append(r).expect("append");
    }
    let _ = writer.seal().expect("seal");

    let mut reader = StoreReader::open(&path).expect("open sealed store");
    let gen_sealed = reader.generation();
    assert!(
        gen_sealed > gen_live,
        "appending more micro-batches must advance the generation \
         ({gen_live} -> {gen_sealed})"
    );

    let fresh = Pipeline::session_many(vec![Query::new(&p)], &mut reader)
        .with_planner(&mut planner)
        .extract()
        .expect("post-seal extract");
    assert_eq!(
        fresh.plan.cache_misses, 1,
        "a grown store must not be answered from the old epoch's cache"
    );
    assert!(!fresh.frames[0].stats.cache_hit);

    // The rescan's answer equals a solo session over the sealed store —
    // and covers the full trace, not the cached half.
    let mut solo_reader = StoreReader::open(&path).expect("re-open sealed store");
    let solo = p
        .session(RunOptions::store(&mut solo_reader))
        .extract()
        .expect("solo extract");
    assert_eq!(
        rows_of(&fresh.frames[0].frame),
        rows_of(&solo.frame),
        "post-invalidation answer diverged from a fresh session"
    );
    assert!(
        fresh.frames[0].frame.num_rows() > cold.frames[0].frame.num_rows(),
        "the refreshed answer must see the appended rows"
    );

    // And the refreshed epoch caches normally again.
    let mut reader = StoreReader::open(&path).expect("open sealed store again");
    let warm = Pipeline::session_many(vec![Query::new(&p)], &mut reader)
        .with_planner(&mut planner)
        .extract()
        .expect("second warm extract");
    assert_eq!(warm.plan.cache_hits, 1);

    let _ = std::fs::remove_file(&path);
}
