//! Kernel-level carry-over proof: the incremental SWAB segmenter and the
//! SWAB + SAX symbolizer must reproduce their batch counterparts
//! bit-for-bit under arbitrary feed boundaries — including boundaries
//! landing mid-segment, single-element feeds and series shorter than one
//! buffer window.

use ivnt_series::swab::{swab, SwabConfig};
use ivnt_stream::{symbolize_batch, IncrementalSwab, IncrementalSymbolizer, SymbolizeOptions};
use proptest::prelude::*;

/// A value series with structure SWAB actually segments: piecewise trends
/// with noise, rather than i.i.d. noise that collapses to one segment.
fn series(len: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    let mut level = 0.0f64;
    let mut slope = 0.1f64;
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let r = ((state >> 33) as f64) / (u32::MAX as f64) - 0.5;
        if i % 23 == 0 {
            slope = r * 2.0;
        }
        if i % 57 == 0 {
            level = r * 40.0;
        }
        level += slope;
        out.push(level + r * 0.3);
    }
    out
}

fn chunks<'a>(values: &'a [f64], sizes: &'a [usize]) -> Vec<&'a [f64]> {
    let mut out = Vec::new();
    let mut offset = 0;
    let mut pick = 0;
    while offset < values.len() {
        let size = sizes[pick % sizes.len()].max(1);
        pick += 1;
        let end = (offset + size).min(values.len());
        out.push(&values[offset..end]);
        offset = end;
    }
    out
}

#[test]
fn single_element_feeds_match_batch_swab() {
    let values = series(300, 7);
    let cfg = SwabConfig::default();
    let expect = swab(&values, cfg);
    let mut inc = IncrementalSwab::new(cfg);
    let mut got = Vec::new();
    for v in &values {
        got.extend(inc.feed(&[*v]));
    }
    got.extend(inc.close());
    assert_eq!(expect, got);
}

#[test]
fn short_series_never_reaching_the_window_match() {
    for len in 0..12 {
        let values = series(len, 11);
        let cfg = SwabConfig {
            buffer_len: 64,
            ..SwabConfig::default()
        };
        let expect = swab(&values, cfg);
        let mut inc = IncrementalSwab::new(cfg);
        let mut got = inc.feed(&values);
        got.extend(inc.close());
        assert_eq!(expect, got, "len {len}");
    }
}

#[test]
fn boundary_exactly_on_the_buffer_multiple_matches() {
    let cfg = SwabConfig {
        buffer_len: 32,
        ..SwabConfig::default()
    };
    for len in [32, 64, 96, 33, 65] {
        let values = series(len, 3);
        let expect = swab(&values, cfg);
        let mut inc = IncrementalSwab::new(cfg);
        let mut got = Vec::new();
        for chunk in values.chunks(32) {
            got.extend(inc.feed(chunk));
        }
        got.extend(inc.close());
        assert_eq!(expect, got, "len {len}");
    }
}

proptest! {
    /// Any feed boundary placement — including mid-segment — reproduces
    /// the batch segmentation exactly.
    fn incremental_swab_matches_batch(
        len in 0usize..600,
        seed in 1u64..10_000,
        buffer_len in 4usize..80,
        max_error_tenths in 1u32..60,
        sizes in prop::collection::vec(1usize..90, 1..8),
    ) {
        let values = series(len, seed);
        let cfg = SwabConfig {
            buffer_len,
            max_error: f64::from(max_error_tenths) / 10.0,
        };
        let expect = swab(&values, cfg);
        let mut inc = IncrementalSwab::new(cfg);
        let mut got = Vec::new();
        for chunk in chunks(&values, &sizes) {
            got.extend(inc.feed(chunk));
        }
        got.extend(inc.close());
        prop_assert_eq!(expect, got);
    }

    /// The full symbolizer (SWAB + per-segment mean → SAX) is likewise
    /// boundary-invariant against its batch oracle.
    fn incremental_symbolizer_matches_batch(
        len in 0usize..500,
        seed in 1u64..10_000,
        buffer_len in 4usize..64,
        alphabet in 2usize..10,
        sizes in prop::collection::vec(1usize..70, 1..8),
    ) {
        let values = series(len, seed);
        let options = SymbolizeOptions {
            swab: SwabConfig { buffer_len, ..SwabConfig::default() },
            alphabet_size: alphabet,
        };
        let expect = symbolize_batch(&values, options);
        let mut inc = IncrementalSymbolizer::new(options);
        let mut got = Vec::new();
        for chunk in chunks(&values, &sizes) {
            got.extend(inc.feed(chunk));
        }
        got.extend(inc.close());
        prop_assert_eq!(expect, got);
    }
}
