//! Presence-conditional SOME/IP extraction: the ADAS object-list service
//! publishes payloads whose fields appear/disappear with a presence mask,
//! so byte offsets shift between instances (paper Sec. 3.2).
//!
//! ```sh
//! cargo run --example adas_someip
//! ```

use ivnt::core::prelude::*;
use ivnt::core::represent::render_state_table;
use ivnt::simulator::adas::{generate_object_trace, object_list};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = object_list()?;
    let trace = generate_object_trace(&model, 60.0, 11)?;
    println!(
        "object-list trace: {} SOME/IP messages, payload sizes vary: {:?}",
        trace.len(),
        {
            let mut sizes: Vec<usize> = trace.iter().map(|r| r.payload.len()).collect();
            sizes.sort_unstable();
            sizes.dedup();
            sizes
        }
    );

    // One conditional rule per optional field.
    let mut u_rel = RuleSet::new();
    for (field, spec) in model.field_specs.iter().enumerate() {
        u_rel.push_optional_field(
            &model.bus,
            model.message_id,
            model.layout.clone(),
            field,
            spec.clone(),
            Some(model.period_ms as f64 / 1e3),
        );
    }

    let output = Pipeline::new(u_rel, DomainProfile::new("adas"))?
        .session(RunOptions::trace(&trace))
        .run()?;
    for s in &output.signals {
        println!(
            "{:>14}: {} instances extracted (branch {}), covering {:.0}% of cycles",
            s.signal,
            s.rows_interpreted,
            s.classification.branch,
            100.0 * s.rows_interpreted as f64 / trace.len() as f64,
        );
    }

    println!("\nobject state over time (first 15 rows):");
    println!("{}", render_state_table(&output.state, 15)?);
    Ok(())
}
