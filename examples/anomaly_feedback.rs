//! The paper's feedback loop (Sec. 4.4, last bullet): anomalies detected on
//! one run are automatically transformed into extension rules `w` that flag
//! similar anomalies in every further run.
//!
//! ```sh
//! cargo run --example anomaly_feedback
//! ```

use ivnt::analysis::anomaly::AnomalyConfig;
use ivnt::analysis::feedback::learn_extensions;
use ivnt::core::prelude::*;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn vehicle() -> Result<NetworkModel, Box<dyn std::error::Error>> {
    let mut n = NetworkModel::new(ivnt::protocol::Catalog::new());
    n.add_function(functions::wiper()?)?;
    n.auto_senders();
    Ok(n)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = vehicle()?;
    let u_rel = RuleSet::from_network(&network);

    // Run 1: a fault forces the wiper status to "invalid" once.
    let faults = FaultPlan::new().with(Fault::ForcedLabel {
        signal: "wstat".into(),
        at_s: 60.0,
        duration_s: 0.5,
        label: "invalid".into(),
    });
    let run1 = network.simulate(300.0, 1, &faults)?;
    let profile1 = DomainProfile::new("run1").with_signals(["wstat"]);
    let out1 = Pipeline::new(u_rel.clone(), profile1)?
        .session(RunOptions::trace(&run1))
        .run()?;

    // Learn: rare wstat values become extension rules.
    let learned = learn_extensions(
        &out1.state,
        "wstat",
        &AnomalyConfig {
            max_frequency: 0.2,
            top_k: 3,
        },
    )?;
    println!(
        "run 1 found {} anomalous value(s); learned extensions:",
        learned.len()
    );
    for rule in &learned {
        println!("  {} (watching signal {})", rule.alias(), rule.signal());
    }

    // Run 2: a different journey with the same kind of fault. The learned
    // extension flags it automatically.
    let faults2 = FaultPlan::new().with(Fault::ForcedLabel {
        signal: "wstat".into(),
        at_s: 120.0,
        duration_s: 0.5,
        label: "invalid".into(),
    });
    let run2 = network.simulate(300.0, 2, &faults2)?;
    let mut profile2 = DomainProfile::new("run2").with_signals(["wstat"]);
    for rule in learned {
        profile2 = profile2.with_extension(rule);
    }
    let out2 = Pipeline::new(u_rel, profile2)?
        .session(RunOptions::trace(&run2))
        .run()?;

    println!("\nrun 2 extension hits:");
    for row in out2.extensions.collect_rows()? {
        println!(
            "  {} fired at t={:.1}s",
            row[1].as_str().unwrap_or("?"),
            row[0].as_float().unwrap_or(f64::NAN),
        );
    }
    assert!(out2.extensions.num_rows() >= 1);
    println!("\nthe anomaly learned on run 1 was re-detected on run 2 automatically.");
    Ok(())
}
