//! A phased journey (city → highway → parking) through branch α: SWAB
//! segments and SAX symbols recover the journey's phase structure from the
//! raw speed trace.
//!
//! ```sh
//! cargo run --example driving_profile
//! ```

use ivnt::core::prelude::*;
use ivnt::protocol::{Catalog, MessageSpec, Protocol, SignalSpec};
use ivnt::simulator::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut catalog = Catalog::new();
    catalog.add_message(
        MessageSpec::builder(80, "Dynamics", "PT", Protocol::Can)
            .dlc(2)
            .cycle_time_ms(50)
            .signal(
                SignalSpec::builder("speed", 0, 16)
                    .factor(0.01)
                    .unit("km/h")
                    .build()?,
            )
            .build()?,
    )?;
    let mut network = NetworkModel::new(catalog);
    network.set_behavior(
        "speed",
        Behavior::Phased {
            phases: vec![
                // City: low speed, jittery.
                (
                    20.0,
                    Behavior::RandomWalk {
                        start: 30.0,
                        step: 0.6,
                        min: 0.0,
                        max: 60.0,
                    },
                ),
                // Highway: high speed, smooth.
                (
                    20.0,
                    Behavior::RandomWalk {
                        start: 120.0,
                        step: 0.3,
                        min: 100.0,
                        max: 140.0,
                    },
                ),
                // Parking: standstill.
                (
                    10.0,
                    Behavior::Constant(ivnt::protocol::PhysicalValue::Num(0.0)),
                ),
            ],
        },
    );
    network.auto_senders();
    let trace = network.simulate(50.0, 13, &FaultPlan::new())?;

    let output = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("journey").with_signals(["speed"]),
    )?
    .session(RunOptions::trace(&trace))
    .run()?;

    // Show the dominant SAX symbol per 5-second window: the phase structure
    // must be visible as low -> high -> low symbols.
    let speed = output.signal("speed").expect("speed processed");
    let times = speed.frame.column_values("t")?;
    let symbols = speed.frame.column_values("symbol")?;
    println!("dominant symbol per 5 s window (SAX alphabet a..e):");
    for window in 0..10 {
        let lo = window as f64 * 5.0;
        let hi = lo + 5.0;
        let mut counts: std::collections::BTreeMap<String, usize> = Default::default();
        for (t, s) in times.iter().zip(&symbols) {
            let (Some(t), Some(s)) = (t.as_float(), s.as_str()) else {
                continue;
            };
            if t >= lo && t < hi {
                *counts.entry(s.to_string()).or_default() += 1;
            }
        }
        let dominant = counts
            .iter()
            .max_by_key(|(_, &n)| n)
            .map(|(s, _)| s.clone())
            .unwrap_or_else(|| "-".into());
        println!("  {lo:>4.0}-{hi:<4.0}s: {dominant}");
    }
    println!(
        "\n{} instances kept of {} interpreted; branch {}",
        speed.rows_reduced, speed.rows_interpreted, speed.classification.branch
    );
    Ok(())
}
