//! Fault diagnosis workflow: plant cycle-time violations and outliers,
//! preprocess the trace, and isolate the faults via extensions, rare
//! transitions and association rules (Sec. 4.4 applications).
//!
//! ```sh
//! cargo run --example fault_diagnosis
//! ```

use ivnt::analysis::anomaly::{rare_values, AnomalyConfig};
use ivnt::analysis::apriori::{mine_rules, transactions_from_state, AprioriConfig};
use ivnt::analysis::transition::TransitionGraph;
use ivnt::core::prelude::*;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut network = NetworkModel::new(ivnt::protocol::Catalog::new());
    network.add_function(functions::wiper()?)?;
    network.add_function(functions::body()?)?;
    network.auto_senders();

    // Plant two faults: the wiper message skips cycles around t = 20 s and
    // the wiper status reports "invalid" around t = 40 s.
    let faults = FaultPlan::new()
        .with(Fault::CycleViolation {
            bus: "FC".into(),
            message_id: 3,
            from_s: 20.0,
            to_s: 21.5,
        })
        .with(Fault::ForcedLabel {
            signal: "wstat".into(),
            at_s: 40.0,
            duration_s: 1.0,
            label: "invalid".into(),
        });
    let trace = network.simulate(60.0, 99, &faults)?;

    // Domain profile: keep changes AND cycle gaps; extend with the
    // expected-cycle-time check the paper proposes.
    let u_rel = RuleSet::from_network(&network);
    let profile = DomainProfile::new("fault-hunt")
        .with_signals(["wpos", "wstat", "state", "belt"])
        .with_constraints(vec![Constraint::global(vec![
            ConditionFn::ValueChanged,
            ConditionFn::GapExceeds { max_gap_s: 0.5 },
        ])])
        .with_extension(ExtensionRule::CycleViolation {
            signal: "wpos".into(),
            expected_cycle_s: 0.1,
            factor: 3.0,
            alias: "wposCycleViolation".into(),
        });
    let output = Pipeline::new(u_rel, profile)?
        .session(RunOptions::trace(&trace))
        .run()?;

    // 1. Cycle violations surface as extension elements.
    println!(
        "cycle-violation extension fired {} time(s):",
        output.extensions.num_rows()
    );
    for row in output.extensions.collect_rows()? {
        println!(
            "  t={:.2}s gap={:.3}s",
            row[0].as_float().unwrap_or(f64::NAN),
            row[3].as_float().unwrap_or(f64::NAN)
        );
    }

    // 2. The forced "invalid" label shows up as a rare value.
    let anomalies = rare_values(
        &output.state,
        "wstat",
        &AnomalyConfig {
            max_frequency: 0.05,
            top_k: 5,
        },
    )?;
    println!("\nrare wstat values:");
    for a in &anomalies {
        println!(
            "  {:?} x{} (severity {:.2}, first at t={:.1}s)",
            a.label, a.count, a.severity, a.first_t
        );
    }

    // 3. Transition graph: transitions into "invalid" are rare.
    let graph = TransitionGraph::from_column(&output.state, "wstat")?;
    println!("\nrarest wstat transitions:");
    for t in graph.rare_transitions().iter().take(3) {
        println!("  {} -> {} (x{})", t.from, t.to, t.count);
    }

    // 4. Association rules over the state rows.
    let transactions = transactions_from_state(&output.state)?;
    let rules = mine_rules(
        &transactions,
        &AprioriConfig {
            min_support: 0.2,
            min_confidence: 0.9,
            max_len: 2,
        },
    )?;
    println!("\ntop association rules:");
    for r in rules.iter().take(5) {
        println!("  {r}");
    }
    Ok(())
}
