//! Fleet-scale reduction: preprocess several journeys of the SYN data set,
//! report the lossless reduction the paper exploits (cyclic repeats,
//! gateway duplicates), and compare against the sequential in-house tool.
//!
//! ```sh
//! cargo run --release --example fleet_reduction
//! ```

use std::time::Instant;

use ivnt::baseline::SequentialAnalyzer;
use ivnt::core::prelude::*;
use ivnt::simulator::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Three journeys of the paper's SYN data-set shape, ~20k records each.
    let spec = DataSetSpec::syn().with_target_examples(20_000);
    let journeys = journeys(&spec, 3)?;
    println!(
        "generated {} journeys x ~{} records ({} signal types)",
        journeys.len(),
        journeys[0].trace.len(),
        spec.total_signals()
    );

    // A domain never analyzes everything: this one inspects the three
    // slow state signals (Table 6's few-signal regime, where preselection
    // pays off most).
    let network = &journeys[0].network;
    let u_rel = RuleSet::from_network(network);
    let signals = journeys[0].signal_names();
    let selected: Vec<&str> = signals.iter().rev().take(3).map(String::as_str).collect();
    let profile = DomainProfile::new("fleet").with_signals(selected.clone());
    let pipeline = Pipeline::new(u_rel, profile)?;

    let mut total_raw = 0usize;
    let mut total_interpreted = 0usize;
    let mut total_reduced = 0usize;
    let started = Instant::now();
    for (i, journey) in journeys.iter().enumerate() {
        let reduced = pipeline
            .session(RunOptions::trace(&journey.trace))
            .extract_reduced()?;
        let interpreted: usize = reduced.iter().map(|(_, _, n)| n).sum();
        let kept: usize = reduced.iter().map(|(s, _, _)| s.len()).sum();
        let dedup_covered: usize = reduced.iter().map(|(_, d, _)| d.corresponding.len()).sum();
        println!(
            "journey {i}: {} raw records -> {} interpreted (representative) -> {} kept \
             ({:.1}% reduction; {} gateway channels covered by dedup)",
            journey.trace.len(),
            interpreted,
            kept,
            100.0 * (1.0 - kept as f64 / interpreted.max(1) as f64),
            dedup_covered,
        );
        total_raw += journey.trace.len();
        total_interpreted += interpreted;
        total_reduced += kept;
    }
    let proposed_time = started.elapsed();
    println!(
        "\nproposed pipeline: {} -> {} -> {} rows in {:.2?}",
        total_raw, total_interpreted, total_reduced, proposed_time
    );

    // The in-house comparator must ingest-and-interpret everything.
    let started = Instant::now();
    let mut baseline_rows = 0usize;
    for journey in &journeys {
        let tool = SequentialAnalyzer::new(journey.network.clone());
        baseline_rows += tool.extract_signals(&journey.trace, &selected);
    }
    let baseline_time = started.elapsed();
    println!(
        "in-house tool:     {} extracted rows in {:.2?} -> proposed is {:.2}x faster",
        baseline_rows,
        baseline_time,
        baseline_time.as_secs_f64() / proposed_time.as_secs_f64().max(1e-9),
    );
    println!("(the in-house tool must always interpret every signal of every message)");
    Ok(())
}
