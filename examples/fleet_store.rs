//! Fleet workflow over the trace repository (paper Fig. 1): record several
//! vehicles' journeys into the store, then run one domain's pipeline over
//! every stored journey and aggregate a fleet-level report.
//!
//! ```sh
//! cargo run --release --example fleet_store
//! ```

use ivnt::analysis::report::{render_report, ReportConfig};
use ivnt::core::prelude::*;
use ivnt::simulator::prelude::*;
use ivnt::simulator::store::TraceStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let root = std::env::temp_dir().join(format!("ivnt-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let mut store = TraceStore::open(&root)?;

    // Record: three vehicles, one journey each; vehicle 2 has a planted
    // sensor fault (an implausible spike on its first fast signal).
    let spec = DataSetSpec::syn().with_target_examples(12_000);
    for vehicle in 0..3u64 {
        let data = generate(&spec.clone().with_seed(1000 + vehicle))?;
        let trace = if vehicle == 2 {
            let faults = FaultPlan::new().with(Fault::OutlierSpike {
                signal: "syn_s0000".into(),
                at_s: 8.0,
                duration_s: 0.05,
                value: 6000.0,
            });
            data.network
                .simulate(data.trace.duration_s(), data.spec.seed, &faults)?
        } else {
            data.trace
        };
        store.add_journey(&format!("vehicle-{vehicle}-monday"), &trace)?;
    }
    println!("store at {}:", root.display());
    for j in store.journeys() {
        println!(
            "  {}: {} records, {:.1} s ({})",
            j.name, j.records, j.duration_s, j.file
        );
    }

    // Analyze off-board: the same one-time parameterization over every
    // journey in the repository.
    let reference = generate(&spec.clone().with_seed(1000))?;
    let mut u_rel = RuleSet::from_network(&reference.network);
    for (signal, (_, comparable)) in &reference.signal_classes {
        let _ = u_rel.set_comparable(signal, *comparable);
    }
    // Spikes on smooth fast signals are *local* outliers: use the Hampel
    // detector (rolling median) rather than the global z-score.
    // The fleet domain watches the six fast dynamics signals.
    let mut profile =
        DomainProfile::new("fleet-domain").with_signals((0..6).map(|i| format!("syn_s{i:04}")));
    profile.branch.outlier = OutlierMethod::Hampel {
        window: 9,
        n_sigmas: 10.0,
    };
    let pipeline = Pipeline::new(u_rel, profile)?;

    let mut fleet_outliers = 0usize;
    for j in store.journeys().to_vec() {
        let trace = store.load(&j.name)?;
        let output = pipeline.session(RunOptions::trace(&trace)).run()?;
        let outliers = output.outlier_count()?;
        fleet_outliers += outliers;
        println!(
            "\n{}: {} signals, {} state rows, {} outliers",
            j.name,
            output.signals.len(),
            output.state.num_rows(),
            outliers
        );
        if outliers > 0 {
            let md = render_report(&j.name, &output, &ReportConfig::default())?;
            let path = root.join(format!("{}.report.md", j.name));
            std::fs::write(&path, md)?;
            println!("  report written to {}", path.display());
        }
    }
    println!("\nfleet total: {fleet_outliers} outlier instances across 3 journeys");
    let _ = std::fs::remove_dir_all(&root);
    Ok(())
}
