//! Reproduces the paper's Table 4: the state representation of the lights
//! function combined with driving speed, including an injected speed
//! outlier (`outlier v = 800`).
//!
//! ```sh
//! cargo run --example lights_state
//! ```

use ivnt::analysis::diagnosis::{diagnose_outliers, render_report};
use ivnt::core::prelude::*;
use ivnt::core::represent::render_state_table;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The lights function plus the drivetrain (for the speed column).
    let mut network = NetworkModel::new(ivnt::protocol::Catalog::new());
    network.add_function(functions::lights()?)?;
    network.add_function(functions::drivetrain()?)?;
    network.auto_senders();

    // Plant the outlier the paper's Table 4 shows at t = 22 s.
    let faults = FaultPlan::new().with(Fault::OutlierSpike {
        signal: "speed".into(),
        at_s: 22.0,
        duration_s: 0.05,
        value: 650.0,
    });
    let trace = network.simulate(30.0, 7, &faults)?;
    println!("trace: {} messages", trace.len());

    // The lights domain: control/state signals plus the vehicle speed.
    let u_rel = RuleSet::from_network(&network);
    let profile = DomainProfile::new("lights-domain").with_signals([
        "headlight",
        "levercontrol",
        "speed",
        "indicatorlight",
        "lightswitch",
    ]);
    let output = Pipeline::new(u_rel, profile)?
        .session(RunOptions::trace(&trace))
        .run()?;

    println!("\nstate representation of the lights function (cf. paper Table 4):");
    println!("{}", render_state_table(&output.state, 25)?);

    // The outlier is discovered automatically, with its prior state chain.
    let reports = diagnose_outliers(&output.state, 3)?;
    println!("{} outlier event(s) discovered", reports.len());
    if let Some(first) = reports.first() {
        println!("\n{}", render_report(first));
    }
    Ok(())
}
