//! The paper's core motivation: multiple domains analyze the *same* trace
//! in terms of different aspects. Each domain parameterizes the framework
//! once (signals, constraints, extensions) and gets its own targeted
//! representation — no manual loading/filtering/merging.
//!
//! ```sh
//! cargo run --example multi_domain
//! ```

use ivnt::core::prelude::*;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One vehicle, one recording.
    let mut network = NetworkModel::new(ivnt::protocol::Catalog::new());
    for f in [
        functions::wiper()?,
        functions::lights()?,
        functions::drivetrain()?,
        functions::body()?,
        functions::climate()?,
        functions::camera()?,
    ] {
        network.add_function(f)?;
    }
    network.auto_senders();
    let trace = network.simulate(30.0, 77, &FaultPlan::new())?;
    println!(
        "one recording: {} messages, {} signal types across {} channels\n",
        trace.len(),
        network.catalog().num_signals(),
        network.catalog().buses().len()
    );
    let u_rel = RuleSet::from_network(&network);

    // Domain 1 — function specialist (paper intro): wiper behaviour, with a
    // cycle-time extension to hunt timing faults.
    let wiper_domain = DomainProfile::new("function-specialist:wiper")
        .with_signals(["wpos", "wvel", "wstat"])
        .with_extension(ExtensionRule::CycleViolation {
            signal: "wpos".into(),
            expected_cycle_s: 0.1,
            factor: 3.0,
            alias: "wposCycleViolation".into(),
        });

    // Domain 2 — communication analyst (paper intro): channel-level view,
    // keeping every instance (no reduction) to study timing/jitter.
    let comm_domain = DomainProfile::new("communication-analyst")
        .with_signals(["alive", "speed"])
        .with_constraints(vec![]) // keep everything
        .with_extension(ExtensionRule::Gap {
            signal: "alive".into(),
            alias: "aliveGap".into(),
        });

    // Domain 3 — comfort/body domain: slow state signals, coarse cluster
    // reduction is enough.
    let body_domain = DomainProfile::new("body-domain")
        .with_signals(["state", "belt", "door_fl", "heat", "temp_inside"])
        .with_reduction(Reduction::Cluster {
            k: 6,
            max_iterations: 25,
        });

    for profile in [wiper_domain, comm_domain, body_domain] {
        let name = profile.name.clone();
        let output = Pipeline::new(u_rel.clone(), profile)?
            .session(RunOptions::trace(&trace))
            .run()?;
        let interpreted: usize = output.signals.iter().map(|s| s.rows_interpreted).sum();
        let kept: usize = output.signals.iter().map(|s| s.rows_reduced).sum();
        println!("domain {name}:");
        println!(
            "  {} signals, {} -> {} instances ({:.0}% kept), {} extension elements, {} state columns",
            output.signals.len(),
            interpreted,
            kept,
            100.0 * kept as f64 / interpreted.max(1) as f64,
            output.extensions.num_rows(),
            output.state.schema().len() - 1,
        );
        for s in &output.signals {
            println!(
                "    {:<12} {:>7} rows  branch {}",
                s.signal, s.rows_reduced, s.classification.branch
            );
        }
        println!();
    }
    println!("each domain received its own targeted representation from the same raw trace.");
    Ok(())
}
