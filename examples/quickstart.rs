//! Quickstart: record a trace from a simulated vehicle and preprocess it
//! with the paper's pipeline.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ivnt::core::prelude::*;
use ivnt::core::represent::render_state_table;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a vehicle: a wiper function on FA-CAN / LIN / SOME-IP.
    let mut network = NetworkModel::new(ivnt::protocol::Catalog::new());
    network.add_function(functions::wiper()?)?;
    network.auto_senders();

    // 2. Record 10 seconds of driving (the on-board monitoring device).
    let trace = network.simulate(10.0, 42, &FaultPlan::new())?;
    println!(
        "recorded trace: {} messages over {:.1} s on {} channels",
        trace.len(),
        trace.duration_s(),
        network.catalog().buses().len(),
    );

    // 3. One-time parameterization: the wiper domain inspects two signals.
    let u_rel = RuleSet::from_network(&network);
    println!("U_rel holds {} interpretation rules", u_rel.len());
    let profile = DomainProfile::new("wiper-domain").with_signals(["wpos", "wvel"]);

    // 4. Run Algorithm 1 end to end.
    let pipeline = Pipeline::new(u_rel, profile)?;
    let output = pipeline.session(RunOptions::trace(&trace)).run()?;

    for s in &output.signals {
        println!(
            "signal {:>5}: branch {}, {} -> {} rows after reduction ({} outliers flagged)",
            s.signal,
            s.classification.branch,
            s.rows_interpreted,
            s.rows_reduced,
            s.frame
                .column_values("outlier")?
                .iter()
                .filter(|v| v.as_bool() == Some(true))
                .count(),
        );
    }

    // 5. Inspect the homogeneous state representation (paper Table 4).
    println!("\nstate representation (first 12 rows):");
    println!("{}", render_state_table(&output.state, 12)?);
    Ok(())
}
