#!/usr/bin/env bash
# Measures the growth-seed implementation (the commit this PR series starts
# from) on the current machine and workload, writing BENCH_seed.json at the
# repo root. speed_probe merges that file into BENCH_interpret.json so the
# before/after interpretation-throughput comparison is apples-to-apples:
# same machine, same vendored RNG (hence a bit-identical trace), same probe.
#
# The seed declared registry dependencies (crossbeam, parking_lot, rand, …)
# that are unavailable offline; this script checks the seed out into a
# throwaway worktree and points those at the vendored stand-ins, adding the
# two shims (scripts/seed_baseline/{crossbeam,parking_lot}) the seed's
# executor needs.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

SEED_COMMIT=1e621dd915817aa6fcaaab328de402350bcfcfc3
WORKTREE=.seedbench

git worktree remove --force "$WORKTREE" 2>/dev/null || true
git worktree add --detach "$WORKTREE" "$SEED_COMMIT"
trap 'git worktree remove --force "$WORKTREE"' EXIT

cp -r vendored "$WORKTREE"/vendored
cp -r scripts/seed_baseline/crossbeam "$WORKTREE"/vendored/crossbeam
cp -r scripts/seed_baseline/parking_lot "$WORKTREE"/vendored/parking_lot
cp scripts/seed_baseline/seed_probe.rs "$WORKTREE"/crates/bench/src/bin/seed_probe.rs

# Rewrites one full line of the seed's Cargo.toml to a vendored path dep.
patch_line() {
    local from=$1 to=$2
    grep -qxF "$from" "$WORKTREE"/Cargo.toml || {
        echo "seed Cargo.toml lacks expected line: $from" >&2
        exit 1
    }
    python3 - "$WORKTREE"/Cargo.toml "$from" "$to" <<'EOF'
import sys
path, old, new = sys.argv[1:]
text = open(path).read()
open(path, "w").write(text.replace(old + "\n", new + "\n", 1))
EOF
}
patch_line 'members = ["crates/*"]' 'members = ["crates/*", "vendored/*"]'
patch_line 'rand = "0.8"' 'rand = { path = "vendored/rand" }'
patch_line 'proptest = "1"' 'proptest = { path = "vendored/proptest" }'
patch_line 'criterion = "0.5"' 'criterion = { path = "vendored/criterion" }'
patch_line 'crossbeam = "0.8"' 'crossbeam = { path = "vendored/crossbeam" }'
patch_line 'parking_lot = "0.12"' 'parking_lot = { path = "vendored/parking_lot" }'
patch_line 'bytes = "1"' 'bytes = { path = "vendored/bytes" }'
patch_line 'serde = { version = "1", features = ["derive"] }' \
    'serde = { path = "vendored/serde", features = ["derive"] }'

(cd "$WORKTREE" && cargo build --release -p ivnt-bench --bin seed_probe)
(cd "$WORKTREE" && ./target/release/seed_probe)
mv "$WORKTREE"/BENCH_seed.json BENCH_seed.json
echo "wrote $(pwd)/BENCH_seed.json"
