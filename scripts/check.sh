#!/usr/bin/env bash
# Local twin of .github/workflows/ci.yml, plus the tier-1 gate from
# ROADMAP.md. Run before pushing.
set -euo pipefail
cd "$(git rev-parse --show-toplevel)"

echo "==> cargo fmt --all -- --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tier-1: cargo build --release && cargo test -q"
cargo build --release
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> store_probe smoke (zone-map pushdown gate)"
# Small workload; fails if chunk skipping degenerates below the gate.
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_STORE_MIN_SKIP="${IVNT_STORE_MIN_SKIP:-0.5}" \
  cargo run --release -q -p ivnt-bench --bin store_probe

echo "==> cluster_scale smoke (distributed bit-identity + speedup + wire compression gates)"
# 1 vs N subprocess workers; every run is checked bit-identical to the
# single-process extraction, N workers must not lose to 1 (and must beat
# the single process when the machine has the cores — both speed gates
# are report-only when cores < workers), compressed v3 result streaming
# must shrink wire bytes by IVNT_CLUSTER_MIN_WIRE_RATIO (always enforced),
# and a straggler-slowed worker plus a coordinator restart from its
# checkpoint are exercised inline, both asserted bit-identical.
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_CLUSTER_MIN_SPEEDUP="${IVNT_CLUSTER_MIN_SPEEDUP:-1.0}" \
IVNT_CLUSTER_MIN_SP_SPEEDUP="${IVNT_CLUSTER_MIN_SP_SPEEDUP:-1.0}" \
IVNT_CLUSTER_MIN_WIRE_RATIO="${IVNT_CLUSTER_MIN_WIRE_RATIO:-3.0}" \
  cargo run --release -q -p ivnt-bench --bin cluster_scale

echo "==> coordinator-restart smoke (checkpointed resume, bit-identity)"
# The restart fault is also covered inside cluster_scale; this runs the
# dedicated integration tests so the smoke stays meaningful even when
# someone trims the bench.
cargo test --release -q -p ivnt-cluster --test cluster_restart

echo "==> speed_probe smoke (vectorized interpret kernel gate)"
# The batch-columnar interpret kernel must beat the retained scalar fused
# path; bit-identity of all three interpretation paths is asserted inline.
# Core-aware: on machines with fewer cores than partitions the gate relaxes
# to parity inside the probe.
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_INTERPRET_MIN_SPEEDUP="${IVNT_INTERPRET_MIN_SPEEDUP:-1.2}" \
  cargo run --release -q -p ivnt-bench --bin speed_probe

echo "==> pipeline_e2e smoke (parallel bit-identity + SWAB kernel + obs overhead gates)"
# Serial vs parallel Algorithm 1; every parallel run is checked
# bit-identical to the serial reference, the heap SWAB kernel must beat the
# naive O(n²) reference, and (when BENCH_seed.json is present, on a machine
# with cores >= workers) the end-to-end time must beat the seed baseline
# while the disabled-subscriber obs hooks stay within IVNT_OBS_MAX_OVERHEAD
# of it (report-only when cores < workers, like the speedup gate).
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_SWAB_MIN_SPEEDUP="${IVNT_SWAB_MIN_SPEEDUP:-1.0}" \
IVNT_PIPELINE_MIN_SPEEDUP="${IVNT_PIPELINE_MIN_SPEEDUP:-1.0}" \
IVNT_OBS_MAX_OVERHEAD="${IVNT_OBS_MAX_OVERHEAD:-0.02}" \
  cargo run --release -q -p ivnt-bench --bin pipeline_e2e

echo "==> stream_ingest smoke (streaming bit-identity + kill-mid-stream recovery + throughput gate)"
# Live ingest into the appendable store, the incremental pipeline checked
# bit-identical to the batch path, a kill-mid-stream child asserted
# recoverable, and sustained ingest gated at IVNT_STREAM_MIN_THROUGHPUT.
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_STREAM_MIN_THROUGHPUT="${IVNT_STREAM_MIN_THROUGHPUT:-10000}" \
  cargo run --release -q -p ivnt-bench --bin stream_ingest

echo "==> plan_probe smoke (multi-query shared-scan bit-identity + speedup gate)"
# N concurrent domains from one shared store pass; every shared answer is
# checked bit-identical to its solo session inline, and 4 shared domains
# must beat 4 sequential sessions by IVNT_PLAN_MIN_SPEEDUP on one core.
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_PLAN_MIN_SPEEDUP="${IVNT_PLAN_MIN_SPEEDUP:-1.5}" \
  cargo run --release -q -p ivnt-bench --bin plan_probe

echo "==> deprecated-entry-point check (in-repo code must use the session API)"
# `clippy -D warnings --all-targets` above already fails the build on any
# call to a deprecated Pipeline method; this grep keeps the intent visible
# and catches `#[allow(deprecated)]` escapes outside the two sanctioned
# sites (the shims themselves and their bit-identity tests).
if grep -rn "allow(deprecated)" --include="*.rs" crates src tests examples scripts \
    | grep -v "crates/core/src/pipeline.rs" \
    | grep -v "tests/session_api.rs"; then
  echo "error: allow(deprecated) outside crates/core/src/pipeline.rs / tests/session_api.rs" >&2
  exit 1
fi

echo "==> infer_probe smoke (DBC-less boundary recovery F1 + merged bit-identity gates)"
# Two-pass inference over the store for all three scenarios, scored
# against simulator ground truth; the worst per-scenario F1 must clear
# IVNT_INFER_MIN_F1, and the merged (authored ∪ inferred) catalog run is
# asserted bit-identical to the authored run inline.
IVNT_BENCH_SCALE="${IVNT_BENCH_SCALE:-0.25}" \
IVNT_INFER_MIN_F1="${IVNT_INFER_MIN_F1:-0.85}" \
  cargo run --release -q -p ivnt-bench --bin infer_probe

echo "all checks passed"
