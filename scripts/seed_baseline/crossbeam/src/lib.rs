//! Offline stand-in for `crossbeam`: just `scope`, over `std::thread::scope`.

pub mod thread {
    pub struct Scope<'scope, 'env: 'scope>(&'scope std::thread::Scope<'scope, 'env>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.0;
            self.0.spawn(move || f(&Scope(inner)))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope(s))))
    }
}

pub use thread::scope;
