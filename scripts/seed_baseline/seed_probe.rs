//! Seed-implementation twin of `speed_probe`: same workload, same stages,
//! measured against the seed's operators. Writes `BENCH_seed.json`, which
//! the main tree's `speed_probe` merges into `BENCH_interpret.json` for the
//! before/after comparison.

use std::time::Instant;

use ivnt_bench::{covered_fraction, scale, select_signals_for_fraction, u_rel_with_hints};
use ivnt_core::interpret::{interpret, preselect};
use ivnt_core::prelude::*;
use ivnt_core::tabular::trace_to_frame;

fn median_secs(runs: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let target = (120_000.0 * scale()) as usize;
    let runs = 5;
    let data = ivnt_bench::vehicle_journey(target, 0)?;
    let trace_rows = data.trace.len();
    let u_rel = u_rel_with_hints(&data);
    let signals = select_signals_for_fraction(&data, 9, 0.027);
    let fraction = covered_fraction(&data, &signals);
    let selected: Vec<&str> = signals.iter().map(String::as_str).collect();
    let u_comb = u_rel.select(&selected)?;
    let partitions = ivnt_frame::exec::default_workers();
    let raw = trace_to_frame(&data.trace, partitions)?;

    eprintln!(
        "seed workload: {trace_rows} rows, 9/{} signals ({:.1}% of traffic), \
         {partitions} partitions",
        u_rel.len(),
        fraction * 100.0
    );

    let mut results: Vec<(&str, f64, usize)> = Vec::new();

    let pre = preselect(&raw, &u_comb)?;
    let secs = median_secs(runs, || {
        preselect(&raw, &u_comb).expect("preselect");
    });
    results.push(("seed_preselect", secs, pre.num_rows()));

    let interpreted = interpret(&pre, &u_comb)?;
    let secs = median_secs(runs, || {
        let pre = preselect(&raw, &u_comb).expect("preselect");
        interpret(&pre, &u_comb).expect("interpret");
    });
    results.push(("seed_interpret", secs, interpreted.num_rows()));

    let profile = DomainProfile::new("table6").with_signals(selected.clone());
    let pipeline = Pipeline::new(u_rel.clone(), profile)?;
    let kept: usize = pipeline
        .session(RunOptions::trace(&data.trace)).extract_reduced()?
        .iter()
        .map(|(s, _, _)| s.len())
        .sum();
    let secs = median_secs(runs, || {
        pipeline.session(RunOptions::trace(&data.trace)).extract_reduced().expect("extract_reduced");
    });
    results.push(("seed_table6_9_signals", secs, kept));

    // Full Algorithm 1 — the end-to-end baseline `pipeline_e2e` compares
    // the parallel branch pipeline against.
    let state_rows = pipeline.session(RunOptions::trace(&data.trace)).run()?.state.num_rows();
    let secs = median_secs(runs, || {
        pipeline.session(RunOptions::trace(&data.trace)).run().expect("run");
    });
    results.push(("seed_pipeline_e2e", secs, state_rows));

    let entries: Vec<String> = results
        .iter()
        .map(|(name, secs, rows_out)| {
            format!(
                concat!(
                    "    {{\n",
                    "      \"name\": \"{}\",\n",
                    "      \"seconds\": {:.6},\n",
                    "      \"rows_in\": {},\n",
                    "      \"rows_out\": {},\n",
                    "      \"rows_per_sec\": {:.1}\n",
                    "    }}"
                ),
                name,
                secs,
                trace_rows,
                rows_out,
                trace_rows as f64 / secs
            )
        })
        .collect();
    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": {{\n",
            "    \"trace_rows\": {},\n",
            "    \"signals_selected\": 9,\n",
            "    \"signals_total\": {},\n",
            "    \"traffic_fraction\": {:.4},\n",
            "    \"partitions\": {},\n",
            "    \"runs\": {}\n",
            "  }},\n",
            "  \"measurements\": [\n{}\n  ]\n",
            "}}\n"
        ),
        trace_rows,
        u_rel.len(),
        fraction,
        partitions,
        runs,
        entries.join(",\n"),
    );
    std::fs::write("BENCH_seed.json", &json)?;

    for (name, secs, rows_out) in &results {
        println!(
            "{:<22} {:>9.1} ms  {:>12.0} rows/s  ({} -> {} rows)",
            name,
            secs * 1e3,
            trace_rows as f64 / secs,
            trace_rows,
            rows_out
        );
    }
    println!("wrote BENCH_seed.json");
    Ok(())
}
