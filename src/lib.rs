//! # ivnt — automated interpretation and reduction of in-vehicle network traces
//!
//! Umbrella crate of the DAC'18 reproduction *"Automated Interpretation and
//! Reduction of In-Vehicle Network Traces at a Large Scale"* (Mrowca,
//! Pramsohler, Steinhorst, Baumgarten). It re-exports the workspace crates
//! under one roof:
//!
//! * [`frame`] — the embedded partition-parallel DataFrame engine (the
//!   Spark substitute),
//! * [`protocol`] — CAN / LIN / SOME-IP frame model and signal codecs,
//! * [`series`] — SWAB segmentation, SAX symbolization, smoothing,
//!   outlier detection,
//! * [`simulator`] — the in-vehicle network and trace generator (the data
//!   substitute), including the paper's SYN/LIG/STA scenario shapes,
//! * [`store`] — the chunked columnar on-disk trace store with zone-map
//!   pushdown (the HDFS/Parquet substitute),
//! * [`core`] — Algorithm 1: the parameterizable end-to-end preprocessing
//!   pipeline,
//! * [`infer`] — DBC-less signal-boundary inference: recovers packing
//!   tables from raw payloads (READ/ByCAN/CAN-D substitute) and emits
//!   them as `RuleSource::Inferred` catalogs,
//! * [`cluster`] — coordinator/worker distributed extraction over TCP
//!   (the Spark-cluster substitute): shard scheduling, heartbeats,
//!   fault-tolerant retry,
//! * [`obs`] — std-only metrics registry and span tracing threaded through
//!   every layer (the Spark-UI / task-metrics substitute),
//! * [`analysis`] — Sec. 4.4 applications: rule mining, transition graphs,
//!   anomaly detection, diagnosis,
//! * [`baseline`] — the sequential in-house-tool comparator of Table 6.
//!
//! # Quickstart
//!
//! ```
//! use ivnt::core::prelude::*;
//! use ivnt::simulator::prelude::*;
//! use ivnt::simulator::functions;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Record a 5-second trace from a simulated vehicle.
//! let mut network = NetworkModel::new(ivnt::protocol::Catalog::new());
//! network.add_function(functions::wiper()?)?;
//! network.auto_senders();
//! let trace = network.simulate(5.0, 42, &FaultPlan::new())?;
//!
//! // Parameterize once per domain, then preprocess automatically.
//! let u_rel = RuleSet::from_network(&network);
//! let profile = DomainProfile::new("wiper-domain").with_signals(["wpos", "wvel"]);
//! let pipeline = Pipeline::new(u_rel, profile)?;
//! let output = pipeline.session(RunOptions::trace(&trace)).run()?;
//! println!("{} signals, {} state rows", output.signals.len(), output.state.num_rows());
//! # Ok(())
//! # }
//! ```

pub use ivnt_analysis as analysis;
pub use ivnt_baseline as baseline;
pub use ivnt_cluster as cluster;
pub use ivnt_core as core;
pub use ivnt_frame as frame;
pub use ivnt_infer as infer;
pub use ivnt_obs as obs;
pub use ivnt_plan as plan;
pub use ivnt_protocol as protocol;
pub use ivnt_series as series;
pub use ivnt_simulator as simulator;
pub use ivnt_store as store;
