//! Cross-validation: the distributed pipeline's interpretation must agree
//! value-for-value with the sequential in-house tool — both implement the
//! same protocol semantics, so any disagreement is a bug in one of them.

use std::collections::HashMap;

use ivnt::baseline::SequentialAnalyzer;
use ivnt::core::prelude::*;
use ivnt::core::tabular::columns as c;
use ivnt::simulator::prelude::*;

#[test]
fn pipeline_and_baseline_decode_identically() {
    let data = generate(&DataSetSpec::syn().with_target_examples(10_000)).expect("generate");
    let signals = data.signal_names();
    let selected: Vec<&str> = signals.iter().map(String::as_str).collect();

    // Proposed: K_s straight after interpretation (no reduction).
    let pipeline = Pipeline::new(
        RuleSet::from_network(&data.network),
        DomainProfile::new("equiv").with_signals(selected.clone()),
    )
    .expect("pipeline");
    let ks = pipeline
        .session(RunOptions::trace(&data.trace))
        .extract()
        .expect("extract")
        .frame;

    // Baseline: interpret-on-ingest store.
    let tool = SequentialAnalyzer::new(data.network.clone());
    let ingested = tool.ingest(&data.trace);

    // Group the pipeline rows per (signal, bus) in time order.
    type Instances = Vec<(f64, Option<f64>, Option<String>)>;
    let mut pipe: HashMap<(String, String), Instances> = HashMap::new();
    let sorted = ks
        .sort_by(&[c::T, c::SIGNAL, c::BUS], &[true, true, true])
        .expect("sort");
    for row in sorted.collect_rows().expect("rows") {
        let signal = row[1].as_str().expect("s_id").to_string();
        let bus = row[2].as_str().expect("b_id").to_string();
        pipe.entry((signal, bus)).or_default().push((
            row[0].as_float().expect("t"),
            row[3].as_float(),
            row[4].as_str().map(str::to_string),
        ));
    }

    let mut compared = 0usize;
    for name in &signals {
        let base = ingested.signal_instances(name);
        assert!(!base.is_empty(), "baseline decoded no {name}");
        // Group baseline instances per bus too.
        let mut base_by_bus: HashMap<&str, Vec<&ivnt::baseline::IngestedInstance>> = HashMap::new();
        for inst in base {
            base_by_bus.entry(inst.bus.as_str()).or_default().push(inst);
        }
        for (bus, instances) in base_by_bus {
            let key = (name.clone(), bus.to_string());
            let pipe_rows = pipe
                .get(&key)
                .unwrap_or_else(|| panic!("pipeline produced no rows for {name} on {bus}"));
            assert_eq!(
                pipe_rows.len(),
                instances.len(),
                "instance count differs for {name} on {bus}"
            );
            for (p, b) in pipe_rows.iter().zip(instances) {
                assert!((p.0 - b.t).abs() < 1e-9, "timestamps differ for {name}");
                match &b.value {
                    ivnt::protocol::PhysicalValue::Num(v) => {
                        assert_eq!(
                            p.1,
                            Some(*v),
                            "numeric value differs for {name} at t={}",
                            b.t
                        )
                    }
                    ivnt::protocol::PhysicalValue::Text(s) => {
                        assert_eq!(
                            p.2.as_deref(),
                            Some(s.as_str()),
                            "label differs for {name} at t={}",
                            b.t
                        )
                    }
                }
                compared += 1;
            }
        }
    }
    assert!(compared > 5_000, "only {compared} instances compared");
}
