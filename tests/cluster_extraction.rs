//! Tier-1 acceptance: distributed extraction is bit-identical to the
//! single-process pipeline, including across a worker killed mid-task.
//! The exhaustive matrix (worker counts, every fault, protocol fuzzing)
//! lives in `crates/cluster/tests/`; this is the root-level contract.

use std::path::PathBuf;

use ivnt::cluster::codec::encode_batch;
use ivnt::cluster::{run_job, ClusterConfig, JobSpec, WorkerFaults, WorkerServer};
use ivnt::core::pipeline::RunOptions;
use ivnt::simulator::scenario::{self, DataSetSpec};

fn build_store(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "ivnt-cluster-accept-{tag}-{}.ivns",
        std::process::id()
    ));
    let data = scenario::generate(&DataSetSpec::syn().with_seed(41).with_duration_s(4.0))
        .expect("scenario generates");
    let options = ivnt::store::WriterOptions {
        chunk_rows: 128,
        chunks_per_group: 2,
        cluster: true,
    };
    let mut writer = ivnt::store::StoreWriter::create(&path, options).expect("store create");
    for r in data.trace.records() {
        writer
            .append(&ivnt::simulator::store::to_store_record(r))
            .expect("store append");
    }
    writer.finish().expect("store finish");
    path
}

fn fingerprint(frame: &ivnt::frame::frame::DataFrame) -> Vec<Vec<u8>> {
    frame.partitions().iter().map(encode_batch).collect()
}

fn spawn_workers(faults: Vec<WorkerFaults>) -> Vec<String> {
    faults
        .into_iter()
        .map(|f| {
            let server = WorkerServer::bind("127.0.0.1:0")
                .expect("worker binds")
                .with_faults(f);
            let addr = server.local_addr().expect("addr").to_string();
            std::thread::spawn(move || {
                let _ = server.serve_once();
            });
            addr
        })
        .collect()
}

#[test]
fn distributed_extraction_matches_single_process_bit_for_bit() {
    let path = build_store("clean");
    let job = JobSpec::new("syn", path.display().to_string()).with_seed(41);
    let pipeline = job.pipeline().expect("pipeline rebuilds");
    let mut reader = ivnt::store::StoreReader::open(&path).expect("store opens");
    let expected = pipeline
        .session(RunOptions::store(&mut reader))
        .extract()
        .expect("single-process extraction")
        .frame;
    assert!(expected.num_rows() > 0);

    let config = ClusterConfig {
        heartbeat_ms: 25,
        liveness_timeout_ms: 500,
        ..ClusterConfig::default()
    };

    // Two healthy workers.
    let addrs = spawn_workers(vec![WorkerFaults::none(); 2]);
    let run = run_job(&job, &addrs, &config).expect("clean cluster run");
    assert_eq!(fingerprint(&run.frame), fingerprint(&expected));
    assert_eq!(run.stats.retries, 0);

    // One of two workers dies mid-task: retried elsewhere, same bytes.
    let addrs = spawn_workers(vec![
        WorkerFaults {
            kill_mid_task: true,
            ..WorkerFaults::none()
        },
        WorkerFaults::none(),
    ]);
    let run = run_job(&job, &addrs, &config).expect("faulted cluster run");
    assert_eq!(fingerprint(&run.frame), fingerprint(&expected));
    assert_eq!(run.stats.workers_lost, 1);
    assert!(run.stats.retries >= 1);

    std::fs::remove_file(&path).ok();
}
