//! The paper's SOME/IP peculiarity end to end: interpretation rules "where
//! values of preceding bytes define the presence of a signal type in
//! succeeding bytes". The ADAS object-list service publishes payloads whose
//! field offsets shift with a presence mask; conditional rules must extract
//! each field only when present, at the right offset.

use ivnt::core::prelude::*;
use ivnt::core::tabular::columns as c;
use ivnt::simulator::adas::{generate_object_trace, object_list};

#[test]
fn conditional_fields_extract_only_when_present() {
    let model = object_list().expect("model builds");
    let trace = generate_object_trace(&model, 120.0, 21).expect("trace generates");

    let mut u_rel = RuleSet::new();
    for (field, spec) in model.field_specs.iter().enumerate() {
        u_rel.push_optional_field(
            &model.bus,
            model.message_id,
            model.layout.clone(),
            field,
            spec.clone(),
            Some(model.period_ms as f64 / 1e3),
        );
    }

    let pipeline = Pipeline::new(u_rel, DomainProfile::new("adas")).expect("pipeline");
    let ks = pipeline
        .session(RunOptions::trace(&trace))
        .extract()
        .expect("extract")
        .frame;

    // Count instances per signal: distance/class only while tracked,
    // rel_speed only while tracked AND moving — strictly fewer.
    let count = |name: &str| {
        ks.column_values(c::SIGNAL)
            .expect("signals")
            .iter()
            .filter(|v| v.as_str() == Some(name))
            .count()
    };
    let n_dist = count("obj_distance");
    let n_speed = count("obj_rel_speed");
    let n_class = count("obj_class");
    assert!(n_dist > 0, "no distance instances");
    assert_eq!(n_dist, n_class, "distance and class share presence");
    assert!(n_speed < n_dist, "speed must be present less often");
    assert!(
        n_dist < trace.len(),
        "absent instants must produce no instances"
    );

    // No null values: absence is dropped, not null-decoded.
    let rows = ks.collect_rows().expect("rows");
    for r in &rows {
        assert!(
            !r[3].is_null() || !r[4].is_null(),
            "extracted instance without a value: {r:?}"
        );
    }
}

#[test]
fn conditional_values_are_correct() {
    let model = object_list().expect("model builds");
    let trace = generate_object_trace(&model, 60.0, 8).expect("trace generates");

    let mut u_rel = RuleSet::new();
    u_rel.push_optional_field(
        &model.bus,
        model.message_id,
        model.layout.clone(),
        0,
        model.field_specs[0].clone(),
        None,
    );
    let pipeline = Pipeline::new(u_rel, DomainProfile::new("dist")).expect("pipeline");
    let ks = pipeline
        .session(RunOptions::trace(&trace))
        .extract()
        .expect("extract")
        .frame;

    // Cross-check every extracted distance against a direct decode.
    let rows = ks
        .sort_by(&[c::T], &[true])
        .expect("sort")
        .collect_rows()
        .expect("rows");
    let mut checked = 0usize;
    for r in &rows {
        let t = r[0].as_float().expect("t");
        let record = trace
            .iter()
            .find(|rec| (rec.timestamp_s() - t).abs() < 1e-9)
            .expect("record exists");
        let bytes = model
            .layout
            .decode_field(&record.payload, 0)
            .expect("layout decodes")
            .expect("field present");
        let expected = model.field_specs[0]
            .decode(&bytes)
            .expect("decodes")
            .as_num()
            .expect("numeric");
        assert_eq!(r[3].as_float(), Some(expected));
        checked += 1;
    }
    assert!(checked > 50, "only {checked} instances checked");
}

#[test]
fn conditional_signal_flows_through_full_pipeline() {
    let model = object_list().expect("model builds");
    let trace = generate_object_trace(&model, 120.0, 3).expect("trace generates");
    let mut u_rel = RuleSet::new();
    for (field, spec) in model.field_specs.iter().enumerate() {
        u_rel.push_optional_field(
            &model.bus,
            model.message_id,
            model.layout.clone(),
            field,
            spec.clone(),
            None,
        );
    }
    let output = Pipeline::new(u_rel, DomainProfile::new("adas-full"))
        .expect("pipeline")
        .session(RunOptions::trace(&trace))
        .run()
        .expect("run");
    assert_eq!(output.signals.len(), 3);
    // The distance is fast numeric -> α; the class is nominal -> γ.
    assert_eq!(
        output
            .signal("obj_distance")
            .expect("distance")
            .classification
            .branch,
        Branch::Alpha
    );
    assert_eq!(
        output
            .signal("obj_class")
            .expect("class")
            .classification
            .branch,
        Branch::Gamma
    );
    assert!(output.state.schema().contains("obj_distance"));
}
