//! End to end from real documentation: a DBC file (with multiplexing)
//! parameterizes the pipeline, exactly how a domain would start from the
//! vehicle's communication matrix.

use std::sync::Arc;

use ivnt::core::prelude::*;
use ivnt::core::tabular::columns as c;
use ivnt::protocol::dbc;
use ivnt::protocol::message::Protocol;
use ivnt::simulator::prelude::*;

const MATRIX: &str = r#"
VERSION "integration matrix"

BO_ 3 WiperStatus: 4 WiperEcu
 SG_ wpos : 0|16@1+ (0.5,0) [0|180] "deg" Body
 SG_ wvel : 16|16@1+ (1,0) [0|10] "rad/min" Body

BO_ 96 Diagnostics: 3 Gateway
 SG_ diag_page M : 0|8@1+ (1,0) [0|1] "" Tester
 SG_ oil_temp m0 : 8|16@1+ (0.1,-40) [-40|150] "C" Tester
 SG_ coolant_temp m1 : 8|16@1+ (0.1,-40) [-40|150] "C" Tester

BA_ "GenMsgCycleTime" BO_ 3 100;
"#;

fn rules_from_matrix() -> RuleSet {
    let (catalog, mux) = dbc::parse_dbc_extended(MATRIX, "PT").expect("matrix parses");
    let mut rules = RuleSet::from_catalog(&catalog);
    for entry in &mux {
        rules.push_dbc_mux("PT", entry, None);
    }
    rules
}

fn trace() -> Trace {
    let rec = |t_ms: u64, id: u32, payload: Vec<u8>| TraceRecord {
        timestamp_us: t_ms * 1000,
        bus: Arc::from("PT"),
        message_id: id,
        payload,
        protocol: Protocol::Can,
    };
    let temp = |raw: u16, page: u8| {
        let mut p = vec![page, 0, 0];
        p[1..3].copy_from_slice(&raw.to_le_bytes());
        p
    };
    Trace::from_records(vec![
        rec(0, 3, vec![0x5A, 0x00, 0x01, 0x00]),   // wpos 45, wvel 1
        rec(50, 96, temp(820, 0)),                 // oil 42 C
        rec(100, 3, vec![0x78, 0x00, 0x01, 0x00]), // wpos 60
        rec(150, 96, temp(905, 1)),                // coolant 50.5 C
    ])
}

#[test]
fn dbc_parameterizes_the_pipeline() {
    let rules = rules_from_matrix();
    // Fixed rules: wpos, wvel, diag_page; conditional: oil, coolant.
    assert_eq!(rules.len(), 5);
    let output = Pipeline::new(rules, DomainProfile::new("from-dbc"))
        .expect("pipeline")
        .session(RunOptions::trace(&trace()))
        .run()
        .expect("run");
    assert_eq!(output.signals.len(), 5);
    assert!(output.state.schema().contains("oil_temp"));
    assert!(output.state.schema().contains("coolant_temp"));
    assert!(output.state.schema().contains("wpos"));
}

#[test]
fn dbc_mux_values_decode_correctly() {
    let rules = rules_from_matrix()
        .select(&["oil_temp", "coolant_temp"])
        .expect("select");
    let pipeline = Pipeline::new(rules, DomainProfile::new("diag")).expect("pipeline");
    let ks = pipeline
        .session(RunOptions::trace(&trace()))
        .extract()
        .expect("extract")
        .frame;
    let rows = ks
        .sort_by(&[c::T], &[true])
        .expect("sort")
        .collect_rows()
        .expect("rows");
    assert_eq!(rows.len(), 2);
    assert_eq!(rows[0][1].as_str(), Some("oil_temp"));
    assert!((rows[0][3].as_float().expect("oil") - 42.0).abs() < 1e-9);
    assert_eq!(rows[1][1].as_str(), Some("coolant_temp"));
    assert!((rows[1][3].as_float().expect("coolant") - 50.5).abs() < 1e-9);
}

#[test]
fn cycle_time_flows_from_dbc_attribute() {
    let rules = rules_from_matrix();
    let wpos = rules
        .rules()
        .iter()
        .find(|r| r.signal == "wpos")
        .expect("wpos rule");
    assert_eq!(wpos.info.expected_cycle_s, Some(0.1));
}
