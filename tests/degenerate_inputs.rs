//! Degenerate pipeline inputs: empty traces, traces without relevant
//! messages, single-instance signals — everything a fleet job encounters
//! on short or idle recordings must flow through without panics.

use std::sync::Arc;

use ivnt::core::prelude::*;
use ivnt::protocol::message::Protocol;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn network() -> NetworkModel {
    let mut n = NetworkModel::new(ivnt::protocol::Catalog::new());
    n.add_function(functions::wiper().expect("wiper"))
        .expect("install");
    n.auto_senders();
    n
}

#[test]
fn empty_trace_produces_empty_output() {
    let n = network();
    let output = Pipeline::new(RuleSet::from_network(&n), DomainProfile::new("empty"))
        .expect("pipeline")
        .session(RunOptions::trace(&Trace::new()))
        .run()
        .expect("run");
    assert!(output.signals.is_empty());
    assert_eq!(output.state.num_rows(), 0);
    assert_eq!(output.outlier_count().expect("count"), 0);
}

#[test]
fn trace_with_only_irrelevant_messages() {
    let n = network();
    let trace = Trace::from_records(vec![TraceRecord {
        timestamp_us: 0,
        bus: Arc::from("UNKNOWN"),
        message_id: 9999,
        payload: vec![1, 2, 3],
        protocol: Protocol::Can,
    }]);
    let output = Pipeline::new(RuleSet::from_network(&n), DomainProfile::new("none"))
        .expect("pipeline")
        .session(RunOptions::trace(&trace))
        .run()
        .expect("run");
    assert!(output.signals.is_empty());
    assert_eq!(output.state.num_rows(), 0);
}

#[test]
fn single_message_trace() {
    let n = network();
    let trace = Trace::from_records(vec![TraceRecord {
        timestamp_us: 2_000_000,
        bus: Arc::from("FC"),
        message_id: 3,
        payload: vec![0x5A, 0x00, 0x01, 0x00],
        protocol: Protocol::Can,
    }]);
    let output = Pipeline::new(
        RuleSet::from_network(&n),
        DomainProfile::new("single").with_signals(["wpos", "wvel"]),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");
    assert_eq!(output.signals.len(), 2);
    for s in &output.signals {
        assert_eq!(s.rows_interpreted, 1);
        assert_eq!(s.rows_reduced, 1);
    }
    assert_eq!(output.state.num_rows(), 1);
}

#[test]
fn all_payloads_corrupt_still_flows() {
    let n = network();
    // Payloads too short for any wiper signal: every decode fails, and the
    // pipeline must flag the instances rather than die.
    let trace = Trace::from_records(
        (0..20)
            .map(|i| TraceRecord {
                timestamp_us: i * 100_000,
                bus: Arc::from("FC"),
                message_id: 3,
                payload: vec![0x01],
                protocol: Protocol::Can,
            })
            .collect(),
    );
    let output = Pipeline::new(
        RuleSet::from_network(&n),
        DomainProfile::new("corrupt").with_signals(["wvel"]),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");
    let wvel = output.signal("wvel").expect("wvel present");
    // Every instance is a decode failure -> flagged outliers downstream.
    assert!(output.outlier_count().expect("count") >= 1);
    assert_eq!(wvel.rows_interpreted, 20);
}

#[test]
fn profile_with_empty_constraint_list_keeps_everything() {
    let n = network();
    let trace = n.simulate(2.0, 4, &FaultPlan::new()).expect("simulate");
    let output = Pipeline::new(
        RuleSet::from_network(&n),
        DomainProfile::new("keep-all")
            .with_signals(["wpos"])
            .with_constraints(vec![]),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");
    let wpos = output.signal("wpos").expect("wpos");
    assert_eq!(wpos.rows_reduced, wpos.rows_interpreted);
}

#[test]
fn zero_duration_trace_classifies_low_rate() {
    let n = network();
    // Two instances at the identical timestamp: duration 0, rate undefined.
    let trace = Trace::from_records(vec![
        TraceRecord {
            timestamp_us: 5_000_000,
            bus: Arc::from("FC"),
            message_id: 3,
            payload: vec![0x5A, 0x00, 0x01, 0x00],
            protocol: Protocol::Can,
        },
        TraceRecord {
            timestamp_us: 5_000_000,
            bus: Arc::from("FC"),
            message_id: 3,
            payload: vec![0x78, 0x00, 0x01, 0x00],
            protocol: Protocol::Can,
        },
    ]);
    let output = Pipeline::new(
        RuleSet::from_network(&n),
        DomainProfile::new("instant").with_signals(["wpos"]),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");
    let wpos = output.signal("wpos").expect("wpos");
    assert_eq!(wpos.classification.criteria.measured_rate_hz, 0.0);
    assert_eq!(wpos.classification.branch, Branch::Gamma); // 2 values, low rate
}
