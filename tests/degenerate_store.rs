//! Degenerate store extraction: an empty `.ivns` file and a predicate
//! that prunes every chunk must both come back as an empty but
//! correctly-schema'd result — single-process and through the cluster
//! coordinator, which must answer locally without touching a worker.

use std::path::{Path, PathBuf};

use ivnt::cluster::{run_job, ClusterConfig, JobSpec};
use ivnt::core::interpret::signal_schema;
use ivnt::core::pipeline::RunOptions;
use ivnt::simulator::scenario::{self, DataSetSpec};
use ivnt::store::{StoreReader, StoreWriter, WriterOptions};

fn temp_store(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("ivnt-degenerate-{tag}-{}.ivns", std::process::id()))
}

/// An `.ivns` file that was created and finalized without a single row.
fn write_empty_store(path: &Path) {
    StoreWriter::create(path, WriterOptions::default())
        .expect("store create")
        .finish()
        .expect("store finish");
}

/// A store holding only STA-scenario traffic — every chunk's zone map
/// fails a SYN pipeline's message predicate.
fn write_foreign_store(path: &Path) {
    let data = scenario::generate(&DataSetSpec::sta().with_seed(5).with_duration_s(2.0))
        .expect("scenario generates");
    let mut writer = StoreWriter::create(path, WriterOptions::default()).expect("store create");
    for r in data.trace.records() {
        writer
            .append(&ivnt::simulator::store::to_store_record(r))
            .expect("store append");
    }
    writer.finish().expect("store finish");
}

fn assert_empty_signal_frame(frame: &ivnt::frame::frame::DataFrame) {
    assert_eq!(frame.num_rows(), 0);
    assert_eq!(frame.schema(), &signal_schema(), "schema must survive");
    assert_eq!(frame.partitions().len(), 1, "one empty batch, not zero");
    assert!(frame.collect_rows().expect("collectable").is_empty());
}

#[test]
fn empty_store_extracts_empty_schemad_frame() {
    let path = temp_store("empty");
    write_empty_store(&path);
    let job = JobSpec::new("syn", path.display().to_string()).with_seed(3);
    let pipeline = job.pipeline().expect("pipeline");
    let mut reader = StoreReader::open(&path).expect("store opens");
    let ex = pipeline
        .session(RunOptions::store(&mut reader))
        .extract()
        .expect("empty store extracts");
    let (frame, stats) = (ex.frame, ex.scan.expect("store sessions report scan stats"));
    assert_empty_signal_frame(&frame);
    assert_eq!(stats.chunks_total, 0);
    std::fs::remove_file(&path).ok();
}

#[test]
fn all_pruning_predicate_extracts_empty_schemad_frame() {
    let path = temp_store("pruned");
    write_foreign_store(&path);
    let job = JobSpec::new("syn", path.display().to_string()).with_seed(3);
    let pipeline = job.pipeline().expect("pipeline");
    let mut reader = StoreReader::open(&path).expect("store opens");
    let ex = pipeline
        .session(RunOptions::store(&mut reader))
        .extract()
        .expect("fully pruned store extracts");
    let (frame, stats) = (ex.frame, ex.scan.expect("store sessions report scan stats"));
    assert_empty_signal_frame(&frame);
    assert!(stats.chunks_total > 0, "the store is not empty");
    assert_eq!(stats.chunks_scanned, 0, "every chunk must be pruned");
    std::fs::remove_file(&path).ok();
}

/// The cluster coordinator plans zero tasks for a degenerate store and
/// must answer locally: the worker addresses here are unreachable on
/// purpose, so any connection attempt would fail the job.
#[test]
fn cluster_answers_degenerate_jobs_without_workers() {
    for (tag, write) in [
        ("cluster-empty", write_empty_store as fn(&Path)),
        ("cluster-pruned", write_foreign_store as fn(&Path)),
    ] {
        let path = temp_store(tag);
        write(&path);
        let job = JobSpec::new("syn", path.display().to_string()).with_seed(3);
        // TEST-NET-1: guaranteed no worker is listening here.
        let run = run_job(&job, &["192.0.2.1:9".into()], &ClusterConfig::default())
            .expect("degenerate job resolves locally");
        assert_empty_signal_frame(&run.frame);
        assert_eq!(run.stats.tasks, 0, "{tag}: nothing to schedule");
        assert_eq!(run.stats.rows, 0);
        std::fs::remove_file(&path).ok();
    }
}
