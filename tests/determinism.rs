//! The paper's "preserving determinism" requirement: identical inputs and
//! parameterization must give bit-identical results, regardless of how the
//! work is partitioned or parallelized.

use ivnt::core::prelude::*;
use ivnt::simulator::prelude::*;

fn dataset() -> GeneratedDataSet {
    generate(&DataSetSpec::syn().with_target_examples(8_000)).expect("generate")
}

#[test]
fn simulation_is_reproducible() {
    let a = dataset();
    let b = dataset();
    assert_eq!(a.trace, b.trace);
}

#[test]
fn pipeline_output_identical_across_partition_counts() {
    let data = dataset();
    let u_rel = RuleSet::from_network(&data.network);
    let run = |parts: usize| {
        let profile = DomainProfile::new("det").with_partitions(parts);
        Pipeline::new(u_rel.clone(), profile)
            .expect("pipeline")
            .session(RunOptions::trace(&data.trace))
            .run()
            .expect("run")
    };
    let reference = run(1);
    for parts in [2usize, 3, 8] {
        let out = run(parts);
        assert_eq!(
            reference.merged.collect_rows().expect("rows"),
            out.merged.collect_rows().expect("rows"),
            "merged output differs at {parts} partitions"
        );
        assert_eq!(
            reference.state.collect_rows().expect("rows"),
            out.state.collect_rows().expect("rows"),
            "state differs at {parts} partitions"
        );
    }
}

#[test]
fn pipeline_output_identical_across_worker_counts() {
    let data = dataset();
    let u_rel = RuleSet::from_network(&data.network);
    let run = |workers: usize| {
        // Explicit per-profile workers: mutating the process-wide default
        // here would leak into every other test in this binary.
        let profile = DomainProfile::new("det")
            .with_partitions(4)
            .with_workers(workers);
        let out = Pipeline::new(u_rel.clone(), profile)
            .expect("pipeline")
            .session(RunOptions::trace(&data.trace))
            .run()
            .expect("run");
        out.merged.collect_rows().expect("rows")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial, parallel);
}

#[test]
fn repeated_runs_are_identical() {
    let data = dataset();
    let u_rel = RuleSet::from_network(&data.network);
    let profile = DomainProfile::new("det");
    let pipeline = Pipeline::new(u_rel, profile).expect("pipeline");
    let a = pipeline
        .session(RunOptions::trace(&data.trace))
        .run()
        .expect("run");
    let b = pipeline
        .session(RunOptions::trace(&data.trace))
        .run()
        .expect("run");
    assert_eq!(
        a.state.collect_rows().expect("rows"),
        b.state.collect_rows().expect("rows")
    );
    assert_eq!(
        a.outlier_count().expect("count"),
        b.outlier_count().expect("count")
    );
}
