//! End-to-end integration: full vehicle, full pipeline, downstream analyses.

use ivnt::analysis::anomaly::{outlier_cells, rare_values, AnomalyConfig};
use ivnt::analysis::apriori::{mine_rules, transactions_from_state, AprioriConfig};
use ivnt::analysis::transition::TransitionGraph;
use ivnt::core::prelude::*;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn full_vehicle() -> NetworkModel {
    let mut n = NetworkModel::new(ivnt::protocol::Catalog::new());
    for f in [
        functions::wiper(),
        functions::lights(),
        functions::drivetrain(),
        functions::body(),
        functions::climate(),
    ] {
        n.add_function(f.expect("function model builds"))
            .expect("function installs");
    }
    n.add_gateway(GatewayRoute {
        from_bus: "FC".into(),
        to_bus: "DC".into(),
        message_ids: vec![3],
        delay_us: 120,
    });
    n.auto_senders();
    n
}

#[test]
fn full_vehicle_end_to_end() {
    let network = full_vehicle();
    let trace = network
        .simulate(20.0, 2024, &FaultPlan::new())
        .expect("simulation runs");
    assert!(trace.len() > 1_500, "trace has {} records", trace.len());

    let u_rel = RuleSet::from_network(&network);
    let profile = DomainProfile::new("all-domains");
    let output = Pipeline::new(u_rel, profile)
        .expect("pipeline builds")
        .session(RunOptions::trace(&trace))
        .run()
        .expect("pipeline runs");

    // Every catalog signal produced a result.
    assert_eq!(output.signals.len(), network.catalog().num_signals());
    // The state representation has one column per signal plus time.
    assert_eq!(output.state.schema().len(), output.signals.len() + 1);
    // Branches are all exercised by the mixed vehicle.
    let branches: std::collections::HashSet<Branch> = output
        .signals
        .iter()
        .map(|s| s.classification.branch)
        .collect();
    assert!(branches.contains(&Branch::Alpha));
    assert!(branches.contains(&Branch::Gamma));
    // Reduction actually reduced.
    let interpreted: usize = output.signals.iter().map(|s| s.rows_interpreted).sum();
    let reduced: usize = output.signals.iter().map(|s| s.rows_reduced).sum();
    assert!(reduced < interpreted);
    // Gateway dedup covered the mirrored channel.
    let wpos = output.signal("wpos").expect("wpos present");
    assert_eq!(wpos.corresponding_channels, vec!["DC".to_string()]);
}

#[test]
fn downstream_analyses_consume_state_representation() {
    let network = full_vehicle();
    let trace = network
        .simulate(15.0, 7, &FaultPlan::new())
        .expect("simulation runs");
    let output = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("analysis").with_signals(["state", "belt", "headlight"]),
    )
    .expect("pipeline builds")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("pipeline runs");

    // Association rules mine without error and respect thresholds.
    let transactions = transactions_from_state(&output.state).expect("transactions");
    let rules = mine_rules(
        &transactions,
        &AprioriConfig {
            min_support: 0.2,
            min_confidence: 0.7,
            max_len: 2,
        },
    )
    .expect("rules mine");
    for r in &rules {
        assert!(r.confidence >= 0.7);
        assert!(r.support >= 0.2);
    }

    // Transition graph over a state column.
    let graph = TransitionGraph::from_column(&output.state, "state").expect("graph");
    assert_eq!(
        graph.total_transitions() as usize,
        output.state.num_rows().saturating_sub(1)
    );

    // Anomaly scan completes.
    let _ = rare_values(&output.state, "belt", &AnomalyConfig::default()).expect("anomalies");
    let _ = outlier_cells(&output.state).expect("outlier scan");
}

#[test]
fn trace_persistence_roundtrips_through_pipeline() {
    let network = full_vehicle();
    let trace = network
        .simulate(5.0, 33, &FaultPlan::new())
        .expect("simulation runs");
    let mut buf = Vec::new();
    trace.write_to(&mut buf).expect("serialize");
    let reloaded = Trace::read_from(buf.as_slice()).expect("deserialize");
    assert_eq!(reloaded, trace);

    let pipeline = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("roundtrip").with_signals(["speed"]),
    )
    .expect("pipeline builds");
    let a = pipeline
        .session(RunOptions::trace(&trace))
        .run()
        .expect("run original");
    let b = pipeline
        .session(RunOptions::trace(&reloaded))
        .run()
        .expect("run reloaded");
    assert_eq!(
        a.merged.collect_rows().expect("rows"),
        b.merged.collect_rows().expect("rows")
    );
}
