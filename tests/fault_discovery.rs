//! Fault-injection integration: every planted fault class is discovered by
//! the mechanism the paper designates for it (Sec. 4.4).

use ivnt::analysis::anomaly::{rare_values, AnomalyConfig};
use ivnt::analysis::diagnosis::diagnose_outliers;
use ivnt::core::prelude::*;
use ivnt::simulator::functions;
use ivnt::simulator::prelude::*;

fn network() -> NetworkModel {
    let mut n = NetworkModel::new(ivnt::protocol::Catalog::new());
    n.add_function(functions::wiper().expect("wiper"))
        .expect("install");
    n.add_function(functions::drivetrain().expect("drivetrain"))
        .expect("install");
    n.auto_senders();
    n
}

#[test]
fn outlier_spike_is_flagged_and_diagnosable() {
    let network = network();
    let faults = FaultPlan::new().with(Fault::OutlierSpike {
        signal: "speed".into(),
        at_s: 5.0,
        duration_s: 0.05,
        value: 640.0,
    });
    let trace = network.simulate(10.0, 5, &faults).expect("simulate");
    let output = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("outliers").with_signals(["speed", "rpm"]),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");

    assert!(output.outlier_count().expect("count") >= 1);
    // Diagnosis produces the event context with prior states.
    let contexts = diagnose_outliers(&output.state, 4).expect("diagnose");
    assert!(!contexts.is_empty());
    let ctx = &contexts[0];
    assert_eq!(ctx.column, "speed");
    assert!((ctx.t - 5.0).abs() < 0.5, "outlier at t={}", ctx.t);
    assert!(!ctx.prior_states.is_empty());
}

#[test]
fn cycle_violation_is_preserved_and_extended() {
    let network = network();
    let faults = FaultPlan::new().with(Fault::CycleViolation {
        bus: "FC".into(),
        message_id: 3,
        from_s: 4.0,
        to_s: 5.0,
    });
    let trace = network.simulate(10.0, 5, &faults).expect("simulate");
    let output = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("cycles")
            .with_signals(["wpos"])
            .with_constraints(vec![Constraint::global(vec![
                ConditionFn::ValueChanged,
                ConditionFn::GapExceeds { max_gap_s: 0.4 },
            ])])
            .with_extension(ExtensionRule::CycleViolation {
                signal: "wpos".into(),
                expected_cycle_s: 0.1,
                factor: 4.0,
                alias: "wposCycleViolation".into(),
            }),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");

    // The violation appears as an extension element near t = 5 s.
    let rows = output.extensions.collect_rows().expect("rows");
    assert!(!rows.is_empty(), "cycle violation not detected");
    let t = rows[0][0].as_float().expect("t");
    assert!((4.0..6.0).contains(&t), "violation at t={t}");
    let gap = rows[0][3].as_float().expect("gap");
    assert!(gap >= 0.9, "gap {gap} should reflect the 1 s silence");
}

#[test]
fn forced_invalid_label_surfaces_as_rare_value() {
    let network = network();
    let faults = FaultPlan::new().with(Fault::ForcedLabel {
        signal: "wstat".into(),
        at_s: 8.0,
        duration_s: 0.6,
        label: "invalid".into(),
    });
    // A long recording so the dwelling status signal changes often enough
    // for the single forced label to be *rare* among the kept changes.
    let trace = network.simulate(240.0, 5, &faults).expect("simulate");
    let output = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("validity").with_signals(["wstat"]),
    )
    .expect("pipeline")
    .session(RunOptions::trace(&trace))
    .run()
    .expect("run");

    let anomalies = rare_values(
        &output.state,
        "wstat",
        &AnomalyConfig {
            max_frequency: 0.25,
            top_k: 10,
        },
    )
    .expect("anomalies");
    assert!(
        anomalies.iter().any(|a| a.label == "invalid"),
        "invalid label not surfaced: {anomalies:?}"
    );
}

#[test]
fn stuck_signal_changes_reduction_profile() {
    let network = network();
    let faults = FaultPlan::new().with(Fault::StuckSignal {
        signal: "speed".into(),
        from_s: 2.0,
        to_s: 9.0,
        value: 77.0,
    });
    let clean = network
        .simulate(10.0, 5, &FaultPlan::new())
        .expect("simulate");
    let stuck = network.simulate(10.0, 5, &faults).expect("simulate");
    let pipeline = Pipeline::new(
        RuleSet::from_network(&network),
        DomainProfile::new("stuck").with_signals(["speed"]),
    )
    .expect("pipeline");
    let clean_rows = pipeline
        .session(RunOptions::trace(&clean))
        .run()
        .expect("run")
        .signals[0]
        .rows_reduced;
    let stuck_rows = pipeline
        .session(RunOptions::trace(&stuck))
        .run()
        .expect("run")
        .signals[0]
        .rows_reduced;
    // A stuck signal repeats its value, so unchanged-repeat removal keeps
    // far fewer rows.
    assert!(
        (stuck_rows as f64) < 0.6 * clean_rows as f64,
        "stuck {stuck_rows} vs clean {clean_rows}"
    );
}
