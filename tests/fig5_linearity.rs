//! The Fig. 5 claim as an executable assertion: extraction time is O(n) in
//! the number of examples. A very loose per-row-cost band is asserted — it
//! would catch an accidental O(n²) operator (whose per-row cost would grow
//! ~8× over an 8× size range) without flaking on machine noise.

use std::time::Instant;

use ivnt::core::pipeline::RunOptions;
use ivnt_bench::domain_pipeline;
use ivnt_simulator::prelude::*;

#[test]
fn extraction_scales_linearly() {
    let data = generate(&DataSetSpec::syn().with_target_examples(60_000)).expect("generate");
    let signals = data.signal_names();
    let pipeline = domain_pipeline(&data, &signals).expect("pipeline");

    let time_per_row = |n: usize| -> f64 {
        let prefix = data.trace.prefix(n);
        // Warm up once, then take the median of three runs.
        pipeline
            .session(RunOptions::trace(&prefix))
            .extract_reduced()
            .expect("extract");
        let mut samples: Vec<f64> = (0..3)
            .map(|_| {
                let t0 = Instant::now();
                pipeline
                    .session(RunOptions::trace(&prefix))
                    .extract_reduced()
                    .expect("extract");
                t0.elapsed().as_secs_f64() / n as f64
            })
            .collect();
        samples.sort_by(|a, b| a.total_cmp(b));
        samples[1]
    };

    let small = time_per_row(data.trace.len() / 8);
    let large = time_per_row(data.trace.len());
    let ratio = large / small.max(1e-12);
    assert!(
        ratio < 4.0,
        "per-row cost grew {ratio:.2}x over an 8x size range — super-linear scaling"
    );
}
