//! Acceptance contract of the `RuleSource` redesign: when boundary
//! inference recovers a layout *exactly*, the synthesized tables are a
//! drop-in replacement for authored ones — a pipeline run over the
//! `Inferred` catalog, and over the `Merged` catalog, is bit-identical to
//! the run over equivalent `Authored` tables. Merging is pure extension:
//! regions claimed by authored rules are never overridden.

use std::sync::Arc;

use ivnt::cluster::codec::encode_batch;
use ivnt::core::pipeline::{PipelineOutput, RunOptions};
use ivnt::core::prelude::*;
use ivnt::core::rules::RuleSet;
use ivnt::infer::{infer_trace, SignalClass};
use ivnt::protocol::{Protocol, RawKind, SignalSpec};
use ivnt::simulator::{Trace, TraceRecord};

/// Two full-range 8-bit wrapping fields at bytes 0 and 4 of one CAN
/// message, separated by constant padding — a layout inference recovers
/// exactly (every bit flips, boundaries sit on inactive bytes). The
/// second field strides by 3 so its bit pattern decorrelates from the
/// first (it classifies as sensor, not counter — only boundaries matter
/// for the bit-identity contract).
fn counter_trace(rows: u64) -> Trace {
    let bus: Arc<str> = Arc::from("B");
    let mut trace = Trace::new();
    for i in 0..rows {
        trace.push(TraceRecord {
            timestamp_us: i * 1_000,
            bus: Arc::clone(&bus),
            message_id: 0x77,
            payload: vec![
                (i & 0xFF) as u8,
                0x5A,
                0,
                0,
                (i.wrapping_mul(3) & 0xFF) as u8,
                0,
                0,
                0,
            ],
            protocol: Protocol::Can,
        });
    }
    trace
}

/// Authored tables for the same layout with the caller's signal names,
/// using the spec shape inference synthesizes (factor 1, no offset,
/// unsigned raw) so exact recovery implies rule-for-rule equality.
fn authored_rules(names: [&str; 2]) -> RuleSet {
    let mut rules = RuleSet::new();
    for (name, start) in [(names[0], 0u16), (names[1], 32u16)] {
        let spec = SignalSpec::builder(name, start, 8)
            .raw_kind(RawKind::Unsigned)
            .build()
            .expect("spec builds");
        rules.push_spec("B", 0x77, &spec, true, true, None);
    }
    rules
}

fn run(catalog: &RuleCatalog, trace: &Trace) -> PipelineOutput {
    Pipeline::from_catalog(catalog, DomainProfile::new("infer-rules"))
        .expect("pipeline builds")
        .session(RunOptions::trace(trace))
        .run()
        .expect("run succeeds")
}

/// Every output frame partition re-encoded, plus per-signal metadata;
/// byte-for-byte comparable.
fn fingerprint(output: &PipelineOutput) -> Vec<Vec<u8>> {
    let mut fp = Vec::new();
    for frame in [&output.extensions, &output.merged, &output.state] {
        fp.extend(frame.partitions().iter().map(encode_batch));
    }
    for s in &output.signals {
        fp.push(
            format!(
                "{}|{}|{}|{}",
                s.signal, s.classification.branch, s.rows_interpreted, s.rows_reduced
            )
            .into_bytes(),
        );
    }
    fp
}

#[test]
fn exact_recovery_is_bit_identical_to_authored_tables() {
    let trace = counter_trace(1024);
    let tables = infer_trace(&trace, &InferParams::default());

    // The layout is recovered exactly: both counters, full width, and the
    // constant padding claims nothing.
    let got: Vec<(u16, u16, SignalClass)> = tables
        .signals
        .iter()
        .map(|s| (s.start_bit, s.bit_len, s.class))
        .collect();
    assert_eq!(
        got,
        vec![(0, 8, SignalClass::Counter), (32, 8, SignalClass::Sensor)],
        "recovered layout: {:?}",
        tables.signals
    );

    // Authored tables written with the names inference synthesizes: exact
    // recovery implies rule-for-rule equality, so the runs — frames and
    // signal metadata alike — must be bit-identical.
    let authored = RuleCatalog::from_authored(authored_rules(["inf_077_0", "inf_077_32"]));
    let inferred = tables.to_catalog().expect("inferred catalog");
    assert_eq!(authored.source().label(), "authored");
    assert_eq!(inferred.source().label(), "inferred");
    assert_eq!(
        fingerprint(&run(&authored, &trace)),
        fingerprint(&run(&inferred, &trace)),
        "inferred-table run must be bit-identical to the authored run"
    );

    // Authored tables under the engineer's own names: exact recovery ⇒
    // every inferred region is already claimed, so merging adds nothing
    // and the merged run reproduces the authored run bit for bit.
    let own = RuleCatalog::from_authored(authored_rules(["ctr_lo", "ctr_hi"]));
    let merged = tables.merged_with(&own).expect("merged catalog");
    assert_eq!(merged.source().label(), "merged");
    assert_eq!(merged.rules().len(), own.rules().len());
    assert_eq!(
        fingerprint(&run(&own, &trace)),
        fingerprint(&run(&merged, &trace)),
        "merged-catalog run must be bit-identical to the authored run"
    );

    // Reusing an inferred name in the authored table is a typed conflict,
    // not a silent override.
    let clash = RuleCatalog::from_authored(authored_rules(["inf_077_0", "ctr_hi"]));
    assert!(matches!(
        tables.merged_with(&clash),
        Err(ivnt::core::Error::RuleConflict { .. })
    ));
}

#[test]
fn merge_only_fills_unclaimed_regions() {
    let trace = counter_trace(1024);
    let tables = infer_trace(&trace, &InferParams::default());

    // Author only the first counter; the merge may add the second but
    // must leave the authored rule untouched.
    let mut rules = RuleSet::new();
    let spec = SignalSpec::builder("ctr_lo", 0, 8)
        .raw_kind(RawKind::Unsigned)
        .build()
        .expect("spec builds");
    rules.push_spec("B", 0x77, &spec, true, true, None);
    let authored = RuleCatalog::from_authored(rules);

    let merged = tables.merged_with(&authored).expect("merged catalog");
    let names: Vec<&str> = merged
        .rules()
        .rules()
        .iter()
        .map(|r| r.signal.as_str())
        .collect();
    assert!(names.contains(&"ctr_lo"), "authored rule kept: {names:?}");
    assert!(
        names.contains(&"inf_077_32"),
        "unclaimed region filled from inference: {names:?}"
    );
    assert!(
        !names.contains(&"inf_077_0"),
        "claimed region must not be double-decoded: {names:?}"
    );
}
