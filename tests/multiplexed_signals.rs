//! Multiplexed CAN signals: the multiplexor's value gates which signals the
//! payload carries — the classic DBC `m<k>` case, a second flavour of
//! "values of preceding bytes define the presence of a signal" alongside
//! SOME/IP optional fields.

use std::sync::Arc;

use ivnt::core::prelude::*;
use ivnt::core::tabular::columns as c;
use ivnt::protocol::message::Protocol;
use ivnt::protocol::SignalSpec;
use ivnt::simulator::prelude::*;

/// A diagnostic message: byte 0 selects the page; bytes 1..3 carry either
/// oil data (page 0) or coolant data (page 1).
fn mux_trace() -> Trace {
    let rec = |t_ms: u64, page: u8, value: u16| TraceRecord {
        timestamp_us: t_ms * 1000,
        bus: Arc::from("PT"),
        message_id: 0x60,
        payload: {
            let mut p = vec![page, 0, 0];
            p[1..3].copy_from_slice(&value.to_le_bytes());
            p
        },
        protocol: Protocol::Can,
    };
    Trace::from_records(vec![
        rec(0, 0, 820),   // oil_temp raw
        rec(100, 1, 905), // coolant_temp raw
        rec(200, 0, 825),
        rec(300, 1, 910),
        rec(400, 0, 830),
    ])
}

fn mux_rules() -> RuleSet {
    let selector = SignalSpec::builder("diag_page", 0, 8).build().unwrap();
    let mut rules = RuleSet::new();
    // Both signals live at bytes 1..3; presence depends on the page.
    rules.push_multiplexed(
        "PT",
        0x60,
        selector.clone(),
        0,
        1,
        2,
        SignalSpec::builder("oil_temp", 0, 16)
            .factor(0.1)
            .offset(-40.0)
            .build()
            .unwrap(),
        None,
    );
    rules.push_multiplexed(
        "PT",
        0x60,
        selector,
        1,
        1,
        2,
        SignalSpec::builder("coolant_temp", 0, 16)
            .factor(0.1)
            .offset(-40.0)
            .build()
            .unwrap(),
        None,
    );
    rules
}

#[test]
fn multiplexed_signals_extract_per_page() {
    let pipeline = Pipeline::new(mux_rules(), DomainProfile::new("mux")).expect("pipeline");
    let ks = pipeline
        .session(RunOptions::trace(&mux_trace()))
        .extract()
        .expect("extract")
        .frame;
    let rows = ks
        .sort_by(&[c::T, c::SIGNAL], &[true, true])
        .expect("sort")
        .collect_rows()
        .expect("rows");
    // 3 oil pages + 2 coolant pages.
    let oil: Vec<f64> = rows
        .iter()
        .filter(|r| r[1].as_str() == Some("oil_temp"))
        .map(|r| r[3].as_float().expect("value"))
        .collect();
    let coolant: Vec<f64> = rows
        .iter()
        .filter(|r| r[1].as_str() == Some("coolant_temp"))
        .map(|r| r[3].as_float().expect("value"))
        .collect();
    assert_eq!(oil.len(), 3);
    assert_eq!(coolant.len(), 2);
    assert!((oil[0] - 42.0).abs() < 1e-9); // 820 * 0.1 - 40
    assert!((coolant[0] - 50.5).abs() < 1e-9); // 905 * 0.1 - 40
}

#[test]
fn wrong_page_instances_are_dropped_not_nulled() {
    let pipeline = Pipeline::new(mux_rules(), DomainProfile::new("mux")).expect("pipeline");
    let ks = pipeline
        .session(RunOptions::trace(&mux_trace()))
        .extract()
        .expect("extract")
        .frame;
    assert_eq!(ks.num_rows(), 5); // 3 + 2, not 5 * 2
    for r in ks.collect_rows().expect("rows") {
        assert!(!r[3].is_null(), "dropped instance leaked as null: {r:?}");
    }
}

#[test]
fn multiplexed_signals_flow_through_pipeline() {
    let output = Pipeline::new(mux_rules(), DomainProfile::new("mux"))
        .expect("pipeline")
        .session(RunOptions::trace(&mux_trace()))
        .run()
        .expect("run");
    assert_eq!(output.signals.len(), 2);
    assert!(output.state.schema().contains("oil_temp"));
    assert!(output.state.schema().contains("coolant_temp"));
    // Page-interleaved values forward-fill correctly in the state table.
    let rows = output.state.collect_rows().expect("rows");
    let last = rows.last().expect("rows exist");
    assert!(!last[1].is_null() && !last[2].is_null());
}
