//! Tier-1 acceptance for the parallel branch pipeline: fanning the
//! per-signal work (dedup → reduce → extend → classify → branch) over the
//! worker pool must be bit-identical to the sequential reference path, for
//! any worker count. The exhaustive kernel-level equivalences live in
//! `crates/series/tests/`; this is the root-level contract, mirroring
//! `cluster_extraction.rs` for the distributed layer.

use ivnt::cluster::codec::encode_batch;
use ivnt::core::pipeline::PipelineOutput;
use ivnt::core::prelude::*;
use ivnt::simulator::prelude::*;

fn dataset() -> GeneratedDataSet {
    generate(&DataSetSpec::syn().with_seed(23).with_target_examples(8_000)).expect("generate")
}

/// Re-encodes every output frame partition plus the per-signal metadata.
/// `timing` is measurement, not output, and is deliberately excluded.
fn fingerprint(output: &PipelineOutput) -> Vec<Vec<u8>> {
    let mut fp = Vec::new();
    for frame in [&output.extensions, &output.merged, &output.state] {
        fp.extend(frame.partitions().iter().map(encode_batch));
    }
    for s in &output.signals {
        fp.push(
            format!(
                "{} {:?} {} {:?} {:?} {} {}",
                s.signal,
                s.classification,
                s.representative_channel,
                s.corresponding_channels,
                s.mismatched_channels,
                s.rows_interpreted,
                s.rows_reduced
            )
            .into_bytes(),
        );
        fp.extend(s.frame.partitions().iter().map(encode_batch));
    }
    fp
}

/// A profile with extensions on two signals, so the rule-major extension
/// gather is exercised, not just the empty-frame fast path.
fn profile(data: &GeneratedDataSet, name: &str) -> DomainProfile {
    let mut signals: Vec<String> = RuleSet::from_network(&data.network)
        .rules()
        .iter()
        .map(|r| r.signal.clone())
        .collect();
    signals.sort();
    signals.dedup();
    let mut profile = DomainProfile::new(name);
    for signal in signals.iter().take(2) {
        profile = profile.with_extension(ExtensionRule::Gap {
            signal: signal.clone(),
            alias: format!("{signal}Gap"),
        });
    }
    profile
}

#[test]
fn parallel_pipeline_matches_serial_bit_for_bit() {
    let data = dataset();
    let u_rel = RuleSet::from_network(&data.network);

    let serial = Pipeline::new(u_rel.clone(), profile(&data, "serial").with_workers(1))
        .expect("pipeline")
        .session(RunOptions::trace(&data.trace).serial())
        .run()
        .expect("run_serial");
    let expected = fingerprint(&serial);
    assert!(serial.merged.num_rows() > 0);
    assert!(serial.extensions.num_rows() > 0, "extensions exercised");

    for workers in [1usize, 2, 8] {
        let run = Pipeline::new(u_rel.clone(), profile(&data, "par").with_workers(workers))
            .expect("pipeline")
            .session(RunOptions::trace(&data.trace))
            .run()
            .expect("run");
        assert_eq!(
            fingerprint(&run),
            expected,
            "parallel output diverged at {workers} workers"
        );
    }
}

#[test]
fn one_worker_session_skips_the_scatter_machinery() {
    use ivnt::core::pipeline::RunOptions;
    let data = dataset();
    let u_rel = RuleSet::from_network(&data.network);

    // `pipeline_scatter_total` is bumped exactly when the per-signal
    // fan-out goes through the executor. At 1 effective worker the session
    // must take the serial loop — a 1-worker pool is pure round-trip
    // overhead — while >=2 workers must still scatter.
    let mut scatters = Vec::new();
    for workers in [1usize, 2] {
        let pipeline = Pipeline::new(
            u_rel.clone(),
            profile(&data, "scatter").with_workers(workers),
        )
        .expect("pipeline");
        let registry = std::sync::Arc::new(ivnt::obs::Registry::new());
        pipeline
            .session(
                RunOptions::trace(&data.trace).with_subscriber(std::sync::Arc::clone(&registry)),
            )
            .run()
            .expect("run");
        let snapshot = registry.snapshot();
        scatters.push(
            snapshot
                .counters
                .get("pipeline_scatter_total")
                .copied()
                .unwrap_or(0),
        );
    }
    assert_eq!(scatters, vec![0, 1], "serial fast path at 1 worker only");
}

#[test]
fn timing_is_populated_but_not_part_of_the_output_contract() {
    let data = dataset();
    let u_rel = RuleSet::from_network(&data.network);
    let output = Pipeline::new(u_rel, profile(&data, "timing").with_workers(2))
        .expect("pipeline")
        .session(RunOptions::trace(&data.trace))
        .run()
        .expect("run");
    let t = output.timing;
    assert!(t.total > 0.0);
    // Every stage ran on this workload, so every stage took some time.
    for (name, secs) in [
        ("interpret", t.interpret),
        ("split", t.split),
        ("dedup", t.dedup),
        ("reduce", t.reduce),
        ("classify", t.classify),
        ("branch", t.branch),
        ("merge", t.merge),
        ("state", t.state),
    ] {
        assert!(secs >= 0.0, "{name} negative");
    }
    assert!(t.total.is_finite());
}
