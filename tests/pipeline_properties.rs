//! Property tests over the whole pipeline: invariants that must hold for
//! arbitrary (small) generated networks and traces.

use ivnt::core::prelude::*;
use ivnt::core::tabular::columns as c;
use ivnt::simulator::prelude::*;
use ivnt::simulator::scenario::{generate, DataSetSpec};
use proptest::prelude::*;

/// A small randomized data-set spec (shape only; content is seeded).
fn arb_spec() -> impl Strategy<Value = DataSetSpec> {
    (
        1usize..4, // alpha
        0usize..4, // beta
        0usize..4, // gamma
        1u64..500, // seed
        any::<bool>(),
    )
        .prop_map(|(a, b, g, seed, gateway)| DataSetSpec {
            name: "PROP".into(),
            n_alpha: a,
            n_beta: b,
            n_gamma: g,
            signals_per_message: 2.0,
            duration_s: 4.0,
            seed,
            with_gateway: gateway,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// K_s never exceeds (trace rows x rules) and reduction never grows a
    /// sequence; every per-signal output keeps the homogeneous schema.
    #[test]
    fn pipeline_invariants(spec in arb_spec()) {
        let data = generate(&spec).expect("generate");
        let u_rel = RuleSet::from_network(&data.network);
        let n_rules = u_rel.len();
        let pipeline = Pipeline::new(u_rel, DomainProfile::new("prop")).expect("pipeline");

        let ks = pipeline.session(RunOptions::trace(&data.trace)).extract().expect("extract").frame;
        prop_assert!(ks.num_rows() <= data.trace.len() * n_rules.max(1));

        let output = pipeline.session(RunOptions::trace(&data.trace)).run().expect("run");
        for s in &output.signals {
            prop_assert!(s.rows_reduced <= s.rows_interpreted,
                "{}: reduced {} > interpreted {}", s.signal, s.rows_reduced, s.rows_interpreted);
            prop_assert_eq!(s.frame.num_rows(), s.rows_reduced);
            prop_assert_eq!(s.frame.schema().len(), 7); // homogeneous schema
        }
        // Merged rows = sum of per-signal rows + extension rows.
        let per_signal: usize = output.signals.iter().map(|s| s.rows_reduced).sum();
        prop_assert_eq!(
            output.merged.num_rows(),
            per_signal + output.extensions.num_rows()
        );
    }

    /// The state representation has one row per distinct merged timestamp,
    /// is time-sorted, and its cells are forward-filled (no null after a
    /// signal's first occurrence).
    #[test]
    fn state_representation_invariants(spec in arb_spec()) {
        let data = generate(&spec).expect("generate");
        let u_rel = RuleSet::from_network(&data.network);
        let output = Pipeline::new(u_rel, DomainProfile::new("prop"))
            .expect("pipeline")
            .session(RunOptions::trace(&data.trace)).run()
            .expect("run");

        let merged_ts: std::collections::BTreeSet<u64> = output
            .merged
            .column_values(c::T)
            .expect("t")
            .iter()
            .filter_map(|v| v.as_float().map(f64::to_bits))
            .collect();
        prop_assert_eq!(output.state.num_rows(), merged_ts.len());

        let state_ts: Vec<f64> = output
            .state
            .column_values(c::T)
            .expect("t")
            .iter()
            .filter_map(|v| v.as_float())
            .collect();
        prop_assert!(state_ts.windows(2).all(|w| w[0] <= w[1]));

        // Forward fill: once non-null, a column never reverts to null.
        let rows = output.state.collect_rows().expect("rows");
        for col in 1..output.state.schema().len() {
            let mut seen = false;
            for r in &rows {
                if !r[col].is_null() {
                    seen = true;
                } else {
                    prop_assert!(!seen, "column {col} reverted to null");
                }
            }
        }
    }

    /// Gateway dedup halves the processed instances and never changes the
    /// merged result (the gateway copy is byte-identical).
    #[test]
    fn dedup_preserves_output(seed in 1u64..300) {
        let spec = DataSetSpec {
            name: "GW".into(),
            n_alpha: 2,
            n_beta: 1,
            n_gamma: 1,
            signals_per_message: 2.0,
            duration_s: 4.0,
            seed,
            with_gateway: true,
        };
        let data = generate(&spec).expect("generate");
        let u_rel = RuleSet::from_network(&data.network);
        let with = Pipeline::new(u_rel.clone(), DomainProfile::new("with"))
            .expect("pipeline")
            .session(RunOptions::trace(&data.trace)).run()
            .expect("run");
        // Every signal's representative covers its gateway copy.
        for s in &with.signals {
            prop_assert_eq!(s.corresponding_channels.len(), 1, "{}", s.signal);
            prop_assert!(s.mismatched_channels.is_empty());
        }
    }

    /// The scatter/gather path is bit-identical to the sequential
    /// reference for arbitrary generated networks and worker counts
    /// (timing excluded — it is measurement, not output).
    #[test]
    fn parallel_run_matches_serial_reference(spec in arb_spec(), workers in 1usize..5) {
        let data = generate(&spec).expect("generate");
        let u_rel = RuleSet::from_network(&data.network);
        let pipeline = Pipeline::new(
            u_rel,
            DomainProfile::new("par").with_workers(workers),
        )
        .expect("pipeline");
        let serial = pipeline.session(RunOptions::trace(&data.trace).serial()).run().expect("run_serial");
        let parallel = pipeline.session(RunOptions::trace(&data.trace)).run().expect("run");
        prop_assert_eq!(serial.signals.len(), parallel.signals.len());
        for (s, p) in serial.signals.iter().zip(&parallel.signals) {
            prop_assert_eq!(&s.signal, &p.signal);
            prop_assert_eq!(&s.classification, &p.classification);
            prop_assert_eq!(
                s.frame.collect_rows().expect("rows"),
                p.frame.collect_rows().expect("rows")
            );
        }
        prop_assert_eq!(
            serial.extensions.collect_rows().expect("rows"),
            parallel.extensions.collect_rows().expect("rows")
        );
        prop_assert_eq!(
            serial.merged.collect_rows().expect("rows"),
            parallel.merged.collect_rows().expect("rows")
        );
        prop_assert_eq!(
            serial.state.collect_rows().expect("rows"),
            parallel.state.collect_rows().expect("rows")
        );
    }

    /// Trace serialization roundtrips for arbitrary generated traces.
    #[test]
    fn trace_roundtrip(spec in arb_spec()) {
        let data = generate(&spec).expect("generate");
        let mut buf = Vec::new();
        data.trace.write_to(&mut buf).expect("write");
        let reloaded = Trace::read_from(buf.as_slice()).expect("read");
        prop_assert_eq!(reloaded, data.trace);
    }

    /// Cluster reduction never keeps more rows than plain repeat removal
    /// keeps, for any k.
    #[test]
    fn cluster_reduction_bounded(seed in 1u64..200, k in 1usize..6) {
        let spec = DataSetSpec {
            name: "CL".into(),
            n_alpha: 2,
            n_beta: 0,
            n_gamma: 0,
            signals_per_message: 2.0,
            duration_s: 4.0,
            seed,
            with_gateway: false,
        };
        let data = generate(&spec).expect("generate");
        let u_rel = RuleSet::from_network(&data.network);
        let plain = Pipeline::new(u_rel.clone(), DomainProfile::new("plain"))
            .expect("pipeline")
            .session(RunOptions::trace(&data.trace)).run()
            .expect("run");
        let clustered = Pipeline::new(
            u_rel,
            DomainProfile::new("cluster").with_reduction(Reduction::Cluster {
                k,
                max_iterations: 20,
            }),
        )
        .expect("pipeline")
        .session(RunOptions::trace(&data.trace)).run()
        .expect("run");
        for (p, q) in plain.signals.iter().zip(&clustered.signals) {
            prop_assert!(q.rows_reduced <= p.rows_reduced,
                "{}: cluster {} > plain {}", p.signal, q.rows_reduced, p.rows_reduced);
        }
    }
}
