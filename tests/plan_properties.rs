//! Property tests for the multi-query planner: for arbitrary small
//! networks and arbitrary query batches — overlapping, disjoint, windowed,
//! empty, any mix — the shared scan's per-query extraction is bit-identical
//! to the solo session's, and a reused [`Planner`] replays the same bytes
//! from its cache.

use std::io::Cursor;

use ivnt::core::pipeline::{DomainProfile, Pipeline, RunOptions};
use ivnt::core::rules::RuleSet;
use ivnt::plan::{Planner, Query, SessionMany};
use ivnt::simulator::scenario::{generate, DataSetSpec, GeneratedDataSet};
use ivnt::simulator::store::to_store_record;
use ivnt::store::{StoreReader, StoreWriter, WriterOptions};
use proptest::prelude::*;

/// A small randomized data-set spec (shape only; content is seeded).
fn arb_spec() -> impl Strategy<Value = DataSetSpec> {
    (
        1usize..4, // alpha
        0usize..3, // beta
        0usize..3, // gamma
        1u64..500, // seed
        any::<bool>(),
    )
        .prop_map(|(a, b, g, seed, gateway)| DataSetSpec {
            name: "PLANPROP".into(),
            n_alpha: a,
            n_beta: b,
            n_gamma: g,
            signals_per_message: 2.0,
            duration_s: 3.0,
            seed,
            with_gateway: gateway,
        })
}

/// Deterministic mixer for deriving query shapes from one seed.
fn lcg(state: &mut u64) -> u64 {
    *state = state
        .wrapping_mul(6_364_136_223_846_793_005)
        .wrapping_add(1_442_695_040_888_963_407);
    *state >> 33
}

/// Catalog signal names in message-id order.
fn signal_names(data: &GeneratedDataSet) -> Vec<String> {
    let mut messages: Vec<(u32, Vec<String>)> = data
        .network
        .catalog()
        .messages()
        .iter()
        .map(|m| {
            (
                m.id(),
                m.signals().iter().map(|s| s.name().to_string()).collect(),
            )
        })
        .collect();
    messages.sort_by_key(|(id, _)| *id);
    messages.into_iter().flat_map(|(_, s)| s).collect()
}

fn write_store(data: &GeneratedDataSet) -> Vec<u8> {
    let options = WriterOptions {
        chunk_rows: 128,
        chunks_per_group: 2,
        cluster: true,
    };
    let mut writer = StoreWriter::new(Vec::new(), options).expect("create store");
    for r in data.trace.records() {
        writer.append(&to_store_record(r)).expect("append");
    }
    writer.finish().expect("finish")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Merged-predicate shared extraction ≡ per-query solo extraction, for
    /// random query sets over random networks: signals assigned randomly
    /// (some domains overlap, some stay disjoint, some end up empty) and
    /// optionally windowed (sometimes to an empty range). A second pass
    /// through the same planner must be answered entirely from cache with
    /// the same bytes.
    #[test]
    fn shared_extraction_equals_solo_sessions(
        spec in arb_spec(),
        n_queries in 1usize..4,
        shape_seed in any::<u64>(),
        windowed in any::<bool>(),
    ) {
        let data = generate(&spec).expect("generate");
        let bytes = write_store(&data);
        let names = signal_names(&data);
        let last_us = data
            .trace
            .records()
            .iter()
            .map(|r| r.timestamp_us)
            .max()
            .unwrap_or(0);

        // Random signal assignment: domain `n_queries` means "unassigned",
        // and a quarter of assigned signals are claimed twice (overlap).
        let mut s = shape_seed | 1;
        let mut domains: Vec<Vec<String>> = vec![Vec::new(); n_queries];
        for name in &names {
            let d = (lcg(&mut s) as usize) % (n_queries + 1);
            if d < n_queries {
                domains[d].push(name.clone());
                if n_queries > 1 && lcg(&mut s).is_multiple_of(4) {
                    domains[(d + 1) % n_queries].push(name.clone());
                }
            }
        }
        let windows: Vec<Option<(u64, u64)>> = (0..n_queries)
            .map(|_| {
                if windowed && lcg(&mut s).is_multiple_of(2) {
                    let a = lcg(&mut s) % 10;
                    let b = lcg(&mut s) % 10;
                    // 9/8 overshoots the trace end: sometimes empty.
                    Some((last_us * a.min(b) / 8, last_us * a.max(b) / 8))
                } else {
                    None
                }
            })
            .collect();

        // An empty selection means "whole catalog" (DomainProfile
        // semantics) — a legitimate, maximally overlapping tenant.
        let pipelines: Vec<Pipeline> = domains
            .iter()
            .map(|d| {
                let selected: Vec<&str> = d.iter().map(String::as_str).collect();
                let profile = DomainProfile::new("prop").with_signals(selected);
                Pipeline::new(RuleSet::from_network(&data.network), profile)
                    .expect("pipeline builds")
            })
            .collect();

        let make_queries = || -> Vec<Query<'_>> {
            pipelines
                .iter()
                .zip(&windows)
                .map(|(p, w)| match w {
                    Some((from, to)) => Query::new(p).with_window(*from, *to),
                    None => Query::new(p),
                })
                .collect()
        };

        let mut planner = Planner::new();
        let mut reader =
            StoreReader::from_reader(Cursor::new(bytes.clone())).expect("open store");
        let multi = Pipeline::session_many(make_queries(), &mut reader)
            .with_planner(&mut planner)
            .extract()
            .expect("shared extract");
        prop_assert_eq!(multi.frames.len(), n_queries);

        for (qi, qx) in multi.frames.iter().enumerate() {
            let mut solo_reader =
                StoreReader::from_reader(Cursor::new(bytes.clone())).expect("open store");
            let mut opts = RunOptions::store(&mut solo_reader);
            if let Some((from, to)) = windows[qi] {
                opts = opts.with_time_window(from, to);
            }
            let want = pipelines[qi].session(opts).extract().expect("solo").frame;
            prop_assert_eq!(qx.frame.schema(), want.schema(), "query {} schema", qi);
            prop_assert_eq!(
                qx.frame.collect_rows().expect("shared rows"),
                want.collect_rows().expect("solo rows"),
                "query {} diverged from its solo session",
                qi
            );
        }

        // Identical batch, same store: answered entirely from cache, with
        // the same bytes. (Duplicate queries in the first batch may have
        // filled distinct-fingerprint slots only once; every fingerprint
        // present is now cached.)
        let mut reader =
            StoreReader::from_reader(Cursor::new(bytes)).expect("open store");
        let warm = Pipeline::session_many(make_queries(), &mut reader)
            .with_planner(&mut planner)
            .extract()
            .expect("warm extract");
        prop_assert_eq!(warm.plan.cache_hits, n_queries, "all queries must hit");
        prop_assert!(warm.plan.scan.is_none(), "no scan on an all-hit batch");
        for (w, c) in warm.frames.iter().zip(&multi.frames) {
            prop_assert!(w.stats.cache_hit);
            prop_assert_eq!(
                w.frame.collect_rows().expect("warm rows"),
                c.frame.collect_rows().expect("cold rows")
            );
        }
    }
}
