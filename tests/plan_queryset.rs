//! Cross-crate integration: the multi-query planner's bit-identity
//! contract.
//!
//! `Pipeline::session_many` answers N queries from one shared store pass;
//! every answer must be bit-identical to running the same query as its own
//! [`Pipeline::session`]. Covered here: the signal-disjoint union-kernel
//! fast path, the overlapping-signal fallback, windowed queries, queries
//! the zone maps prune entirely, and cache hits on a reused [`Planner`].

use std::io::Cursor;
use std::sync::OnceLock;

use ivnt::core::pipeline::{Pipeline, PipelineOutput, RunOptions};
use ivnt::frame::frame::DataFrame;
use ivnt::plan::{Planner, Query, SessionMany};
use ivnt::simulator::store::to_store_record;
use ivnt::store::{StoreReader, StoreWriter, WriterOptions};
use ivnt_bench::{disjoint_domains, domain_pipeline, vehicle_journey};

struct Fixture {
    data: ivnt::simulator::scenario::GeneratedDataSet,
    bytes: Vec<u8>,
}

static FIXTURE: OnceLock<Fixture> = OnceLock::new();

fn fixture() -> &'static Fixture {
    FIXTURE.get_or_init(|| {
        let data = vehicle_journey(12_000, 9).expect("workload generates");
        let options = WriterOptions {
            chunk_rows: 256,
            chunks_per_group: 4,
            cluster: true,
        };
        let mut writer = StoreWriter::new(Vec::new(), options).expect("create store");
        for r in data.trace.records() {
            writer.append(&to_store_record(r)).expect("append");
        }
        let bytes = writer.finish().expect("finish");
        Fixture { data, bytes }
    })
}

fn reader(fx: &Fixture) -> StoreReader<Cursor<Vec<u8>>> {
    StoreReader::from_reader(Cursor::new(fx.bytes.clone())).expect("open store")
}

fn assert_frames_eq(got: &DataFrame, want: &DataFrame, what: &str) {
    assert_eq!(got.schema(), want.schema(), "{what}: schema diverged");
    assert_eq!(
        got.collect_rows().expect("got rows"),
        want.collect_rows().expect("want rows"),
        "{what}: rows diverged"
    );
}

fn assert_outputs_eq(got: &PipelineOutput, want: &PipelineOutput, what: &str) {
    assert_eq!(
        got.signals.len(),
        want.signals.len(),
        "{what}: signal count"
    );
    for (g, w) in got.signals.iter().zip(&want.signals) {
        assert_eq!(g.signal, w.signal, "{what}: signal order");
        assert_eq!(g.classification, w.classification, "{what}/{}", g.signal);
        assert_eq!(
            g.representative_channel, w.representative_channel,
            "{what}/{}: representative",
            g.signal
        );
        assert_eq!(
            g.corresponding_channels, w.corresponding_channels,
            "{what}/{}: corresponding",
            g.signal
        );
        assert_eq!(
            g.mismatched_channels, w.mismatched_channels,
            "{what}/{}: mismatched",
            g.signal
        );
        assert_eq!(
            g.rows_interpreted, w.rows_interpreted,
            "{what}/{}: rows_interpreted",
            g.signal
        );
        assert_eq!(
            g.rows_reduced, w.rows_reduced,
            "{what}/{}: rows_reduced",
            g.signal
        );
        assert_frames_eq(&g.frame, &w.frame, &format!("{what}/{} K_res", g.signal));
    }
    assert_frames_eq(&got.extensions, &want.extensions, &format!("{what}: W"));
    assert_frames_eq(&got.merged, &want.merged, &format!("{what}: K_rep"));
    assert_frames_eq(&got.state, &want.state, &format!("{what}: state"));
}

fn solo_extract(p: &Pipeline, fx: &Fixture, window: Option<(u64, u64)>) -> DataFrame {
    let mut r = reader(fx);
    let mut opts = RunOptions::store(&mut r);
    if let Some((from, to)) = window {
        opts = opts.with_time_window(from, to);
    }
    p.session(opts).extract().expect("solo extract").frame
}

fn solo_run(p: &Pipeline, fx: &Fixture, window: Option<(u64, u64)>) -> PipelineOutput {
    let mut r = reader(fx);
    let mut opts = RunOptions::store(&mut r);
    if let Some((from, to)) = window {
        opts = opts.with_time_window(from, to);
    }
    p.session(opts).run().expect("solo run")
}

/// Disjoint-signal tenants: the union kernel runs once, yet every query's
/// extraction and full output match its solo session bit for bit.
#[test]
fn disjoint_domains_share_one_interpret_pass_bit_identically() {
    let fx = fixture();
    let domains: Vec<Vec<String>> = disjoint_domains(&fx.data, 4)
        .into_iter()
        .map(|mut d| {
            d.truncate(12);
            d
        })
        .collect();
    let pipelines: Vec<Pipeline> = domains
        .iter()
        .map(|d| domain_pipeline(&fx.data, d).expect("pipeline builds"))
        .collect();

    let mut r = reader(fx);
    let queries: Vec<Query<'_>> = pipelines
        .iter()
        .enumerate()
        .map(|(i, p)| Query::new(p).with_label(format!("dom{i}")))
        .collect();
    let multi = Pipeline::session_many(queries, &mut r)
        .extract()
        .expect("shared extract");

    assert!(multi.plan.shared_interpret, "disjoint domains must share");
    assert_eq!(multi.plan.queries, 4);
    assert_eq!(multi.plan.cache_misses, 4);
    assert_eq!(multi.plan.scans_saved, 3, "4 queries, 1 scan");
    assert!(multi.plan.scan.is_some(), "a scan must have run");
    for (i, (qx, p)) in multi.frames.iter().zip(&pipelines).enumerate() {
        assert_eq!(qx.label, format!("dom{i}"));
        assert!(!qx.stats.cache_hit);
        assert!(qx.stats.rows_routed > 0, "dom{i} routed no rows");
        let want = solo_extract(p, fx, None);
        assert_frames_eq(&qx.frame, &want, &format!("dom{i} K_s"));
    }

    let mut r = reader(fx);
    let queries: Vec<Query<'_>> = pipelines.iter().map(Query::new).collect();
    let multi = Pipeline::session_many(queries, &mut r)
        .run()
        .expect("shared run");
    for (i, (qr, p)) in multi.results.iter().zip(&pipelines).enumerate() {
        let want = solo_run(p, fx, None);
        assert_outputs_eq(&qr.output, &want, &format!("dom{i}"));
    }
}

/// Overlapping signal sets force the per-query fallback; identity holds.
#[test]
fn overlapping_domains_fall_back_and_stay_identical() {
    let fx = fixture();
    let base = disjoint_domains(&fx.data, 2);
    let mut a = base[0].clone();
    a.truncate(10);
    let mut b = base[1].clone();
    b.truncate(10);
    // Claim one of a's signals in b too: ownership is now ambiguous.
    b.push(a[0].clone());
    let pa = domain_pipeline(&fx.data, &a).expect("pipeline a");
    let pb = domain_pipeline(&fx.data, &b).expect("pipeline b");

    let mut r = reader(fx);
    let multi = Pipeline::session_many(vec![Query::new(&pa), Query::new(&pb)], &mut r)
        .extract()
        .expect("shared extract");
    assert!(
        !multi.plan.shared_interpret,
        "overlapping signals must not share the kernel"
    );
    assert_frames_eq(
        &multi.frames[0].frame,
        &solo_extract(&pa, fx, None),
        "overlap a",
    );
    assert_frames_eq(
        &multi.frames[1].frame,
        &solo_extract(&pb, fx, None),
        "overlap b",
    );

    let mut r = reader(fx);
    let multi = Pipeline::session_many(vec![Query::new(&pa), Query::new(&pb)], &mut r)
        .run()
        .expect("shared run");
    assert_outputs_eq(&multi.results[0].output, &solo_run(&pa, fx, None), "a");
    assert_outputs_eq(&multi.results[1].output, &solo_run(&pb, fx, None), "b");
}

/// A windowed query matches a solo session restricted by
/// [`RunOptions::with_time_window`]; mixing windowed and full queries in
/// one batch disables the union kernel but not the shared scan.
#[test]
fn windowed_queries_match_windowed_solo_sessions() {
    let fx = fixture();
    let last = fx
        .data
        .trace
        .records()
        .iter()
        .map(|r| r.timestamp_us)
        .max()
        .unwrap_or(0);
    let window = (last / 4, last / 2);

    let domains = disjoint_domains(&fx.data, 2);
    let mut a = domains[0].clone();
    a.truncate(8);
    let mut b = domains[1].clone();
    b.truncate(8);
    let pa = domain_pipeline(&fx.data, &a).expect("pipeline a");
    let pb = domain_pipeline(&fx.data, &b).expect("pipeline b");

    let mut r = reader(fx);
    let queries = vec![
        Query::new(&pa).with_window(window.0, window.1),
        Query::new(&pb),
    ];
    let multi = Pipeline::session_many(queries, &mut r)
        .extract()
        .expect("shared extract");
    assert!(
        !multi.plan.shared_interpret,
        "a windowed query must disable the union kernel"
    );
    assert_frames_eq(
        &multi.frames[0].frame,
        &solo_extract(&pa, fx, Some(window)),
        "windowed a",
    );
    assert_frames_eq(&multi.frames[1].frame, &solo_extract(&pb, fx, None), "b");

    let mut r = reader(fx);
    let queries = vec![
        Query::new(&pa).with_window(window.0, window.1),
        Query::new(&pb),
    ];
    let multi = Pipeline::session_many(queries, &mut r)
        .run()
        .expect("shared run");
    assert_outputs_eq(
        &multi.results[0].output,
        &solo_run(&pa, fx, Some(window)),
        "windowed a",
    );
    assert_outputs_eq(&multi.results[1].output, &solo_run(&pb, fx, None), "b");
}

/// A query whose window excludes the whole trace still gets the store
/// source's empty-frame padding, exactly like its solo session.
#[test]
fn fully_pruned_query_matches_solo_empty_extraction() {
    let fx = fixture();
    let last = fx
        .data
        .trace
        .records()
        .iter()
        .map(|r| r.timestamp_us)
        .max()
        .unwrap_or(0);
    let window = (last + 1_000_000, last + 2_000_000);

    let domains = disjoint_domains(&fx.data, 2);
    let mut a = domains[0].clone();
    a.truncate(6);
    let pa = domain_pipeline(&fx.data, &a).expect("pipeline a");
    let mut b = domains[1].clone();
    b.truncate(6);
    let pb = domain_pipeline(&fx.data, &b).expect("pipeline b");

    let mut r = reader(fx);
    let queries = vec![
        Query::new(&pa).with_window(window.0, window.1),
        Query::new(&pb),
    ];
    let multi = Pipeline::session_many(queries, &mut r)
        .extract()
        .expect("shared extract");
    assert_eq!(multi.frames[0].stats.rows_routed, 0);
    assert_eq!(
        multi.frames[0].frame.num_rows(),
        0,
        "window is past the end"
    );
    assert_frames_eq(
        &multi.frames[0].frame,
        &solo_extract(&pa, fx, Some(window)),
        "pruned a",
    );
    assert_frames_eq(&multi.frames[1].frame, &solo_extract(&pb, fx, None), "b");
}

/// A reused [`Planner`] answers repeated queries from its cache, and the
/// cached answer is the same bytes the scan produced.
#[test]
fn cache_hits_replay_bit_identical_results() {
    let fx = fixture();
    let domains: Vec<Vec<String>> = disjoint_domains(&fx.data, 2)
        .into_iter()
        .map(|mut d| {
            d.truncate(10);
            d
        })
        .collect();
    let pipelines: Vec<Pipeline> = domains
        .iter()
        .map(|d| domain_pipeline(&fx.data, d).expect("pipeline builds"))
        .collect();

    let mut planner = Planner::new();

    let mut r = reader(fx);
    let queries: Vec<Query<'_>> = pipelines.iter().map(Query::new).collect();
    let cold = Pipeline::session_many(queries, &mut r)
        .with_planner(&mut planner)
        .run()
        .expect("cold run");
    assert_eq!(cold.plan.cache_hits, 0);
    assert_eq!(cold.plan.cache_misses, 2);
    assert_eq!(planner.cached(), 2);

    let mut r = reader(fx);
    let queries: Vec<Query<'_>> = pipelines.iter().map(Query::new).collect();
    let warm = Pipeline::session_many(queries, &mut r)
        .with_planner(&mut planner)
        .run()
        .expect("warm run");
    assert_eq!(warm.plan.cache_hits, 2);
    assert_eq!(warm.plan.cache_misses, 0);
    assert_eq!(warm.plan.scans_saved, 2, "both scans came from the cache");
    assert!(warm.plan.scan.is_none(), "no scan on an all-hit batch");
    for (w, c) in warm.results.iter().zip(&cold.results) {
        assert!(w.stats.cache_hit);
        assert_outputs_eq(&w.output, &c.output, "warm vs cold");
    }

    // A half-new batch: the known query hits, the new one joins the scan.
    let third = {
        let all = disjoint_domains(&fx.data, 3);
        let mut d = all[2].clone();
        d.truncate(7);
        d
    };
    let pc = domain_pipeline(&fx.data, &third).expect("pipeline c");
    let mut r = reader(fx);
    let mixed = Pipeline::session_many(vec![Query::new(&pipelines[0]), Query::new(&pc)], &mut r)
        .with_planner(&mut planner)
        .run()
        .expect("mixed run");
    assert_eq!(mixed.plan.cache_hits, 1);
    assert_eq!(mixed.plan.cache_misses, 1);
    assert!(mixed.results[0].stats.cache_hit);
    assert!(!mixed.results[1].stats.cache_hit);
    assert_outputs_eq(&mixed.results[0].output, &cold.results[0].output, "hit");
    assert_outputs_eq(&mixed.results[1].output, &solo_run(&pc, fx, None), "miss");
}

/// The serial oracle and the parallel fan-out agree (the planner's analog
/// of the pipeline's own serial/parallel determinism guarantee).
#[test]
fn serial_and_parallel_multi_runs_agree() {
    let fx = fixture();
    let domains: Vec<Vec<String>> = disjoint_domains(&fx.data, 2)
        .into_iter()
        .map(|mut d| {
            d.truncate(8);
            d
        })
        .collect();
    let pipelines: Vec<Pipeline> = domains
        .iter()
        .map(|d| domain_pipeline(&fx.data, d).expect("pipeline builds"))
        .collect();

    let mut r = reader(fx);
    let queries: Vec<Query<'_>> = pipelines.iter().map(Query::new).collect();
    let parallel = Pipeline::session_many(queries, &mut r)
        .run()
        .expect("parallel run");
    let mut r = reader(fx);
    let queries: Vec<Query<'_>> = pipelines.iter().map(Query::new).collect();
    let serial = Pipeline::session_many(queries, &mut r)
        .serial()
        .run()
        .expect("serial run");
    for (p, s) in parallel.results.iter().zip(&serial.results) {
        assert_outputs_eq(&p.output, &s.output, "serial vs parallel");
    }
}
