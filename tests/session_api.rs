//! Regression contract for the `Pipeline::session` API redesign: every
//! legacy entry point (`run`, `run_serial`, `extract`,
//! `extract_without_preselection`, `extract_reduced`,
//! `extract_from_store`, `extract_from_store_with_stats`,
//! `extract_store_shard`) must be bit-identical to the equivalent
//! [`RunOptions`]-configured session, and installing an observability
//! subscriber must not change any output bit.
#![allow(deprecated)]

use ivnt::cluster::codec::encode_batch;
use ivnt::core::dedup::Dedup;
use ivnt::core::pipeline::{PipelineOutput, RunOptions};
use ivnt::core::prelude::*;
use ivnt::simulator::prelude::*;
use ivnt::simulator::store::to_store_record;
use ivnt::store::{StoreReader, StoreWriter, WriterOptions};

fn dataset() -> GeneratedDataSet {
    generate(&DataSetSpec::syn().with_seed(41).with_target_examples(6_000)).expect("generate")
}

fn pipeline(data: &GeneratedDataSet, workers: Option<usize>) -> Pipeline {
    let u_rel = RuleSet::from_network(&data.network);
    let mut profile = DomainProfile::new("session-api");
    if let Some(w) = workers {
        profile = profile.with_workers(w);
    }
    Pipeline::new(u_rel, profile).expect("pipeline")
}

/// Re-encodes every output frame partition plus the per-signal metadata;
/// timing is measurement, not output, and is deliberately excluded.
fn fingerprint(output: &PipelineOutput) -> Vec<Vec<u8>> {
    let mut fp = Vec::new();
    for frame in [&output.extensions, &output.merged, &output.state] {
        fp.extend(frame.partitions().iter().map(encode_batch));
    }
    for s in &output.signals {
        fp.push(
            format!(
                "{} {:?} {} {:?} {:?} {} {}",
                s.signal,
                s.classification,
                s.representative_channel,
                s.corresponding_channels,
                s.mismatched_channels,
                s.rows_interpreted,
                s.rows_reduced
            )
            .into_bytes(),
        );
        fp.extend(s.frame.partitions().iter().map(encode_batch));
    }
    fp
}

fn frame_fp(frame: &ivnt::frame::frame::DataFrame) -> Vec<Vec<u8>> {
    frame.partitions().iter().map(encode_batch).collect()
}

fn reduced_fp(reduced: &[(SignalSequence, Dedup, usize)]) -> Vec<Vec<u8>> {
    let mut fp = Vec::new();
    for (seq, dedup, rows) in reduced {
        fp.push(
            format!(
                "{} {} {:?} {:?} {rows}",
                seq.signal, dedup.representative_channel, dedup.corresponding, dedup.mismatched
            )
            .into_bytes(),
        );
        fp.extend(frame_fp(&seq.frame));
        fp.extend(frame_fp(&dedup.representative.frame));
    }
    fp
}

#[test]
fn session_run_matches_legacy_run_and_run_serial() {
    let data = dataset();
    let p = pipeline(&data, Some(2));

    let legacy = fingerprint(&p.run(&data.trace).expect("run"));
    let session = fingerprint(
        &p.session(RunOptions::trace(&data.trace))
            .run()
            .expect("session run"),
    );
    assert_eq!(session, legacy, "session.run != legacy run");

    let legacy_serial = fingerprint(&p.run_serial(&data.trace).expect("run_serial"));
    let session_serial = fingerprint(
        &p.session(RunOptions::trace(&data.trace).serial())
            .run()
            .expect("session serial run"),
    );
    assert_eq!(
        session_serial, legacy_serial,
        "session.serial().run != legacy run_serial"
    );
    assert_eq!(legacy, legacy_serial, "parallel != serial reference");
}

#[test]
fn session_with_workers_matches_profile_workers() {
    let data = dataset();
    let via_profile = fingerprint(&pipeline(&data, Some(3)).run(&data.trace).expect("run"));
    let via_session = fingerprint(
        &pipeline(&data, None)
            .session(RunOptions::trace(&data.trace).with_workers(3))
            .run()
            .expect("session run"),
    );
    assert_eq!(via_session, via_profile);
}

#[test]
fn session_extract_matches_legacy_extract_paths() {
    let data = dataset();
    let p = pipeline(&data, Some(2));

    let legacy = p.extract(&data.trace).expect("extract");
    let session = p
        .session(RunOptions::trace(&data.trace))
        .extract()
        .expect("session extract");
    assert!(session.scan.is_none(), "trace sources carry no scan stats");
    assert_eq!(frame_fp(&session.frame), frame_fp(&legacy));

    let legacy_unpre = p
        .extract_without_preselection(&data.trace)
        .expect("extract_without_preselection");
    let session_unpre = p
        .session(RunOptions::trace(&data.trace).without_preselection())
        .extract()
        .expect("session unpreselected extract");
    assert_eq!(frame_fp(&session_unpre.frame), frame_fp(&legacy_unpre));
}

#[test]
fn session_extract_reduced_matches_legacy() {
    let data = dataset();
    let p = pipeline(&data, Some(2));
    let legacy = p.extract_reduced(&data.trace).expect("extract_reduced");
    let session = p
        .session(RunOptions::trace(&data.trace))
        .extract_reduced()
        .expect("session extract_reduced");
    assert_eq!(reduced_fp(&session), reduced_fp(&legacy));
}

#[test]
fn session_store_sources_match_legacy_store_entry_points() {
    let data = dataset();
    let p = pipeline(&data, Some(2));
    let path = std::env::temp_dir().join(format!("ivnt-session-api-{}.ivns", std::process::id()));
    let options = WriterOptions {
        chunk_rows: 128,
        chunks_per_group: 2,
        cluster: true,
    };
    let mut writer = StoreWriter::create(&path, options).expect("create store");
    for r in data.trace.records() {
        writer.append(&to_store_record(r)).expect("append");
    }
    writer.finish().expect("finish");

    let open = || StoreReader::open(&path).expect("open store");
    let groups = open().footer().groups;
    assert!(groups >= 2, "need multiple groups to shard");

    let legacy = p.extract_from_store(&mut open()).expect("from_store");
    let (legacy_stats_frame, legacy_stats) = p
        .extract_from_store_with_stats(&mut open())
        .expect("from_store_with_stats");
    let session = p
        .session(RunOptions::store(&mut open()))
        .extract()
        .expect("session store extract");
    assert_eq!(frame_fp(&session.frame), frame_fp(&legacy));
    assert_eq!(frame_fp(&session.frame), frame_fp(&legacy_stats_frame));
    assert_eq!(
        session.scan.expect("store sources carry scan stats"),
        legacy_stats
    );

    // Shards: each group range matches the legacy shard extractor, and the
    // concatenation over all groups reproduces the whole-store scan.
    let mut concatenated = Vec::new();
    for g in 0..groups {
        let legacy_shard = p
            .extract_store_shard(&mut open(), g..g + 1)
            .expect("legacy shard");
        let session_shard = p
            .session(RunOptions::store_shard(&mut open(), g..g + 1))
            .extract()
            .expect("session shard");
        let legacy_bytes: Vec<Vec<u8>> = legacy_shard.iter().map(encode_batch).collect();
        assert_eq!(
            frame_fp(&session_shard.frame),
            legacy_bytes,
            "shard {g} diverged"
        );
        concatenated.extend(legacy_bytes);
    }
    assert_eq!(concatenated, frame_fp(&legacy), "shards must tile the scan");

    let _ = std::fs::remove_file(&path);
}

#[test]
fn subscriber_changes_no_output_bit_and_counters_are_deterministic() {
    let data = dataset();
    let p = pipeline(&data, Some(2));
    let bare = fingerprint(&p.run(&data.trace).expect("bare run"));

    let mut row_counters = Vec::new();
    for workers in [1usize, 2, 8] {
        let registry = std::sync::Arc::new(ivnt::obs::Registry::new());
        let run = p
            .session(
                RunOptions::trace(&data.trace)
                    .with_workers(workers)
                    .with_subscriber(std::sync::Arc::clone(&registry)),
            )
            .run()
            .expect("instrumented run");
        assert_eq!(
            fingerprint(&run),
            bare,
            "subscriber changed output at {workers} workers"
        );
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counters["pipeline_runs_total"], 1);
        let rows: Vec<(String, u64)> = snapshot
            .counters
            .iter()
            .filter(|(k, _)| k.starts_with("pipeline_rows_total"))
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        assert!(!rows.is_empty(), "per-signal row counters recorded");
        row_counters.push(rows);
    }
    // The per-signal row counts — and their BTreeMap ordering — are
    // identical no matter how the fan-out was scheduled.
    assert_eq!(row_counters[0], row_counters[1]);
    assert_eq!(row_counters[0], row_counters[2]);
}
