//! Cross-crate integration: out-of-core extraction from the columnar store.
//!
//! The contract under test is the one the probe (`store_probe`) enforces in
//! CI: running the interpretation pipeline against an `.ivns` file must be
//! an *optimization only* — bit-identical output to the in-memory path,
//! with whole chunks skipped via zone maps and memory bounded by one group
//! buffer even when the trace is several times larger.

use ivnt::core::pipeline::RunOptions;
use ivnt::simulator::store::to_store_record;
use ivnt::store::{StoreReader, StoreWriter, WriterOptions};
use ivnt_bench::{domain_pipeline, select_signals_for_fraction, vehicle_journey};

fn write_store(
    trace: &ivnt::simulator::trace::Trace,
    path: &std::path::Path,
    options: WriterOptions,
) {
    let mut writer = StoreWriter::create(path, options).expect("create store");
    for r in trace.records() {
        writer.append(&to_store_record(r)).expect("append");
    }
    writer.finish().expect("finish");
}

#[test]
fn store_extraction_is_bit_identical_and_out_of_core() {
    let data = vehicle_journey(40_000, 0).expect("workload generates");
    let signals = select_signals_for_fraction(&data, 9, 0.027);
    let pipeline = domain_pipeline(&data, &signals).expect("pipeline builds");

    let options = WriterOptions {
        chunk_rows: 512,
        chunks_per_group: 8,
        cluster: true,
    };
    let group_rows = options.group_rows();
    assert!(
        data.trace.len() >= 4 * group_rows,
        "trace of {} rows must exceed 4 group buffers of {group_rows}",
        data.trace.len()
    );

    let path =
        std::env::temp_dir().join(format!("ivnt-store-extraction-{}.ivns", std::process::id()));
    write_store(&data.trace, &path, options);

    let baseline = pipeline
        .session(RunOptions::trace(&data.trace))
        .extract()
        .expect("in-memory extract")
        .frame;
    let mut reader = StoreReader::open(&path).expect("open store");
    let ex = pipeline
        .session(RunOptions::store(&mut reader))
        .extract()
        .expect("store extract");
    let (frame, stats) = (ex.frame, ex.scan.expect("store sessions report scan stats"));
    let _ = std::fs::remove_file(&path);

    // Bit-identity: the pushed-down scan is invisible in the output.
    assert_eq!(frame.schema(), baseline.schema());
    assert_eq!(
        frame.collect_rows().expect("store rows"),
        baseline.collect_rows().expect("baseline rows"),
        "store scan and in-memory extraction diverged"
    );

    // Zone maps prune: a 9-signal domain touches a small traffic fraction,
    // so over half the clustered chunks must be skipped without decoding.
    assert!(
        stats.skip_ratio() > 0.5,
        "only {:.1}% of {} chunks skipped",
        stats.skip_ratio() * 100.0,
        stats.chunks_total
    );

    // Out-of-core: the scan never held more than one group buffer of rows,
    // although the file is several group buffers long.
    assert!(
        stats.peak_rows_buffered <= group_rows,
        "scan buffered {} rows, budget is {group_rows}",
        stats.peak_rows_buffered
    );
}

#[test]
fn unselective_extraction_still_matches_without_pruning() {
    // With every signal selected no chunk can be proven absent; the scan
    // must degrade gracefully to a full decode with identical output.
    let data = vehicle_journey(8_000, 1).expect("workload generates");
    let all: Vec<String> = {
        let mut names: Vec<String> = data
            .network
            .catalog()
            .messages()
            .iter()
            .flat_map(|m| m.signals().iter().map(|s| s.name().to_string()))
            .collect();
        names.sort();
        names
    };
    let pipeline = domain_pipeline(&data, &all).expect("pipeline builds");

    let path = std::env::temp_dir().join(format!(
        "ivnt-store-unselective-{}.ivns",
        std::process::id()
    ));
    write_store(&data.trace, &path, WriterOptions::default());

    let baseline = pipeline
        .session(RunOptions::trace(&data.trace))
        .extract()
        .expect("in-memory extract")
        .frame;
    let mut reader = StoreReader::open(&path).expect("open store");
    let ex = pipeline
        .session(RunOptions::store(&mut reader))
        .extract()
        .expect("store extract");
    let (frame, stats) = (ex.frame, ex.scan.expect("store sessions report scan stats"));
    let _ = std::fs::remove_file(&path);

    assert_eq!(
        frame.collect_rows().expect("store rows"),
        baseline.collect_rows().expect("baseline rows"),
    );
    assert_eq!(
        stats.chunks_scanned + stats.chunks_skipped,
        stats.chunks_total
    );
    assert_eq!(stats.rows_emitted as usize, data.trace.len());
}
