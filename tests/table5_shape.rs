//! The Table 5 shape as an executable assertion: each generated data set,
//! run through the real classifier (with the data sets' comparability
//! hints), must reproduce the paper's per-branch signal counts.

use ivnt::core::classify::classify;
use ivnt::core::prelude::*;
use ivnt::simulator::prelude::*;

fn measure(spec: DataSetSpec, examples: usize) -> (usize, usize, usize) {
    // Long enough that every stepped/dwelling signal visits its full value
    // range; at very short durations slow β signals degenerate to binary.
    let data = generate(&spec.with_target_examples(examples)).expect("generate");
    let mut u_rel = RuleSet::from_network(&data.network);
    for (signal, (_, comparable)) in &data.signal_classes {
        u_rel
            .set_comparable(signal, *comparable)
            .expect("hint applies");
    }
    let pipeline = Pipeline::new(u_rel, DomainProfile::new("table5-test")).expect("pipeline");
    let reduced = pipeline
        .session(RunOptions::trace(&data.trace))
        .extract_reduced()
        .expect("extract");
    let mut counts = (0usize, 0usize, 0usize);
    for (seq, _, _) in &reduced {
        let comparable = pipeline
            .u_comb()
            .rules()
            .iter()
            .find(|r| r.signal == seq.signal)
            .map(|r| r.info.comparable)
            .unwrap_or(true);
        let class = classify(seq, comparable, &pipeline.profile().classify).expect("classify");
        match class.branch {
            Branch::Alpha => counts.0 += 1,
            Branch::Beta => counts.1 += 1,
            Branch::Gamma => counts.2 += 1,
        }
    }
    counts
}

#[test]
fn syn_reproduces_table5_branches() {
    // Paper Table 5, SYN column: 6 / 4 / 3.
    assert_eq!(measure(DataSetSpec::syn(), 60_000), (6, 4, 3));
}

#[test]
fn lig_reproduces_table5_branches() {
    // Paper Table 5, LIG column: 27 / 71 / 82. LIG has the most slow β
    // signals, so it needs the longest window before every stepped level
    // has been visited at least three times.
    assert_eq!(measure(DataSetSpec::lig(), 90_000), (27, 71, 82));
}

#[test]
fn sta_reproduces_table5_branches() {
    // Paper Table 5, STA column: 6 / 1 / 71.
    assert_eq!(measure(DataSetSpec::sta(), 60_000), (6, 1, 71));
}

#[test]
fn signals_per_message_density_close_to_paper() {
    for (spec, expected) in [
        (DataSetSpec::syn(), 1.47),
        (DataSetSpec::lig(), 5.11),
        (DataSetSpec::sta(), 3.66),
    ] {
        let data = generate(&spec.with_target_examples(5_000)).expect("generate");
        let signals: usize = data
            .network
            .catalog()
            .messages()
            .iter()
            .map(|m| m.signals().len())
            .sum();
        let density = signals as f64 / data.network.catalog().num_messages() as f64;
        assert!(
            (density - expected).abs() < 0.9,
            "{}: density {density} vs paper {expected}",
            data.spec.name
        );
    }
}
