//! The Table 6 shape as an executable assertion (medians of repeated runs,
//! wide tolerances — this guards the *shape*, not absolute numbers):
//!
//! 1. the in-house tool's extraction time is flat in the number of
//!    requested signals;
//! 2. the proposed pipeline beats the in-house tool when few signals are
//!    extracted (the preselection advantage).

use std::time::Instant;

use ivnt::core::pipeline::RunOptions;
use ivnt_baseline::SequentialAnalyzer;
use ivnt_bench::{domain_pipeline, select_signals_for_fraction, vehicle_journey};

fn median_ms<F: FnMut()>(mut f: F) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[1]
}

#[test]
fn table6_shape_holds() {
    let data = vehicle_journey(40_000, 0).expect("generate");
    let few = select_signals_for_fraction(&data, 9, 0.027);
    let many = select_signals_for_fraction(&data, 89, 0.165);

    let tool = SequentialAnalyzer::new(data.network.clone());
    let few_refs: Vec<&str> = few.iter().map(String::as_str).collect();
    let many_refs: Vec<&str> = many.iter().map(String::as_str).collect();
    let in_house_few = median_ms(|| {
        tool.extract_signals(&data.trace, &few_refs);
    });
    let in_house_many = median_ms(|| {
        tool.extract_signals(&data.trace, &many_refs);
    });

    let pipeline_few = domain_pipeline(&data, &few).expect("pipeline");
    let proposed_few = median_ms(|| {
        pipeline_few
            .session(RunOptions::trace(&data.trace))
            .extract_reduced()
            .expect("extract");
    });

    // Shape 1: in-house flat in #signals (within 50% either way).
    let ratio = in_house_many / in_house_few.max(1e-9);
    assert!(
        (0.5..=1.5).contains(&ratio),
        "in-house should be flat in #signals: {in_house_few:.1} ms vs {in_house_many:.1} ms"
    );

    // Shape 2: proposed wins for few signals (allow generous noise margin:
    // it must at least not lose).
    assert!(
        proposed_few < in_house_few * 1.1,
        "proposed ({proposed_few:.1} ms) should beat in-house ({in_house_few:.1} ms) at 9 signals"
    );
}
