//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset this workspace uses: an immutable, cheaply cloneable
//! byte buffer created with [`Bytes::copy_from_slice`] and read through
//! `Deref<Target = [u8]>`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Buffer length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self.data[..] == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_deref() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        assert_eq!(b.clone(), b);
    }
}
