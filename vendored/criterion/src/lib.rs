//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset this workspace's benches use: benchmark groups,
//! `bench_function` / `bench_with_input`, throughput annotation, and the
//! `criterion_group!` / `criterion_main!` macros. Reporting is a plain
//! median-of-samples line per benchmark — no statistics engine, plots or
//! baselines.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Throughput annotation attached to a group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(id: &str) -> BenchmarkId {
        BenchmarkId { id: id.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> BenchmarkId {
        BenchmarkId { id }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` once per sample, recording wall-clock durations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up iteration outside the measurement.
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted.get(sorted.len() / 2).copied().unwrap_or_default()
    }
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotates per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Finishes the group (reporting happens per benchmark).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        let median = b.median();
        let mut line = format!("{}/{}: median {:?}", self.name, id.id, median);
        if let Some(Throughput::Elements(n)) = self.throughput {
            let secs = median.as_secs_f64();
            if secs > 0.0 {
                line.push_str(&format!(" ({:.0} elem/s)", n as f64 / secs));
            }
        }
        println!("{line}");
    }
}

/// Benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Applies CLI configuration (accepted and ignored: the stand-in has no
    /// filtering or baseline options).
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(id.to_string())
            .bench_function(BenchmarkId::from("bench"), f);
        self
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
