//! `any::<T>()` and the [`Arbitrary`] trait.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Mostly ASCII, occasionally any scalar value.
        if rng.next_u64().is_multiple_of(4) {
            char::from_u32(rng.next_u64() as u32 % 0xD800).unwrap_or('a')
        } else {
            (rng.usize_in(0x20, 0x7F) as u8) as char
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite values across a wide magnitude range (no NaN/inf, which
        // upstream also excludes by default).
        let mag = rng.unit_f64() * 2.0 - 1.0;
        let exp = rng.usize_in(0, 64) as i32 - 32;
        mag * (2f64).powi(exp)
    }
}
