//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Length specification for [`vec`].
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end.max(r.start + 1),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

/// See [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Strategy for `Vec`s of `size`-many elements drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.usize_in(self.size.lo, self.size.hi_exclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
