//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace uses: the [`proptest!`] macro,
//! `prop_assert*` / [`prop_assume!`], the [`strategy::Strategy`] trait with
//! range / tuple / collection / sample / option strategies, `any::<T>()`,
//! and a per-(test, case) deterministic RNG. Unlike upstream proptest there
//! is no shrinking: a failing case reports its inputs verbatim.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Prelude mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn` runs `config.cases` times with inputs
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let mut case: u32 = 0;
            let mut rejects: u32 = 0;
            while case < config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(
                    test_name,
                    u64::from(case) + (u64::from(rejects) << 32),
                );
                let mut input_dbg: Vec<String> = Vec::new();
                $(
                    let generated =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    input_dbg.push(format!(
                        "{} = {:?}",
                        stringify!($arg),
                        &generated
                    ));
                    let $arg = generated;
                )*
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => case += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects < 4096,
                            "{test_name}: too many prop_assume! rejections"
                        );
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => panic!(
                        "proptest case failed: {}\n{} case #{}\ninputs:\n  {}",
                        msg,
                        test_name,
                        case,
                        input_dbg.join("\n  ")
                    ),
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Fails the current case (without panicking the runner) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case when `left != right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {:?} != {:?}: {}",
                    l,
                    r,
                    format!($($fmt)*)
                );
            }
        }
    };
}

/// Fails the current case when `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
}

/// Discards the current case (drawing a fresh one) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
