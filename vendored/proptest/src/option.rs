//! Option strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// See [`of`].
#[derive(Debug, Clone)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Strategy yielding `Some` three times out of four, `None` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64().is_multiple_of(4) {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
