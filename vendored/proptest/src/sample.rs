//! Sampling strategies (`prop::sample`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    options: Vec<T>,
}

/// Strategy drawing one of `options` uniformly.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.usize_in(0, self.options.len())].clone()
    }
}
