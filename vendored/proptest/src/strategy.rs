//! The [`Strategy`] trait and the core combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
///
/// Upstream proptest separates strategies from value trees to support
/// shrinking; this stand-in samples directly.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy always yielding a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

/// String-literal strategies: a minimal regex subset.
///
/// Supports `<class>{lo,hi}` where the class is `\PC` (any non-control
/// character, upstream proptest's printable class) or a literal character
/// set; anything unrecognized yields the literal itself.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let (class, lo, hi) = match parse_repeat(self) {
            Some(parts) => parts,
            None => return (*self).to_string(),
        };
        let len = if lo == hi {
            lo
        } else {
            rng.usize_in(lo, hi + 1)
        };
        let mut out = String::with_capacity(len);
        for _ in 0..len {
            out.push(sample_class(class, rng));
        }
        out
    }
}

fn parse_repeat(pattern: &str) -> Option<(&str, usize, usize)> {
    let open = pattern.rfind('{')?;
    let body = pattern.strip_suffix('}')?.get(open + 1..)?;
    let (lo, hi) = match body.split_once(',') {
        Some((a, b)) => (a.parse().ok()?, b.parse().ok()?),
        None => {
            let n = body.parse().ok()?;
            (n, n)
        }
    };
    Some((&pattern[..open], lo, hi))
}

fn sample_class(class: &str, rng: &mut TestRng) -> char {
    match class {
        // \PC: anything but control characters. Bias towards ASCII with an
        // occasional non-ASCII scalar to exercise multi-byte handling.
        "\\PC" | "." => {
            if rng.next_u64().is_multiple_of(8) {
                char::from_u32(rng.usize_in(0xA1, 0x2FFF) as u32).unwrap_or('¿')
            } else {
                (rng.usize_in(0x20, 0x7F) as u8) as char
            }
        }
        "[a-z]" => (rng.usize_in(b'a' as usize, b'z' as usize + 1) as u8) as char,
        "[0-9]" | "\\d" => (rng.usize_in(b'0' as usize, b'9' as usize + 1) as u8) as char,
        _ => (rng.usize_in(0x21, 0x7F) as u8) as char,
    }
}
