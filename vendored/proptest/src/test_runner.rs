//! Runner configuration, case errors and the deterministic test RNG.

/// Runner configuration (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful cases required per test.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Config {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Config {
        Config { cases: 64 }
    }
}

/// Why a single case did not succeed.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; draw a fresh case.
    Reject,
    /// `prop_assert*` failed with this message.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure from any message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic per-case RNG (xoshiro256++ seeded from the test name and
/// case index), so failures reproduce across runs without a seed file.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// RNG for case `case` of the named test.
    pub fn for_case(test_name: &str, case: u64) -> TestRng {
        // FNV-1a over the name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut sm = h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next uniformly distributed 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
