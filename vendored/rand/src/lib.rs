//! Offline stand-in for the `rand` crate.
//!
//! Implements the subset this workspace uses: a deterministic seedable
//! generator ([`rngs::StdRng`], xoshiro256++ seeded via SplitMix64) and the
//! [`Rng`] extension trait with `gen_range` over integer/float ranges plus
//! `gen_bool`. The stream differs from upstream rand's `StdRng` (ChaCha12),
//! which is fine here: the simulator only requires *reproducibility within
//! one build*, never a specific golden stream.

use std::ops::{Range, RangeInclusive};

/// Core generator interface: uniformly random 64-bit words.
pub trait RngCore {
    /// Next uniformly distributed `u64`.
    fn next_u64(&mut self) -> u64;

    /// Next uniformly distributed `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Constructing generators from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a uniform distribution over half-open / inclusive ranges.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform(lo: Self, hi: Self, inclusive: bool, rng: &mut impl RngCore) -> Self;
}

/// Ranges that can be sampled by [`Rng::gen_range`].
///
/// Blanket-implemented for `Range<T>` / `RangeInclusive<T>` over all
/// [`SampleUniform`] types, mirroring upstream rand — the generic impl is
/// what lets `u64 + rng.gen_range(0..10)` infer the literal as `u64`.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample(self, rng: &mut impl RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for RangeInclusive<T> {
    fn sample(self, rng: &mut impl RngCore) -> T {
        T::sample_uniform(*self.start(), *self.end(), true, rng)
    }
}

/// Extension methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from `range` (`Range` or `RangeInclusive`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps a random word to `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: $t, hi: $t, inclusive: bool, rng: &mut impl RngCore) -> $t {
                let extra = u128::from(inclusive);
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range on empty range"
                );
                let span = (hi as i128 - lo as i128) as u128 + extra;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform(lo: $t, hi: $t, inclusive: bool, rng: &mut impl RngCore) -> $t {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "gen_range on empty range"
                );
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            // SplitMix64 expansion, the canonical xoshiro seeding scheme.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeding_is_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(1e-6f64..1.0);
            assert!((1e-6..1.0).contains(&f));
            let u = rng.gen_range(2_000_000u64..8_000_000);
            assert!((2_000_000..8_000_000).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.7)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((rate - 0.7).abs() < 0.02, "rate {rate}");
    }
}
