//! Offline stand-in for the `serde` facade.
//!
//! The workspace builds in environments without registry access, so external
//! dependencies are vendored as minimal API-compatible stubs. This crate
//! provides the `Serialize`/`Deserialize` marker traits and re-exports the
//! no-op derive macros; the codebase only uses the derives as annotations
//! (no serialization format is wired up yet).

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Marker trait matching `serde::Serialize`'s role in trait bounds.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s role in trait bounds.
pub trait Deserialize<'de> {}

impl<T: ?Sized> Serialize for T {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
